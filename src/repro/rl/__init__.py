"""Reinforcement learning for TATIM: the allocation MDP, DQN, and CRL."""

from repro.rl.env import AllocationEnv, BatchedAllocationEnv
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.prioritized import PrioritizedReplayBuffer
from repro.rl.schedules import (
    ConstantEpsilon,
    EpsilonSchedule,
    ExponentialDecay,
    LinearDecay,
    PiecewiseSchedule,
)
from repro.rl.qlearning import QLearningAgent
from repro.rl.reinforce import ReinforceAgent
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.crl import CRLModel, EnvironmentStore
from repro.rl.stacked import LockstepTrainer

__all__ = [
    "AllocationEnv",
    "BatchedAllocationEnv",
    "LockstepTrainer",
    "ReplayBuffer",
    "Transition",
    "PrioritizedReplayBuffer",
    "EpsilonSchedule",
    "ConstantEpsilon",
    "ExponentialDecay",
    "LinearDecay",
    "PiecewiseSchedule",
    "QLearningAgent",
    "ReinforceAgent",
    "DQNAgent",
    "DQNConfig",
    "CRLModel",
    "EnvironmentStore",
]
