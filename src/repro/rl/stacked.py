"""Lockstep multi-agent DQN training through cross-agent batched kernels.

CRL trains one DQN per environment cluster (Algorithm 1's training
phase); the agents are fully independent — separate environments, replay
buffers, RNG streams and optimizers — so the serial loop "train agent 1
to completion, then agent 2, …" leaves an obvious multiple on the table:
at every step, all agents run the *same* network shapes over the *same*
state layout. :class:`LockstepTrainer` advances all agents one step at a
time instead, fusing the per-step work across agents:

- **Acting** — one :meth:`StackedNetworks.forward_rows` call computes
  every agent's Q-row (bit-for-bit each agent's own single-state
  forward); the ε-greedy draws stay per-agent, consuming each agent's
  RNG exactly as its serial ``act`` would.
- **Environment stepping** — all agents' episodes live in one
  :class:`BatchedAllocationEnv`, stepped with one vectorized pass.
- **Training** — when every agent is due a gradient step (the common
  case: identical configs keep step counters in sync), the replay
  batches are stacked and one ``(A, batch, ·)`` forward/backward +
  stacked Adam step trains all online networks at once.

Because the agents are independent and every fused kernel is bitwise
identical to its per-agent form (see ``ml/neural.py`` /
``rl/env.py``), interleaving their steps does not change any agent's
arithmetic: the trained agents are **byte-identical** to serially
trained ones. Heterogeneous setups (different configs, prioritized
replay, injected buffers) transparently fall back to per-agent
micro-steps inside the same lockstep loop, preserving that contract.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.neural import StackedNetworks
from repro.rl.dqn import MASKED_Q, DQNAgent
from repro.rl.env import BatchedAllocationEnv
from repro.rl.replay import ReplayBuffer, Transition
from repro.telemetry import get_registry, span

__all__ = ["LockstepTrainer"]

#: Shared empty feasible-index array for terminal transitions.
_NO_FEASIBLE = np.array([], dtype=int)


class LockstepTrainer:
    """Train several independent DQN agents in lockstep (see module docs).

    Parameters
    ----------
    agents:
        The :class:`DQNAgent` instances to train. They may be freshly
        constructed or mid-training (replay contents and step counters
        are respected).
    problems:
        One TATIM instance per agent (all sharing a geometry); agent
        ``i`` trains on episodes of ``problems[i]``.
    episodes:
        Episode budget — an int applied to every agent, or one int per
        agent.
    dense_reward:
        Forwarded to the batched environment (ablation mode).
    """

    def __init__(self, agents, problems, *, episodes, dense_reward: bool = False) -> None:
        self.agents: list[DQNAgent] = list(agents)
        self.problems = list(problems)
        if not self.agents or len(self.agents) != len(self.problems):
            raise ConfigurationError(
                f"need one problem per agent, got {len(self.agents)} agents "
                f"and {len(self.problems)} problems"
            )
        count = len(self.agents)
        if isinstance(episodes, (int, np.integer)):
            self._episodes = np.full(count, int(episodes))
        else:
            self._episodes = np.asarray(list(episodes), dtype=int)
            if self._episodes.size != count:
                raise ConfigurationError("need one episode budget per agent")
        if np.any(self._episodes < 1):
            raise ConfigurationError("episode budgets must be >= 1")
        self.dense_reward = bool(dense_reward)

    # ------------------------------------------------------------------
    def _fusable(self) -> bool:
        """Whether the fused cross-agent training step may engage.

        Conservative and static: identical configs (so step counters,
        train cadence and batch sizes stay in sync while all agents are
        live), plain uniform replay with a known action-space width (the
        fused step needs the boolean legality matrix and must not touch
        prioritized bookkeeping), and ``warmup >= batch_size`` (so every
        sampled batch has exactly ``batch_size`` rows).
        """
        first = self.agents[0]
        for agent in self.agents:
            if agent.config != first.config:
                return False
            buffer = agent.buffer
            if not isinstance(buffer, ReplayBuffer) or hasattr(
                buffer, "update_priorities"
            ):
                return False
            if getattr(buffer._storage, "n_actions", None) is None:
                return False
        return first.config.warmup_transitions >= first.config.batch_size

    def train(self) -> list[np.ndarray]:
        """Run every agent to its episode budget; per-agent episode returns."""
        agents = self.agents
        count = len(agents)
        env = BatchedAllocationEnv(self.problems, dense_reward=self.dense_reward)
        online_stack: StackedNetworks | None = None
        target_stack: StackedNetworks | None = None
        joint_stack: StackedNetworks | None = None
        fused = count > 1 and self._fusable()
        if count > 1:
            try:
                if fused:
                    # One parameter block spans online AND target nets, so
                    # the fused step's two forwards collapse into a single
                    # batched matmul chain over 2A members.
                    joint_stack = StackedNetworks(
                        [agent.online for agent in agents]
                        + [agent.target for agent in agents]
                    )
                    online_stack = joint_stack.substack(
                        0, count, stack_optimizers=True
                    )
                    target_stack = joint_stack.substack(count, 2 * count)
                else:
                    online_stack = StackedNetworks([agent.online for agent in agents])
            except ConfigurationError:
                if joint_stack is not None:
                    joint_stack.release()
                online_stack = target_stack = joint_stack = None
                fused = False
        fused = fused and joint_stack is not None
        remaining = self._episodes.copy()
        episode_returns: list[list[float]] = [[] for _ in range(count)]
        current_return = np.zeros(count)
        active = np.ones(count, dtype=bool)
        # Plain uniform buffers take the column-direct push (the sampled
        # batches are byte-identical); prioritized/injected buffers keep
        # the Transition path so their bookkeeping still runs.
        column_push = [
            isinstance(agent.buffer, ReplayBuffer)
            and not hasattr(agent.buffer, "update_priorities")
            and agent.buffer._storage.n_actions is not None
            for agent in agents
        ]
        if fused:
            config = agents[0].config
            batch_size = config.batch_size
            # The joint input block: rows 0..A-1 carry the sampled states
            # (online members), rows A..2A-1 the next-states (target
            # members) — the per-agent sample lands directly in both.
            joint_x = np.empty((2 * count, batch_size, env.state_dim))
            self._batch_buffers = (
                joint_x[:count],
                np.empty((count, batch_size), dtype=int),
                np.empty((count, batch_size)),
                joint_x[count:],
                np.empty((count, batch_size), dtype=bool),
                np.empty((count, batch_size, agents[0].n_actions), dtype=bool),
                joint_x,
            )
            self._joint_stack = joint_stack
        registry = get_registry()
        try:
            with span(
                "rl.dqn.train_lockstep",
                agents=count,
                episodes=int(self._episodes.sum()),
                fused=fused,
            ):
                rows = np.flatnonzero(active)
                row_list = [int(a) for a in rows]
                while active.any():
                    all_live = rows.size == count
                    # --- Phase 1: ε-greedy action per live agent. The
                    # per-agent draws replicate DQNAgent.act exactly
                    # (random → choice immediately when exploring); greedy
                    # picks are deferred so the stacked forward + masked
                    # argmax runs only on steps where somebody actually
                    # went greedy — with ε starting at 1.0, most early
                    # steps skip the network entirely, just like the
                    # serial act. Greedy fills consume no RNG, so the
                    # deferral cannot perturb any agent's stream.
                    actions = np.empty(rows.size, dtype=int)
                    pending: list[tuple[int, int]] = []
                    for j, a in enumerate(row_list):
                        agent = agents[a]
                        if agent._rng.random() < agent.epsilon:
                            actions[j] = int(agent._rng.choice(env.feasible_row(a)))
                        else:
                            pending.append((j, a))
                    if pending:
                        if online_stack is not None and all_live:
                            q_rows = online_stack.forward_rows(env.states)
                            greedy = np.where(
                                env.feasible_mask, q_rows, MASKED_Q
                            ).argmax(axis=1)
                            for j, a in pending:
                                actions[j] = int(greedy[a])
                        else:
                            for j, a in pending:
                                agent = agents[a]
                                feasible = env.feasible_row(a)
                                values = agent.q_values(env.states[a])
                                mask = np.full(agent.n_actions, MASKED_Q)
                                mask[feasible] = values[feasible]
                                actions[j] = int(np.argmax(mask))
                    # --- Phase 2: one vectorized env pass, then per-agent
                    # replay pushes (buffers copy rows into columns; the
                    # env's post-step legality rows double as the stored
                    # next-feasible masks, all-False on terminal rows).
                    states_before = env.state_rows(rows)
                    rewards, dones = env.step(actions, rows=rows, check=False)
                    mask_rows = env.feasible_mask
                    for j, a in enumerate(row_list):
                        agent = agents[a]
                        done = bool(dones[j])
                        if column_push[a]:
                            agent.buffer.push_columns(
                                states_before[j],
                                int(actions[j]),
                                float(rewards[j]),
                                env.states[a],
                                done,
                                mask_rows[a],
                            )
                        else:
                            agent.buffer.push(
                                Transition(
                                    state=states_before[j],
                                    action=int(actions[j]),
                                    reward=float(rewards[j]),
                                    next_state=env.state_row(a),
                                    done=done,
                                    next_feasible=env.feasible_row(a)
                                    if not done
                                    else _NO_FEASIBLE,
                                )
                            )
                        agent._steps += 1
                        current_return[a] += rewards[j]
                    # --- Phase 3: gradient steps. Fused when *every*
                    # agent is due and past warmup, else per-agent (the
                    # exact serial train_step).
                    due = [
                        a
                        for a in row_list
                        if agents[a]._steps % agents[a].config.train_every == 0
                    ]
                    ready = [
                        a
                        for a in due
                        if len(agents[a].buffer)
                        >= agents[a].config.warmup_transitions
                    ]
                    if fused and len(ready) == count:
                        self._fused_train_step(online_stack, target_stack, registry)
                    else:
                        for a in due:
                            agents[a].train_step()
                    for a in row_list:
                        agent = agents[a]
                        if agent._steps % agent.config.target_sync_every == 0:
                            agent.target.copy_from(agent.online)
                    # --- Phase 4: episode boundaries.
                    if not dones.any():
                        continue
                    for j, a in enumerate(row_list):
                        if not dones[j]:
                            continue
                        agent = agents[a]
                        agent._episodes += 1
                        if agent.epsilon_schedule is not None:
                            agent.epsilon = agent.epsilon_schedule(agent._episodes)
                        else:
                            agent.epsilon = max(
                                agent.config.epsilon_end,
                                agent.epsilon * agent.config.epsilon_decay,
                            )
                        episode_return = float(current_return[a])
                        episode_returns[a].append(episode_return)
                        current_return[a] = 0.0
                        registry.counter(
                            "repro_rl_dqn_episodes_total",
                            help="DQN training episodes completed",
                        ).inc()
                        registry.gauge(
                            "repro_rl_dqn_epsilon", help="Current exploration rate"
                        ).set(agent.epsilon)
                        registry.gauge(
                            "repro_rl_replay_size",
                            help="Transitions held in the replay buffer",
                        ).set(len(agent.buffer))
                        registry.gauge(
                            "repro_rl_dqn_episode_return",
                            help="Latest training-episode return",
                        ).set(episode_return)
                        remaining[a] -= 1
                        if remaining[a] > 0:
                            env.reset(rows=np.array([a]))
                        else:
                            active[a] = False
                            rows = np.flatnonzero(active)
                            row_list = [int(r) for r in rows]
        finally:
            if online_stack is not None:
                online_stack.release()
            if target_stack is not None:
                target_stack.release()
        return [np.array(r) for r in episode_returns]

    # ------------------------------------------------------------------
    def _fused_train_step(
        self,
        online_stack: StackedNetworks,
        target_stack: StackedNetworks,
        registry,
    ) -> None:
        """One stacked gradient step across all agents.

        Mirrors :meth:`DQNAgent.train_step` op for op on the stacked
        (agents, batch, ·) arrays; every kernel is per-slice bitwise
        equal to its 2-D form, so each agent's parameter update is
        byte-identical to its own serial step on the same sample.
        """
        agents = self.agents
        config = agents[0].config
        states, actions, rewards, next_states, dones, feasible, joint_x = (
            self._batch_buffers
        )
        for a, agent in enumerate(agents):
            agent.buffer.sample_batch_into(
                config.batch_size,
                (states[a], actions[a], rewards[a], next_states[a], dones[a], feasible[a]),
            )
        count = config.batch_size
        n_agents = len(agents)
        mask = np.where(feasible, 0.0, MASKED_Q)
        # One joint forward: rows 0..A-1 are the online predictions on the
        # sampled states, rows A..2A-1 the target Q-values on next-states
        # — per-slice bitwise equal to the two separate forwards.
        joint_out = self._joint_stack.forward(joint_x, cache=True)
        predictions = joint_out[:n_agents]
        target_q = joint_out[n_agents:]
        target_q += mask
        agent_index = np.arange(n_agents)[:, None]
        if config.double_q:
            online_q = online_stack.forward(next_states)
            online_q += mask
            chosen = online_q.argmax(axis=2)
            best_next = target_q[agent_index, np.arange(count)[None, :], chosen]
        else:
            best_next = target_q.max(axis=2)
        best_next[dones] = 0.0
        online_stack.adopt_cache(self._joint_stack, 0, n_agents)
        targets = predictions.copy()
        bellman = rewards + (config.gamma * best_next)
        targets[agent_index, np.arange(count)[None, :], actions] = bellman
        losses = online_stack.train_from_cache(targets)
        steps = registry.counter(
            "repro_rl_dqn_train_steps_total", help="DQN gradient steps taken"
        )
        loss_gauge = registry.gauge("repro_rl_dqn_loss", help="Latest DQN batch loss")
        for loss in losses:
            steps.inc()
            loss_gauge.set(float(loss))
