"""Experience replay for DQN, backed by structure-of-arrays storage.

The push-side API is still one :class:`Transition` at a time, but the
buffer stores columns, not objects: ring-indexed 2-D ``states`` /
``next_states`` matrices, flat ``action`` / ``reward`` / ``done`` arrays,
a ragged per-row feasible-index store, and (when the action-space width
is known) a boolean feasible-mask matrix. Training then gets its batch
matrices from :meth:`ReplayBuffer.sample_batch` by fancy-indexing the
columns — no per-transition ``np.stack`` / ``np.fromiter`` restacking of
32 Python objects per gradient step. :meth:`ReplayBuffer.sample` keeps
the historical list-of-transitions surface (reconstructed as immutable
copies) for drop-in compatibility, and both entry points consume the RNG
identically, so seeded runs are byte-identical whichever one is used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng

#: First allocation of the ring columns; doubled until ``capacity`` so a
#: mostly-empty 50k-capacity buffer doesn't pin tens of MB up front.
_INITIAL_ROWS = 256


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple plus the next state's feasible actions.

    Feasible actions must be stored because the Bellman backup's
    ``max_a' Q(s', a')`` must range over *legal* actions only — masking at
    training time, not just acting time, is what keeps the learned Q from
    chasing unreachable assignments.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_feasible: np.ndarray


@dataclass(frozen=True)
class TransitionBatch:
    """A sampled batch as column matrices, ready for vectorized training.

    ``feasible_mask`` is the boolean (batch, n_actions) legality matrix
    when the buffer knows the action-space width; otherwise ``None`` and
    ``next_feasible`` (the ragged per-row index arrays) is the fallback.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_feasible: list
    feasible_mask: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.actions.size)

    @classmethod
    def from_transitions(cls, batch: list, n_actions: int | None = None) -> "TransitionBatch":
        """Column-ize a list of transitions (legacy-buffer adapter path)."""
        count = len(batch)
        return cls(
            states=np.stack([t.state for t in batch]),
            actions=np.fromiter((t.action for t in batch), dtype=int, count=count),
            rewards=np.fromiter((t.reward for t in batch), dtype=float, count=count),
            next_states=np.stack([t.next_state for t in batch]),
            dones=np.fromiter((t.done for t in batch), dtype=bool, count=count),
            next_feasible=[t.next_feasible for t in batch],
        )


class _SoAStorage:
    """Ring-indexed column store shared by the uniform and prioritized buffers."""

    def __init__(self, capacity: int, n_actions: int | None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.n_actions = int(n_actions) if n_actions is not None else None
        self._size = 0
        self._cursor = 0
        self._rows = 0
        self._states: np.ndarray | None = None
        self._next_states: np.ndarray | None = None
        self._actions: np.ndarray | None = None
        self._rewards: np.ndarray | None = None
        self._dones: np.ndarray | None = None
        self._feasible: list = []
        self._feasible_mask: np.ndarray | None = None

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _allocate(self, state_dim: int, rows: int) -> None:
        self._rows = rows
        self._states = np.empty((rows, state_dim), dtype=float)
        self._next_states = np.empty((rows, state_dim), dtype=float)
        self._actions = np.empty(rows, dtype=int)
        self._rewards = np.empty(rows, dtype=float)
        self._dones = np.empty(rows, dtype=bool)
        self._feasible = [None] * rows
        if self.n_actions is not None:
            self._feasible_mask = np.zeros((rows, self.n_actions), dtype=bool)

    def _grow(self) -> None:
        rows = min(self.capacity, max(self._rows * 2, _INITIAL_ROWS))
        for name in ("_states", "_next_states", "_actions", "_rewards", "_dones"):
            old = getattr(self, name)
            new = np.empty((rows, *old.shape[1:]), dtype=old.dtype)
            new[: self._rows] = old
            setattr(self, name, new)
        self._feasible.extend([None] * (rows - self._rows))
        if self._feasible_mask is not None:
            mask = np.zeros((rows, self.n_actions), dtype=bool)
            mask[: self._rows] = self._feasible_mask
            self._feasible_mask = mask
        self._rows = rows

    def push(self, transition: Transition) -> int:
        """Write one transition; returns the row it landed in."""
        state = np.asarray(transition.state, dtype=float)
        if self._states is None:
            self._allocate(state.size, min(self.capacity, _INITIAL_ROWS))
        elif state.size != self._states.shape[1]:
            raise DataError(
                f"state dim {state.size} != stored dim {self._states.shape[1]}"
            )
        if self._size < self.capacity:
            index = self._size
            if index >= self._rows:
                self._grow()
            self._size += 1
        else:
            index = self._cursor
        self._cursor = (self._cursor + 1) % self.capacity
        self._states[index] = state
        self._next_states[index] = transition.next_state
        self._actions[index] = transition.action
        self._rewards[index] = transition.reward
        self._dones[index] = transition.done
        feasible = np.asarray(transition.next_feasible, dtype=int)
        self._feasible[index] = feasible
        if self._feasible_mask is not None:
            row = self._feasible_mask[index]
            row[:] = False
            row[feasible] = True
        return index

    # ------------------------------------------------------------------
    def gather_batch(self, indices: np.ndarray) -> TransitionBatch:
        return TransitionBatch(
            states=self._states[indices],
            actions=self._actions[indices],
            rewards=self._rewards[indices],
            next_states=self._next_states[indices],
            dones=self._dones[indices],
            next_feasible=[self._feasible[int(i)] for i in indices]
            if self._feasible_mask is None
            else [],
            feasible_mask=self._feasible_mask[indices]
            if self._feasible_mask is not None
            else None,
        )

    def push_columns(
        self, state, action, reward, next_state, done, feasible_mask_row
    ) -> int:
        """Column-direct push for mask-aware storage (the lockstep path).

        Writes the transition fields straight into the ring columns and
        copies the caller's boolean legality row instead of scattering
        index arrays — sampled batches are byte-identical to a
        :meth:`push` of the equivalent :class:`Transition`. The ragged
        ``next_feasible`` side store is left unset for rows written this
        way, so mix with :meth:`gather_transitions` only via the mask.
        """
        state = np.asarray(state, dtype=float)
        if self._states is None:
            self._allocate(state.size, min(self.capacity, _INITIAL_ROWS))
        if self._feasible_mask is None:
            raise DataError("push_columns requires n_actions-aware storage")
        if self._size < self.capacity:
            index = self._size
            if index >= self._rows:
                self._grow()
            self._size += 1
        else:
            index = self._cursor
        self._cursor = (self._cursor + 1) % self.capacity
        self._states[index] = state
        self._next_states[index] = next_state
        self._actions[index] = action
        self._rewards[index] = reward
        self._dones[index] = done
        self._feasible[index] = None
        self._feasible_mask[index] = feasible_mask_row
        return index

    def gather_batch_into(self, indices: np.ndarray, out) -> None:
        """Gather the indexed rows into preallocated column buffers.

        ``out`` is a ``(states, actions, rewards, next_states, dones,
        feasible_mask)`` tuple of arrays shaped like one batch; each
        ``np.take`` lands the same values fancy indexing would, without
        allocating. Only available when the boolean legality matrix is
        maintained (``n_actions`` given).
        """
        if self._feasible_mask is None:
            raise DataError("gather_batch_into requires n_actions-aware storage")
        states, actions, rewards, next_states, dones, feasible_mask = out
        self._states.take(indices, axis=0, out=states)
        self._actions.take(indices, axis=0, out=actions)
        self._rewards.take(indices, axis=0, out=rewards)
        self._next_states.take(indices, axis=0, out=next_states)
        self._dones.take(indices, axis=0, out=dones)
        self._feasible_mask.take(indices, axis=0, out=feasible_mask)

    def gather_transitions(self, indices: np.ndarray) -> list[Transition]:
        """Immutable per-row snapshots (the compatibility surface)."""
        return [
            Transition(
                state=self._states[i].copy(),
                action=int(self._actions[i]),
                reward=float(self._rewards[i]),
                next_state=self._next_states[i].copy(),
                done=bool(self._dones[i]),
                next_feasible=self._feasible[i],
            )
            for i in (int(j) for j in indices)
        ]

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling.

    Parameters
    ----------
    capacity:
        Ring size; old rows are overwritten once full.
    n_actions:
        Optional action-space width. When given, the buffer maintains a
        boolean feasible-mask matrix so :meth:`sample_batch` can hand the
        trainer a ready legality mask instead of ragged index arrays.
    """

    def __init__(self, capacity: int = 50_000, *, n_actions: int | None = None, seed=None) -> None:
        self.capacity = int(capacity)
        self._storage = _SoAStorage(capacity, n_actions)
        self._rng = as_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def push(self, transition: Transition) -> None:
        self._storage.push(transition)

    def push_columns(
        self, state, action, reward, next_state, done, feasible_mask_row
    ) -> None:
        """Column-direct push (see :meth:`_SoAStorage.push_columns`)."""
        self._storage.push_columns(
            state, action, reward, next_state, done, feasible_mask_row
        )

    def _sample_indices(self, batch_size: int) -> np.ndarray:
        """Uniform draw *without replacement* (clamped to the buffer size).

        Sampling with replacement would let one transition appear several
        times in a batch, double-counting its TD error in the gradient
        step; drawing distinct indices keeps each batched update an
        unbiased average over distinct experience.
        """
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        n = len(self._storage)
        if not n:
            raise DataError("cannot sample from an empty replay buffer")
        if n > batch_size:
            return self._rng.choice(n, size=batch_size, replace=False)
        return self._rng.permutation(n)

    def sample(self, batch_size: int) -> list[Transition]:
        """A uniform batch as transition objects (compatibility surface)."""
        return self._storage.gather_transitions(self._sample_indices(batch_size))

    def sample_batch(self, batch_size: int) -> TransitionBatch:
        """A uniform batch as column matrices (the training fast path).

        Consumes the RNG exactly like :meth:`sample`, so seeded runs are
        byte-identical whichever entry point the trainer uses.
        """
        return self._storage.gather_batch(self._sample_indices(batch_size))

    def sample_batch_into(self, batch_size: int, out) -> None:
        """Draw a uniform batch straight into preallocated column buffers.

        RNG consumption and gathered values match :meth:`sample_batch`
        exactly; the cross-agent fused trainer uses this to fill slices
        of its stacked ``(agents, batch, ·)`` arrays without per-agent
        allocations or a later ``np.stack`` copy.
        """
        self._storage.gather_batch_into(self._sample_indices(batch_size), out)

    def clear(self) -> None:
        self._storage.clear()
