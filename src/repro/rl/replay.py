"""Experience replay buffer for DQN."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple plus the next state's feasible actions.

    Feasible actions must be stored because the Bellman backup's
    ``max_a' Q(s', a')`` must range over *legal* actions only — masking at
    training time, not just acting time, is what keeps the learned Q from
    chasing unreachable assignments.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_feasible: np.ndarray


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int = 50_000, *, seed=None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._storage: list[Transition] = []
        self._cursor = 0
        self._rng = as_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def push(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int) -> list[Transition]:
        """Uniform batch *without replacement* (clamped to the buffer size).

        Sampling with replacement would let one transition appear several
        times in a batch, double-counting its TD error in the gradient
        step; drawing distinct indices keeps each batched update an
        unbiased average over distinct experience.
        """
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise DataError("cannot sample from an empty replay buffer")
        n = len(self._storage)
        if n > batch_size:
            indices = self._rng.choice(n, size=batch_size, replace=False)
        else:
            indices = self._rng.permutation(n)
        return [self._storage[i] for i in indices]

    def clear(self) -> None:
        self._storage.clear()
        self._cursor = 0
