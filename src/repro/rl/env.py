"""The TATIM allocation environment — the MDP of Section III-D.

Design follows the paper's key choices:

- **Environment** ``e``: the geometry (task importance × processor
  capacity) is encoded into the observation so the same agent architecture
  works across environments.
- **State**: which tasks have been selected so far (the paper's 0/1
  selection matrix), plus remaining per-processor budgets — a fixed-length
  vector suitable "as an input to a neural network".
- **Action**: exactly one micro-action per step, keeping the action space
  linear instead of 2^{N×M}: action ``j < N`` assigns task j to the
  *current* processor; action ``N`` closes the current processor and moves
  on. The episode ends when the last processor closes.
- **Reward**: terminal-only — Σ I_j of all allocated tasks when the agent
  reaches the terminal state, 0 otherwise (the paper's r(t)). A dense
  variant (+I_j per assignment) is available for the reward-shaping
  ablation benchmark.

The observation is maintained *incrementally*: one preallocated buffer is
written at :meth:`reset` — the geometry slices (normalized importance,
times, resources) never change within an episode, so they are written
once at construction — and :meth:`step` touches only the entries the
action actually mutates (one selected bit, two one-hot entries, the
current processor's two budget slots). Every write applies the same
arithmetic, in the same order, as a from-scratch rebuild, so the buffer
is bit-for-bit equal to what the old concatenating implementation
produced; :meth:`state_vector` returns a copy so stored transitions stay
immutable. Feasibility is tracked the same way: within a processor,
budgets only shrink, so the candidate set can only lose members — each
assignment rechecks just the surviving candidates instead of rescanning
all tasks, and closing a processor triggers the one full rescan that is
actually necessary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation

#: Feasibility slack matching the solvers' tolerance.
_TOL = 1e-12


class AllocationEnv:
    """Sequential TATIM allocation as an episodic MDP.

    Parameters
    ----------
    problem:
        The TATIM instance to allocate. The observation layout depends only
        on (n_tasks, n_processors), so agents transfer across instances
        with the same geometry — that is what CRL's per-cluster training
        relies on.
    dense_reward:
        If True, emit +I_j on each assignment instead of the terminal-only
        sum (ablation mode; default False matches the paper).
    """

    def __init__(self, problem: TATIMProblem, *, dense_reward: bool = False) -> None:
        self.problem = problem
        self.dense_reward = bool(dense_reward)
        self.n_tasks = problem.n_tasks
        self.n_processors = problem.n_processors
        self._importance_scale = float(problem.importance.max()) or 1.0
        n, m = self.n_tasks, self.n_processors
        self._limits = problem.processor_time_limits().astype(float)
        self._capacities = problem.capacities.astype(float)
        # Buffer layout: [selected | importance | times | resources |
        # processor one-hot | remaining time | remaining capacity].
        self._off_onehot = 4 * n
        self._off_time = 4 * n + m
        self._off_capacity = 4 * n + 2 * m
        self._state = np.empty(4 * n + 3 * m, dtype=float)
        self._state[n : 2 * n] = problem.importance / self._importance_scale
        self._state[2 * n : 3 * n] = problem.times / float(self._limits.mean())
        self._state[3 * n : 4 * n] = problem.resources / float(problem.capacities.mean())
        self._assigned = np.empty(n, dtype=int)
        self._remaining_time = np.empty(m, dtype=float)
        self._remaining_capacity = np.empty(m, dtype=float)
        self._empty_feasible = np.array([], dtype=int)
        self._empty_feasible.flags.writeable = False
        self.reset()

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Task assignments plus the "close current processor" action."""
        return self.n_tasks + 1

    @property
    def close_action(self) -> int:
        return self.n_tasks

    @property
    def state_dim(self) -> int:
        return 4 * self.n_tasks + 3 * self.n_processors

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._assigned.fill(-1)
        self._remaining_time[:] = self._limits
        self._remaining_capacity[:] = self._capacities
        self._current = 0
        self._done = False
        buf = self._state
        n = self.n_tasks
        buf[:n] = 0.0
        buf[self._off_onehot : self._off_time] = 0.0
        buf[self._off_onehot] = 1.0
        buf[self._off_time : self._off_capacity] = self._remaining_time / self._limits
        buf[self._off_capacity :] = self._remaining_capacity / self._capacities
        self._rescan_fits()
        return self.state_vector()

    def state_vector(self) -> np.ndarray:
        """Fixed-length observation: selection state ++ geometry ++ budgets."""
        return self._state.copy()

    # ------------------------------------------------------------------
    def _rescan_fits(self) -> None:
        """Full candidate rescan — only needed when the processor changes."""
        if self._done:
            self._fit_idx = self._empty_feasible
        else:
            current = self._current
            fits = (
                (self._assigned < 0)
                & (self.problem.times <= self._remaining_time[current] + _TOL)
                & (self.problem.resources <= self._remaining_capacity[current] + _TOL)
            )
            self._fit_idx = np.flatnonzero(fits)
        self._feasible = None

    def feasible_actions(self) -> np.ndarray:
        """Actions legal in the current state (closing is always legal).

        The result is cached per state (the training loop asks twice per
        transition: once for the next-state feasible set stored in replay
        and once when that state becomes current) and returned read-only —
        treat it as a snapshot, not a scratch array.
        """
        if self._done:
            return self._empty_feasible
        if self._feasible is None:
            feasible = np.append(self._fit_idx, self.close_action)
            feasible.flags.writeable = False
            self._feasible = feasible
        return self._feasible

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply one action; returns (state, reward, done, info)."""
        if self._done:
            raise SimulationError("episode already terminated; call reset()")
        action = int(action)
        reward = 0.0
        buf = self._state
        if action == self.close_action:
            buf[self._off_onehot + self._current] = 0.0
            self._current += 1
            if self._current >= self.n_processors:
                self._done = True
                if not self.dense_reward:
                    reward = self.total_importance()
            else:
                buf[self._off_onehot + self._current] = 1.0
            self._rescan_fits()
        elif 0 <= action < self.n_tasks:
            if self._assigned[action] >= 0:
                raise SimulationError(f"task {action} is already assigned")
            current = self._current
            if (
                self.problem.times[action] > self._remaining_time[current] + _TOL
                or self.problem.resources[action]
                > self._remaining_capacity[current] + _TOL
            ):
                raise SimulationError(
                    f"task {action} does not fit on processor {current}"
                )
            self._assigned[action] = current
            self._remaining_time[current] -= self.problem.times[action]
            self._remaining_capacity[current] -= self.problem.resources[action]
            buf[action] = 1.0
            buf[self._off_time + current] = (
                self._remaining_time[current] / self._limits[current]
            )
            buf[self._off_capacity + current] = (
                self._remaining_capacity[current] / self._capacities[current]
            )
            # Budgets only shrank: candidates can only drop out, so recheck
            # the survivors instead of rescanning every task.
            candidates = self._fit_idx
            keep = (
                (self.problem.times[candidates] <= self._remaining_time[current] + _TOL)
                & (
                    self.problem.resources[candidates]
                    <= self._remaining_capacity[current] + _TOL
                )
                & (candidates != action)
            )
            self._fit_idx = candidates[keep]
            self._feasible = None
            if self.dense_reward:
                reward = float(self.problem.importance[action])
        else:
            raise ConfigurationError(f"action {action} outside [0, {self.n_actions})")
        return self.state_vector(), reward, self._done, {"current": self._current}

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    def total_importance(self) -> float:
        """Σ I_j over currently assigned tasks (the terminal reward)."""
        mask = self._assigned >= 0
        return float(self.problem.importance[mask].sum())

    def allocation(self) -> Allocation:
        """The allocation built so far as a validated matrix."""
        assignment = {
            int(task): int(processor)
            for task, processor in enumerate(self._assigned)
            if processor >= 0
        }
        return Allocation.from_assignment(
            assignment, self.n_tasks, self.n_processors
        ).validate(self.problem)
