"""The TATIM allocation environment — the MDP of Section III-D.

Design follows the paper's key choices:

- **Environment** ``e``: the geometry (task importance × processor
  capacity) is encoded into the observation so the same agent architecture
  works across environments.
- **State**: which tasks have been selected so far (the paper's 0/1
  selection matrix), plus remaining per-processor budgets — a fixed-length
  vector suitable "as an input to a neural network".
- **Action**: exactly one micro-action per step, keeping the action space
  linear instead of 2^{N×M}: action ``j < N`` assigns task j to the
  *current* processor; action ``N`` closes the current processor and moves
  on. The episode ends when the last processor closes.
- **Reward**: terminal-only — Σ I_j of all allocated tasks when the agent
  reaches the terminal state, 0 otherwise (the paper's r(t)). A dense
  variant (+I_j per assignment) is available for the reward-shaping
  ablation benchmark.

The observation is maintained *incrementally*: one preallocated buffer is
written at :meth:`reset` — the geometry slices (normalized importance,
times, resources) never change within an episode, so they are written
once at construction — and :meth:`step` touches only the entries the
action actually mutates (one selected bit, two one-hot entries, the
current processor's two budget slots). Every write applies the same
arithmetic, in the same order, as a from-scratch rebuild, so the buffer
is bit-for-bit equal to what the old concatenating implementation
produced; :meth:`state_vector` returns a copy so stored transitions stay
immutable. Feasibility is tracked the same way: within a processor,
budgets only shrink, so the candidate set can only lose members — each
assignment rechecks just the surviving candidates instead of rescanning
all tasks, and closing a processor triggers the one full rescan that is
actually necessary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation

#: Feasibility slack matching the solvers' tolerance.
_TOL = 1e-12


class AllocationEnv:
    """Sequential TATIM allocation as an episodic MDP.

    Parameters
    ----------
    problem:
        The TATIM instance to allocate. The observation layout depends only
        on (n_tasks, n_processors), so agents transfer across instances
        with the same geometry — that is what CRL's per-cluster training
        relies on.
    dense_reward:
        If True, emit +I_j on each assignment instead of the terminal-only
        sum (ablation mode; default False matches the paper).
    """

    def __init__(self, problem: TATIMProblem, *, dense_reward: bool = False) -> None:
        self.problem = problem
        self.dense_reward = bool(dense_reward)
        self.n_tasks = problem.n_tasks
        self.n_processors = problem.n_processors
        self._importance_scale = float(problem.importance.max()) or 1.0
        n, m = self.n_tasks, self.n_processors
        self._limits = problem.processor_time_limits().astype(float)
        self._capacities = problem.capacities.astype(float)
        # Buffer layout: [selected | importance | times | resources |
        # processor one-hot | remaining time | remaining capacity].
        self._off_onehot = 4 * n
        self._off_time = 4 * n + m
        self._off_capacity = 4 * n + 2 * m
        self._state = np.empty(4 * n + 3 * m, dtype=float)
        self._state[n : 2 * n] = problem.importance / self._importance_scale
        self._state[2 * n : 3 * n] = problem.times / float(self._limits.mean())
        self._state[3 * n : 4 * n] = problem.resources / float(problem.capacities.mean())
        self._assigned = np.empty(n, dtype=int)
        self._remaining_time = np.empty(m, dtype=float)
        self._remaining_capacity = np.empty(m, dtype=float)
        self._empty_feasible = np.array([], dtype=int)
        self._empty_feasible.flags.writeable = False
        self.reset()

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Task assignments plus the "close current processor" action."""
        return self.n_tasks + 1

    @property
    def close_action(self) -> int:
        return self.n_tasks

    @property
    def state_dim(self) -> int:
        return 4 * self.n_tasks + 3 * self.n_processors

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._assigned.fill(-1)
        self._remaining_time[:] = self._limits
        self._remaining_capacity[:] = self._capacities
        self._current = 0
        self._done = False
        buf = self._state
        n = self.n_tasks
        buf[:n] = 0.0
        buf[self._off_onehot : self._off_time] = 0.0
        buf[self._off_onehot] = 1.0
        buf[self._off_time : self._off_capacity] = self._remaining_time / self._limits
        buf[self._off_capacity :] = self._remaining_capacity / self._capacities
        self._rescan_fits()
        return self.state_vector()

    def state_vector(self) -> np.ndarray:
        """Fixed-length observation: selection state ++ geometry ++ budgets."""
        return self._state.copy()

    # ------------------------------------------------------------------
    def _rescan_fits(self) -> None:
        """Full candidate rescan — only needed when the processor changes."""
        if self._done:
            self._fit_idx = self._empty_feasible
        else:
            current = self._current
            fits = (
                (self._assigned < 0)
                & (self.problem.times <= self._remaining_time[current] + _TOL)
                & (self.problem.resources <= self._remaining_capacity[current] + _TOL)
            )
            self._fit_idx = np.flatnonzero(fits)
        self._feasible = None

    def feasible_actions(self) -> np.ndarray:
        """Actions legal in the current state (closing is always legal).

        The result is cached per state (the training loop asks twice per
        transition: once for the next-state feasible set stored in replay
        and once when that state becomes current) and returned read-only —
        treat it as a snapshot, not a scratch array.
        """
        if self._done:
            return self._empty_feasible
        if self._feasible is None:
            feasible = np.append(self._fit_idx, self.close_action)
            feasible.flags.writeable = False
            self._feasible = feasible
        return self._feasible

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply one action; returns (state, reward, done, info)."""
        if self._done:
            raise SimulationError("episode already terminated; call reset()")
        action = int(action)
        reward = 0.0
        buf = self._state
        if action == self.close_action:
            buf[self._off_onehot + self._current] = 0.0
            self._current += 1
            if self._current >= self.n_processors:
                self._done = True
                if not self.dense_reward:
                    reward = self.total_importance()
            else:
                buf[self._off_onehot + self._current] = 1.0
            self._rescan_fits()
        elif 0 <= action < self.n_tasks:
            if self._assigned[action] >= 0:
                raise SimulationError(f"task {action} is already assigned")
            current = self._current
            if (
                self.problem.times[action] > self._remaining_time[current] + _TOL
                or self.problem.resources[action]
                > self._remaining_capacity[current] + _TOL
            ):
                raise SimulationError(
                    f"task {action} does not fit on processor {current}"
                )
            self._assigned[action] = current
            self._remaining_time[current] -= self.problem.times[action]
            self._remaining_capacity[current] -= self.problem.resources[action]
            buf[action] = 1.0
            buf[self._off_time + current] = (
                self._remaining_time[current] / self._limits[current]
            )
            buf[self._off_capacity + current] = (
                self._remaining_capacity[current] / self._capacities[current]
            )
            # Budgets only shrank: candidates can only drop out, so recheck
            # the survivors instead of rescanning every task.
            candidates = self._fit_idx
            keep = (
                (self.problem.times[candidates] <= self._remaining_time[current] + _TOL)
                & (
                    self.problem.resources[candidates]
                    <= self._remaining_capacity[current] + _TOL
                )
                & (candidates != action)
            )
            self._fit_idx = candidates[keep]
            self._feasible = None
            if self.dense_reward:
                reward = float(self.problem.importance[action])
        else:
            raise ConfigurationError(f"action {action} outside [0, {self.n_actions})")
        return self.state_vector(), reward, self._done, {"current": self._current}

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    def total_importance(self) -> float:
        """Σ I_j over currently assigned tasks (the terminal reward)."""
        mask = self._assigned >= 0
        return float(self.problem.importance[mask].sum())

    def allocation(self) -> Allocation:
        """The allocation built so far as a validated matrix."""
        assignment = {
            int(task): int(processor)
            for task, processor in enumerate(self._assigned)
            if processor >= 0
        }
        return Allocation.from_assignment(
            assignment, self.n_tasks, self.n_processors
        ).validate(self.problem)


class BatchedAllocationEnv:
    """A batch of allocation episodes stepped with one numpy pass each.

    All problems must share ``(n_tasks, n_processors)`` — the geometry
    invariant CRL's per-cluster agents already rely on. Every episode's
    observation is a row of one stacked ``(episodes, state_dim)`` buffer,
    feasibility is one boolean ``(episodes, n_actions)`` mask matrix, and
    :meth:`step` applies one action per live episode through vectorized
    gather/scatter writes.

    Bitwise contract: every per-row write applies the same arithmetic as
    the serial :class:`AllocationEnv` incremental update (scalar
    normalizations become row-broadcast divisions, the per-task
    feasibility comparisons become one matrix comparison — elementwise ops
    either way), so row ``i`` of every observable is always byte-equal to
    a serial ``AllocationEnv(problems[i])`` driven through the same
    action sequence. The property tests in
    ``tests/rl/test_kernel_identity.py`` pin this.
    """

    def __init__(self, problems, *, dense_reward: bool = False) -> None:
        problems = list(problems)
        if not problems:
            raise ConfigurationError("BatchedAllocationEnv needs at least one problem")
        first = problems[0]
        for problem in problems[1:]:
            if (
                problem.n_tasks != first.n_tasks
                or problem.n_processors != first.n_processors
            ):
                raise ConfigurationError(
                    "batched episodes must share the (n_tasks, n_processors) geometry"
                )
        self.problems = problems
        self.dense_reward = bool(dense_reward)
        self.n_tasks = first.n_tasks
        self.n_processors = first.n_processors
        n, m = self.n_tasks, self.n_processors
        count = len(problems)
        self._times = np.stack([p.times.astype(float) for p in problems])
        self._resources = np.stack([p.resources.astype(float) for p in problems])
        self._importance = np.stack([p.importance.astype(float) for p in problems])
        self._limits = np.stack(
            [p.processor_time_limits().astype(float) for p in problems]
        )
        self._capacities = np.stack([p.capacities.astype(float) for p in problems])
        importance_scale = np.array(
            [float(p.importance.max()) or 1.0 for p in problems]
        )
        self._off_onehot = 4 * n
        self._off_time = 4 * n + m
        self._off_capacity = 4 * n + 2 * m
        self._state = np.empty((count, 4 * n + 3 * m), dtype=float)
        # Geometry slices are fixed per episode; the row-broadcast divides
        # match the serial scalar normalizations elementwise.
        self._state[:, n : 2 * n] = self._importance / importance_scale[:, None]
        self._state[:, 2 * n : 3 * n] = self._times / self._limits.mean(axis=1)[:, None]
        self._state[:, 3 * n : 4 * n] = (
            self._resources / self._capacities.mean(axis=1)[:, None]
        )
        self._assigned = np.empty((count, n), dtype=int)
        self._remaining_time = np.empty((count, m), dtype=float)
        self._remaining_capacity = np.empty((count, m), dtype=float)
        self._current = np.empty(count, dtype=int)
        self._done = np.empty(count, dtype=bool)
        self._mask = np.empty((count, n + 1), dtype=bool)
        self.reset()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.problems)

    @property
    def n_actions(self) -> int:
        return self.n_tasks + 1

    @property
    def close_action(self) -> int:
        return self.n_tasks

    @property
    def state_dim(self) -> int:
        return 4 * self.n_tasks + 3 * self.n_processors

    @property
    def done_mask(self) -> np.ndarray:
        """Per-episode termination flags (treat as read-only)."""
        return self._done

    @property
    def feasible_mask(self) -> np.ndarray:
        """Boolean (episodes, n_actions) legality matrix (treat as read-only).

        Row ``i`` marks exactly the actions
        ``AllocationEnv.feasible_actions`` would return for episode ``i``
        (the close action is the last column); done rows are all-False.
        """
        return self._mask

    @property
    def states(self) -> np.ndarray:
        """The stacked (episodes, state_dim) observation buffer.

        A live view for zero-copy batched forwards — treat as read-only
        and copy rows (:meth:`state_row`) before storing them.
        """
        return self._state

    def state_row(self, row: int) -> np.ndarray:
        """Episode ``row``'s observation as an immutable-safe copy."""
        return self._state[row].copy()

    def state_rows(self, rows) -> np.ndarray:
        """Copies of the given episodes' observations, stacked."""
        return self._state[np.asarray(rows, dtype=int)]

    def feasible_row(self, row: int) -> np.ndarray:
        """Feasible action indices for episode ``row`` (close index last) —
        the same integers, in the same order, as the serial
        ``feasible_actions()``."""
        return np.flatnonzero(self._mask[row])

    # ------------------------------------------------------------------
    def reset(self, rows=None) -> None:
        """Reset all (or the given) episodes to their initial state."""
        rows = np.arange(len(self.problems)) if rows is None else np.asarray(rows, dtype=int)
        if rows.size == 0:
            return
        n = self.n_tasks
        self._assigned[rows] = -1
        self._remaining_time[rows] = self._limits[rows]
        self._remaining_capacity[rows] = self._capacities[rows]
        self._current[rows] = 0
        self._done[rows] = False
        buf = self._state
        buf[rows, :n] = 0.0
        buf[rows, self._off_onehot : self._off_time] = 0.0
        buf[rows, self._off_onehot] = 1.0
        buf[rows, self._off_time : self._off_capacity] = (
            self._remaining_time[rows] / self._limits[rows]
        )
        buf[rows, self._off_capacity :] = (
            self._remaining_capacity[rows] / self._capacities[rows]
        )
        self._refresh_mask(rows)

    def _refresh_mask(self, rows: np.ndarray) -> None:
        """Recompute feasibility for the given rows in one matrix pass.

        The serial env narrows candidates incrementally; recomputing the
        full comparison gives the identical set because the budget values
        are bitwise equal and the comparisons are elementwise.
        """
        active = ~self._done[rows]
        current = np.where(active, self._current[rows], 0)
        remaining_time = self._remaining_time[rows, current]
        remaining_capacity = self._remaining_capacity[rows, current]
        fits = (
            (self._assigned[rows] < 0)
            & (self._times[rows] <= remaining_time[:, None] + _TOL)
            & (self._resources[rows] <= remaining_capacity[:, None] + _TOL)
        )
        fits &= active[:, None]
        self._mask[rows, : self.n_tasks] = fits
        self._mask[rows, self.n_tasks] = active

    def step(self, actions, rows=None, *, check: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Apply one action per row; returns (rewards, dones) for those rows.

        ``rows`` defaults to every live episode. Raises on any infeasible
        action, like the serial env; callers that construct actions from
        the current legality mask (the lockstep trainer, batched greedy
        rollouts) pass ``check=False`` to skip the validation passes.
        """
        rows = (
            np.flatnonzero(~self._done) if rows is None else np.asarray(rows, dtype=int)
        )
        actions = np.asarray(actions, dtype=int)
        if actions.shape != rows.shape:
            raise ConfigurationError(
                f"got {actions.size} actions for {rows.size} episode rows"
            )
        if rows.size == 0:
            return np.zeros(0), np.zeros(0, dtype=bool)
        if check:
            if np.any(self._done[rows]):
                raise SimulationError("episode already terminated; call reset()")
            if np.any((actions < 0) | (actions >= self.n_actions)):
                raise ConfigurationError(
                    f"actions outside [0, {self.n_actions}) in batched step"
                )
            legal = self._mask[rows, actions]
            if not np.all(legal):
                bad = int(rows[~legal][0])
                raise SimulationError(
                    f"infeasible action {int(actions[~legal][0])} for episode row {bad}"
                )
        buf = self._state
        rewards = np.zeros(rows.size)
        closing = actions == self.close_action
        assign_rows = rows[~closing]
        if assign_rows.size:
            tasks = actions[~closing]
            current = self._current[assign_rows]
            self._assigned[assign_rows, tasks] = current
            self._remaining_time[assign_rows, current] = (
                self._remaining_time[assign_rows, current]
                - self._times[assign_rows, tasks]
            )
            self._remaining_capacity[assign_rows, current] = (
                self._remaining_capacity[assign_rows, current]
                - self._resources[assign_rows, tasks]
            )
            buf[assign_rows, tasks] = 1.0
            buf[assign_rows, self._off_time + current] = (
                self._remaining_time[assign_rows, current]
                / self._limits[assign_rows, current]
            )
            buf[assign_rows, self._off_capacity + current] = (
                self._remaining_capacity[assign_rows, current]
                / self._capacities[assign_rows, current]
            )
            if self.dense_reward:
                rewards[~closing] = self._importance[assign_rows, tasks]
        close_rows = rows[closing]
        if close_rows.size:
            current = self._current[close_rows]
            buf[close_rows, self._off_onehot + current] = 0.0
            current = current + 1
            self._current[close_rows] = current
            finished = current >= self.n_processors
            finished_rows = close_rows[finished]
            if finished_rows.size:
                self._done[finished_rows] = True
                if not self.dense_reward:
                    # Terminal reward per finished row: the same
                    # gather-then-sum as the serial total_importance().
                    closing_positions = np.flatnonzero(closing)
                    for position, row in zip(
                        closing_positions[finished], finished_rows
                    ):
                        rewards[position] = self.total_importance(int(row))
            open_rows = close_rows[~finished]
            if open_rows.size:
                buf[open_rows, self._off_onehot + self._current[open_rows]] = 1.0
        self._refresh_mask(rows)
        return rewards, self._done[rows].copy()

    # ------------------------------------------------------------------
    def total_importance(self, row: int) -> float:
        """Σ I_j over episode ``row``'s assigned tasks (the terminal reward)."""
        selected = self._assigned[row] >= 0
        return float(self._importance[row][selected].sum())

    def allocation(self, row: int) -> Allocation:
        """Episode ``row``'s allocation so far as a validated matrix."""
        assignment = {
            int(task): int(processor)
            for task, processor in enumerate(self._assigned[row])
            if processor >= 0
        }
        return Allocation.from_assignment(
            assignment, self.n_tasks, self.n_processors
        ).validate(self.problems[row])
