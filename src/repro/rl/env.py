"""The TATIM allocation environment — the MDP of Section III-D.

Design follows the paper's key choices:

- **Environment** ``e``: the geometry (task importance × processor
  capacity) is encoded into the observation so the same agent architecture
  works across environments.
- **State**: which tasks have been selected so far (the paper's 0/1
  selection matrix), plus remaining per-processor budgets — a fixed-length
  vector suitable "as an input to a neural network".
- **Action**: exactly one micro-action per step, keeping the action space
  linear instead of 2^{N×M}: action ``j < N`` assigns task j to the
  *current* processor; action ``N`` closes the current processor and moves
  on. The episode ends when the last processor closes.
- **Reward**: terminal-only — Σ I_j of all allocated tasks when the agent
  reaches the terminal state, 0 otherwise (the paper's r(t)). A dense
  variant (+I_j per assignment) is available for the reward-shaping
  ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation


class AllocationEnv:
    """Sequential TATIM allocation as an episodic MDP.

    Parameters
    ----------
    problem:
        The TATIM instance to allocate. The observation layout depends only
        on (n_tasks, n_processors), so agents transfer across instances
        with the same geometry — that is what CRL's per-cluster training
        relies on.
    dense_reward:
        If True, emit +I_j on each assignment instead of the terminal-only
        sum (ablation mode; default False matches the paper).
    """

    def __init__(self, problem: TATIMProblem, *, dense_reward: bool = False) -> None:
        self.problem = problem
        self.dense_reward = bool(dense_reward)
        self.n_tasks = problem.n_tasks
        self.n_processors = problem.n_processors
        self._importance_scale = float(problem.importance.max()) or 1.0
        self.reset()

    # ------------------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Task assignments plus the "close current processor" action."""
        return self.n_tasks + 1

    @property
    def close_action(self) -> int:
        return self.n_tasks

    @property
    def state_dim(self) -> int:
        return 4 * self.n_tasks + 3 * self.n_processors

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        self._assigned = np.full(self.n_tasks, -1, dtype=int)
        self._remaining_time = self.problem.processor_time_limits().astype(float).copy()
        self._remaining_capacity = self.problem.capacities.astype(float).copy()
        self._current = 0
        self._done = False
        return self.state_vector()

    def state_vector(self) -> np.ndarray:
        """Fixed-length observation: selection state ++ geometry ++ budgets."""
        problem = self.problem
        selected = (self._assigned >= 0).astype(float)
        processor_onehot = np.zeros(self.n_processors)
        if not self._done:
            processor_onehot[self._current] = 1.0
        mean_capacity = float(problem.capacities.mean())
        limits = problem.processor_time_limits()
        return np.concatenate(
            [
                selected,
                problem.importance / self._importance_scale,
                problem.times / float(limits.mean()),
                problem.resources / mean_capacity,
                processor_onehot,
                self._remaining_time / limits,
                self._remaining_capacity / problem.capacities,
            ]
        )

    # ------------------------------------------------------------------
    def feasible_actions(self) -> np.ndarray:
        """Actions legal in the current state (closing is always legal)."""
        if self._done:
            return np.array([], dtype=int)
        fits = (
            (self._assigned < 0)
            & (self.problem.times <= self._remaining_time[self._current] + 1e-12)
            & (self.problem.resources <= self._remaining_capacity[self._current] + 1e-12)
        )
        return np.append(np.flatnonzero(fits), self.close_action)

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply one action; returns (state, reward, done, info)."""
        if self._done:
            raise SimulationError("episode already terminated; call reset()")
        action = int(action)
        reward = 0.0
        if action == self.close_action:
            self._current += 1
            if self._current >= self.n_processors:
                self._done = True
                if not self.dense_reward:
                    reward = self.total_importance()
        elif 0 <= action < self.n_tasks:
            if self._assigned[action] >= 0:
                raise SimulationError(f"task {action} is already assigned")
            if (
                self.problem.times[action] > self._remaining_time[self._current] + 1e-12
                or self.problem.resources[action]
                > self._remaining_capacity[self._current] + 1e-12
            ):
                raise SimulationError(
                    f"task {action} does not fit on processor {self._current}"
                )
            self._assigned[action] = self._current
            self._remaining_time[self._current] -= self.problem.times[action]
            self._remaining_capacity[self._current] -= self.problem.resources[action]
            if self.dense_reward:
                reward = float(self.problem.importance[action])
        else:
            raise ConfigurationError(f"action {action} outside [0, {self.n_actions})")
        return self.state_vector(), reward, self._done, {"current": self._current}

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    def total_importance(self) -> float:
        """Σ I_j over currently assigned tasks (the terminal reward)."""
        mask = self._assigned >= 0
        return float(self.problem.importance[mask].sum())

    def allocation(self) -> Allocation:
        """The allocation built so far as a validated matrix."""
        assignment = {
            int(task): int(processor)
            for task, processor in enumerate(self._assigned)
            if processor >= 0
        }
        return Allocation.from_assignment(
            assignment, self.n_tasks, self.n_processors
        ).validate(self.problem)
