"""Clustered Reinforcement Learning (CRL) — the paper's Algorithm 1.

CRL deals with the *environment-dynamic knapsack*: the item values (task
importance) drift with context, so a single fixed-environment RL agent
mis-prices tasks. CRL instead

1. maintains a **historical environment store** of (sensing vector Z,
   importance vector I) pairs — the paper's E = [e_1 … e_N'];
2. performs **environment definition**: given the current Z, retrieve the
   most similar historical environment, either *online* via kNN over Z
   (paper's deployed mode) or *offline* via k-means clusters (the
   Section VII alternative);
3. trains one **DQN** per environment (offline: per cluster; online: per
   distinct retrieved neighbourhood, cached) on the TATIM instance with
   that environment's importance; and
4. answers allocation queries with a fast greedy rollout — the cheap
   inference phase that gives the data-driven approach its speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.ml.kmeans import KMeans
from repro.ml.knn import nearest_indices
from repro.parallel import ParallelTrainer, get_shared_store, resolve_shared
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.env import AllocationEnv
from repro.rl.replay import Transition
from repro.rl.stacked import LockstepTrainer
from repro.tatim.cache import get_allocation_cache
from repro.tatim.greedy import density_greedy
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry, span
from repro.utils.rng import as_rng, derive_seeds


class EnvironmentStore:
    """Historical environments: (sensing Z, per-task importance I) pairs.

    The stacked matrices consumed by every kNN query are cached and
    rebuilt only when the store mutates; ``version`` advances on each
    :meth:`add` and mutation listeners (e.g. an
    :class:`~repro.tatim.cache.AllocationCache` watching the store) are
    notified so environment-keyed memos can invalidate.
    """

    def __init__(self) -> None:
        self._sensing: list[np.ndarray] = []
        self._importance: list[np.ndarray] = []
        self._sensing_stack: np.ndarray | None = None
        self._importance_stack: np.ndarray | None = None
        self._listeners: list = []
        self.version = 0

    def __len__(self) -> int:
        return len(self._sensing)

    def subscribe(self, callback) -> None:
        """Call ``callback()`` after every mutation (idempotent per callback)."""
        if callback not in self._listeners:
            self._listeners.append(callback)

    def add(self, sensing: np.ndarray, importance: np.ndarray) -> None:
        sensing = np.asarray(sensing, dtype=float).ravel()
        importance = np.asarray(importance, dtype=float).ravel()
        if self._sensing:
            if sensing.size != self._sensing[0].size:
                raise DataError(
                    f"sensing dim {sensing.size} != stored dim {self._sensing[0].size}"
                )
            if importance.size != self._importance[0].size:
                raise DataError(
                    f"importance dim {importance.size} != stored dim {self._importance[0].size}"
                )
        self._sensing.append(sensing)
        self._importance.append(importance)
        self._sensing_stack = None
        self._importance_stack = None
        self.version += 1
        for callback in self._listeners:
            callback()

    @property
    def sensing_matrix(self) -> np.ndarray:
        if not self._sensing:
            raise DataError("environment store is empty")
        if self._sensing_stack is None:
            self._sensing_stack = np.vstack(self._sensing)
        return self._sensing_stack

    @property
    def importance_matrix(self) -> np.ndarray:
        if not self._importance:
            raise DataError("environment store is empty")
        if self._importance_stack is None:
            self._importance_stack = np.vstack(self._importance)
        return self._importance_stack

    def knn_importance(self, sensing: np.ndarray, k: int = 5) -> np.ndarray:
        """Environment definition e = kNN(E, Z): mean importance of the k
        historically most similar days."""
        references = self.sensing_matrix
        query = np.asarray(sensing, dtype=float).reshape(1, -1)
        index = nearest_indices(query, references, min(k, len(self)))[0]
        return self.importance_matrix[index].mean(axis=0)


#: Rough serial cost of one DQN training episode on the reference bench
#: machine; feeds the pool's work-vs-overhead fan-out decision.
EST_TRAIN_S_PER_EPISODE = 0.012


@dataclass(frozen=True)
class AgentTrainTask:
    """Self-contained, picklable spec for training one per-environment DQN.

    Everything a worker process needs — geometry, the environment's
    importance vector, hyper-parameters, and the pre-derived seed — so
    training is a pure function of the task and serial/parallel runs are
    byte-identical. ``geometry`` may be a
    :class:`~repro.parallel.shm.SharedBlobRef`: the parent then pickles
    the TATIM instance once into shared memory instead of once per task.
    """

    geometry: TATIMProblem
    importance: np.ndarray
    dqn_config: DQNConfig
    episodes: int
    seed: int
    seed_demonstrations: bool = True
    mode: str = "offline"


def train_allocation_agent(task: AgentTrainTask) -> DQNAgent:
    """Train one per-environment DQN from a spec (the parallel worker fn)."""
    with span("rl.crl.train_agent", mode=task.mode):
        geometry = resolve_shared(task.geometry)
        problem = geometry.scaled(importance=task.importance)
        env = AllocationEnv(problem)
        agent = DQNAgent(env.state_dim, env.n_actions, task.dqn_config, seed=task.seed)
        if task.seed_demonstrations:
            push_demonstration(agent, env, problem)
        agent.train(env, task.episodes)
    get_registry().counter(
        "repro_rl_crl_agents_trained_total",
        help="Per-environment DQN agents trained by CRL",
        mode=task.mode,
    ).inc()
    return agent


def train_allocation_agents_stacked(tasks: list[AgentTrainTask]) -> list[DQNAgent]:
    """Train many per-environment DQNs in one lockstep pass (see rl/stacked).

    The stacked counterpart of mapping :func:`train_allocation_agent`
    over ``tasks`` serially: agent construction, demonstration seeding
    and every RNG stream are per-task exactly as in the serial path, and
    the lockstep trainer's fused kernels are bitwise identical to the
    per-agent ones — so the returned agents are **byte-identical** to
    serially (or pool-) trained ones, just faster on one core.
    """
    with span("rl.crl.train_agents_stacked", agents=len(tasks)):
        agents: list[DQNAgent] = []
        problems: list[TATIMProblem] = []
        for task in tasks:
            geometry = resolve_shared(task.geometry)
            problem = geometry.scaled(importance=task.importance)
            env = AllocationEnv(problem)
            agent = DQNAgent(env.state_dim, env.n_actions, task.dqn_config, seed=task.seed)
            if task.seed_demonstrations:
                push_demonstration(agent, env, problem)
            agents.append(agent)
            problems.append(problem)
        LockstepTrainer(
            agents, problems, episodes=[task.episodes for task in tasks]
        ).train()
    registry = get_registry()
    for task in tasks:
        registry.counter(
            "repro_rl_crl_agents_trained_total",
            help="Per-environment DQN agents trained by CRL",
            mode=task.mode,
        ).inc()
    return agents


def push_demonstration(agent: DQNAgent, env: AllocationEnv, problem: TATIMProblem) -> None:
    """Replay the density-greedy allocation into the agent's buffer.

    The episode assigns each greedy-selected task on its greedy
    processor (in per-processor passes), then closes processors in
    order, producing a full trajectory that ends in the terminal
    reward. Transitions mirror exactly what on-policy collection would
    have stored.
    """
    demo = density_greedy(problem)
    assignment = demo.as_assignment()
    state = env.reset()
    plan: list[int] = []
    for processor in range(problem.n_processors):
        plan.extend(task for task, host in sorted(assignment.items()) if host == processor)
        plan.append(env.close_action)
    # Map each planned task assignment to the step where its processor
    # is current; the plan above already interleaves closes correctly.
    for action in plan:
        next_state, reward, done, _ = env.step(action)
        next_feasible = env.feasible_actions() if not done else np.array([], dtype=int)
        agent.buffer.push(
            Transition(
                state=state,
                action=action,
                reward=reward,
                next_state=next_state,
                done=done,
                next_feasible=next_feasible,
            )
        )
        state = next_state
    env.reset()


class CRLModel:
    """Clustered RL allocator over a fixed TATIM geometry.

    Parameters
    ----------
    geometry:
        A :class:`TATIMProblem` providing the fixed task sizes and
        processor budgets; its importance vector is a placeholder that gets
        substituted per environment.
    mode:
        ``"offline"`` — k-means clusters over sensing vectors, one agent
        per cluster (fast inference, the default); ``"online"`` — kNN
        environment definition per query with per-neighbourhood agent
        caching (the Section VII online mode).
    n_clusters, knn_k:
        Clustering / neighbourhood sizes.
    episodes:
        DQN training episodes per environment.
    seed_demonstrations:
        If True (default), each per-environment agent's replay buffer is
        pre-seeded with episodes replaying the density-greedy allocation,
        so the terminal reward signal is present from the first gradient
        step (a standard learning-from-demonstration warm start). Disable
        to measure pure exploration (ablation bench).
    jobs:
        Worker processes for per-cluster training (offline mode). The
        clusters are independent, so ``jobs=N`` fans them out over a
        process pool; seeds are derived up front in a fixed order, so any
        ``jobs`` value produces byte-identical agents. ``1`` trains
        serially in-process.
    stacked:
        Route multi-agent training through the in-process lockstep
        trainer (:class:`~repro.rl.stacked.LockstepTrainer`), which fuses
        the per-step forward/backward of all agents into stacked kernels.
        Default ``None`` auto-enables it when ``jobs == 1`` (the stacked
        path is an in-process alternative to process fan-out). The
        trained agents are byte-identical either way.
    """

    def __init__(
        self,
        geometry: TATIMProblem,
        *,
        mode: str = "offline",
        n_clusters: int = 4,
        knn_k: int = 5,
        episodes: int = 120,
        dqn_config: DQNConfig | None = None,
        seed_demonstrations: bool = True,
        jobs: int = 1,
        stacked: bool | None = None,
        seed=None,
    ) -> None:
        if mode not in ("offline", "online"):
            raise ConfigurationError(f"mode must be 'offline' or 'online', got {mode!r}")
        if n_clusters < 1 or knn_k < 1 or episodes < 1:
            raise ConfigurationError("n_clusters, knn_k and episodes must be >= 1")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.geometry = geometry
        self.mode = mode
        self.n_clusters = int(n_clusters)
        self.knn_k = int(knn_k)
        self.episodes = int(episodes)
        self.seed_demonstrations = bool(seed_demonstrations)
        self.jobs = int(jobs)
        self.stacked = stacked
        self.dqn_config = dqn_config if dqn_config is not None else DQNConfig()
        self._rng = as_rng(seed)
        self.store: EnvironmentStore | None = None
        self._kmeans: KMeans | None = None
        self._cluster_agents: dict[int, DQNAgent] = {}
        self._online_agents: dict[tuple[int, ...], DQNAgent] = {}
        # Pre-register this model's metric families so /metrics scrapes
        # show them at zero before the first event instead of omitting
        # them (the inc/observe call sites re-fetch the same children).
        registry = get_registry()
        registry.counter(
            "repro_rl_crl_agents_trained_total",
            help="Per-environment DQN agents trained by CRL",
            mode=self.mode,
        )
        registry.counter(
            "repro_rl_crl_rollouts_total",
            help="DQN greedy rollouts actually executed (cache misses)",
            mode=self.mode,
        )
        registry.counter(
            "repro_rl_crl_allocations_total",
            help="CRL allocation queries answered",
            mode=self.mode,
        )
        registry.counter(
            "repro_rl_crl_knn_lookups_total",
            help="kNN environment-definition lookups (Algorithm 1's e = kNN(E, Z))",
        )
        registry.histogram(
            "repro_rl_crl_knn_lookup_seconds",
            help="kNN environment-definition latency",
        )

    def _use_stacked(self, jobs: int, n_tasks: int) -> bool:
        """Whether a multi-agent training round should run lockstep-stacked."""
        if n_tasks < 2:
            return False
        if self.stacked is not None:
            return bool(self.stacked)
        return jobs == 1

    # ------------------------------------------------------------------
    def _train_task(self, importance: np.ndarray, seed: int) -> AgentTrainTask:
        return AgentTrainTask(
            geometry=self.geometry,
            importance=np.asarray(importance, dtype=float),
            dqn_config=self.dqn_config,
            episodes=self.episodes,
            seed=int(seed),
            seed_demonstrations=self.seed_demonstrations,
            mode=self.mode,
        )

    def _train_agent(self, importance: np.ndarray) -> DQNAgent:
        """Train one agent (online mode's lazy path).

        Routed through :class:`ParallelTrainer` so the pool's
        work-vs-overhead pre-check applies: a single payload never
        clears it, so lone cache misses keep training serially
        in-process, while the shared code path means bulk warming
        (:meth:`warm_online_agents`) and lazy misses produce
        byte-identical agents.
        """
        seed = int(self._rng.integers(0, 2**31 - 1))
        trainer = ParallelTrainer(
            train_allocation_agent,
            jobs=self.jobs,
            label="crl.online_train",
            estimated_cost_s=EST_TRAIN_S_PER_EPISODE * self.episodes,
        )
        return trainer.map([self._train_task(importance, seed)])[0]

    def warm_online_agents(self, sensing_rows, *, jobs: int | None = None) -> int:
        """Pre-train the online-mode agents a batch of queries will need.

        The lazy path trains each missing neighbourhood agent at first
        lookup. When the sensing vectors are known up front (an
        evaluation sweep, a day of forecast queries), this collects the
        *distinct missing* neighbourhood keys in first-occurrence order,
        draws each agent's seed from the model RNG in that same order —
        exactly the draws the lazy path would have made — and fans the
        independent trainings out through :class:`ParallelTrainer`.
        Subsequent :meth:`allocate` calls then hit the agent cache, and
        the warmed agents are byte-identical to lazily trained ones.
        Returns the number of agents trained.
        """
        if self.mode != "online":
            raise ConfigurationError(
                f"warm_online_agents requires mode='online', got {self.mode!r}"
            )
        self._require_fitted()
        jobs = self.jobs if jobs is None else int(jobs)
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        missing: dict[tuple, np.ndarray] = {}
        for row in sensing_rows:
            key = self._environment_key(row)
            if key in self._online_agents or key in missing:
                continue
            missing[key] = self.estimate_importance(row)
        if not missing:
            return 0
        with span("rl.crl.online_warm", agents=len(missing), jobs=jobs):
            geometry = self.geometry
            if jobs > 1 and len(missing) > 1:
                geometry = get_shared_store().share(
                    f"crl.geometry:{id(self.geometry)}", self.geometry
                )
            # Seeds are drawn per missing key in first-occurrence order:
            # the exact RNG stream serial lazy training would consume.
            tasks = [
                AgentTrainTask(
                    geometry=geometry,
                    importance=np.asarray(importance, dtype=float),
                    dqn_config=self.dqn_config,
                    episodes=self.episodes,
                    seed=int(self._rng.integers(0, 2**31 - 1)),
                    seed_demonstrations=self.seed_demonstrations,
                    mode=self.mode,
                )
                for importance in missing.values()
            ]
            if self._use_stacked(jobs, len(tasks)):
                trained = train_allocation_agents_stacked(tasks)
            else:
                trainer = ParallelTrainer(
                    train_allocation_agent,
                    jobs=jobs,
                    label="crl.online_warm",
                    estimated_cost_s=EST_TRAIN_S_PER_EPISODE * self.episodes * len(tasks),
                )
                trained = trainer.map(tasks)
            for key, agent in zip(missing, trained):
                self._online_agents[key] = agent
        return len(tasks)

    def fit(self, store: EnvironmentStore) -> "CRLModel":
        """Training phase of Algorithm 1 over the historical store.

        Offline mode trains one DQN per k-means cluster; the clusters are
        independent, so with ``jobs > 1`` they train in parallel worker
        processes (results identical to the serial run by construction).
        """
        if len(store) == 0:
            raise DataError("cannot fit CRL on an empty environment store")
        self.store = store
        cache = get_allocation_cache()
        if cache is not None:
            cache.watch(store)
        with span("rl.crl.fit", mode=self.mode, environments=len(store), jobs=self.jobs):
            if self.mode == "offline":
                k = min(self.n_clusters, len(store))
                self._kmeans = KMeans(n_clusters=k, seed=self._rng)
                labels = self._kmeans.fit_predict(store.sensing_matrix)
                importance = store.importance_matrix
                clusters = [int(c) for c in np.unique(labels)]
                seeds = derive_seeds(self._rng, len(clusters))
                estimated_s = EST_TRAIN_S_PER_EPISODE * self.episodes * len(clusters)
                geometry = self.geometry
                if self.jobs > 1 and len(clusters) > 1:
                    # One shared-memory publication instead of one pickled
                    # geometry per task; workers attach zero-copy (and the
                    # serial fallback resolves the ref from its own cache).
                    geometry = get_shared_store().share(
                        f"crl.geometry:{id(self.geometry)}", self.geometry
                    )
                tasks = [
                    AgentTrainTask(
                        geometry=geometry,
                        importance=np.asarray(
                            importance[labels == cluster].mean(axis=0), dtype=float
                        ),
                        dqn_config=self.dqn_config,
                        episodes=self.episodes,
                        seed=int(seed),
                        seed_demonstrations=self.seed_demonstrations,
                        mode=self.mode,
                    )
                    for cluster, seed in zip(clusters, seeds)
                ]
                if self._use_stacked(self.jobs, len(tasks)):
                    trained = train_allocation_agents_stacked(tasks)
                else:
                    trainer = ParallelTrainer(
                        train_allocation_agent,
                        jobs=self.jobs,
                        label="crl.fit",
                        estimated_cost_s=estimated_s,
                    )
                    trained = trainer.map(tasks)
                for cluster, agent in zip(clusters, trained):
                    self._cluster_agents[cluster] = agent
        return self

    def _require_fitted(self) -> None:
        if self.store is None:
            raise NotFittedError("CRLModel is not fitted; call fit(store) first")

    # ------------------------------------------------------------------
    def estimate_importance(self, sensing: np.ndarray) -> np.ndarray:
        """The environment definition step: estimated I for the current Z."""
        self._require_fitted()
        started = time.perf_counter()
        with span("rl.crl.knn_lookup", k=self.knn_k):
            importance = self.store.knn_importance(sensing, self.knn_k)
        registry = get_registry()
        registry.counter(
            "repro_rl_crl_knn_lookups_total",
            help="kNN environment-definition lookups (Algorithm 1's e = kNN(E, Z))",
        ).inc()
        registry.histogram(
            "repro_rl_crl_knn_lookup_seconds",
            help="kNN environment-definition latency",
        ).observe(time.perf_counter() - started)
        return importance

    def _environment_key(self, sensing: np.ndarray):
        """Stable id of the environment a query maps to (cluster / kNN set)."""
        if self.mode == "offline":
            return int(
                self._kmeans.predict(np.asarray(sensing, dtype=float).reshape(1, -1))[0]
            )
        references = self.store.sensing_matrix
        query = np.asarray(sensing, dtype=float).reshape(1, -1)
        return tuple(
            sorted(
                int(i)
                for i in nearest_indices(
                    query, references, min(self.knn_k, len(self.store))
                )[0]
            )
        )

    def _agent_for_key(self, environment_key, importance: np.ndarray) -> DQNAgent:
        if self.mode == "offline":
            return self._cluster_agents[environment_key]
        # Online: cache one agent per distinct kNN neighbourhood.
        agent = self._online_agents.get(environment_key)
        if agent is None:
            agent = self._train_agent(importance)
            self._online_agents[environment_key] = agent
        return agent

    def allocate(self, sensing: np.ndarray) -> Allocation:
        """Prediction phase of Algorithm 1: u = F1((e, s0); θ*).

        With an ambient :class:`~repro.tatim.cache.AllocationCache`
        installed, the greedy rollout is memoized per (environment id,
        quantized importance, geometry, store version): repeat queries
        that quantize to the same environment return the cached
        allocation without a rollout. Store mutations bump the version
        (and clear watched caches), so stale environments can never hit.
        """
        self._require_fitted()
        registry = get_registry()
        with span("rl.crl.allocate", mode=self.mode):
            importance = self.estimate_importance(sensing)
            environment_key = self._environment_key(sensing)
            cache = get_allocation_cache()
            key = None
            allocation = None
            if cache is not None:
                # Idempotent: covers caches installed after fit() ran.
                cache.watch(self.store)
                key = (
                    "crl.allocate",
                    self.mode,
                    self.store.version,
                    environment_key,
                    cache.array_signature(importance),
                    cache.problem_signature(self.geometry),
                )
                allocation = cache.get(key)
            if allocation is None:
                agent = self._agent_for_key(environment_key, importance)
                env = AllocationEnv(self.geometry.scaled(importance=importance))
                allocation = agent.solve(env)
                registry.counter(
                    "repro_rl_crl_rollouts_total",
                    help="DQN greedy rollouts actually executed (cache misses)",
                    mode=self.mode,
                ).inc()
                if key is not None:
                    cache.put(key, allocation)
        registry.counter(
            "repro_rl_crl_allocations_total",
            help="CRL allocation queries answered",
            mode=self.mode,
        ).inc()
        return allocation

    def allocate_batch(self, sensing_rows) -> list[Allocation]:
        """Answer many allocation queries with batched greedy rollouts.

        Queries are grouped by the environment they map to (in
        first-occurrence order, so online-mode lazy training consumes
        the model RNG exactly as the serial loop would) and each group's
        rollouts run through :meth:`DQNAgent.solve_greedy_batch` — one
        batched kernel instead of one rollout loop per query. With an
        ambient :class:`~repro.tatim.cache.AllocationCache`, hits skip
        the rollout and duplicate keys within the batch solve once, just
        as repeat queries would against a warming cache. The returned
        allocations are byte-identical to
        ``[self.allocate(z) for z in sensing_rows]``.
        """
        self._require_fitted()
        rows = [np.asarray(row, dtype=float) for row in sensing_rows]
        if not rows:
            return []
        registry = get_registry()
        results: list[Allocation | None] = [None] * len(rows)
        cache = get_allocation_cache()
        if cache is not None:
            cache.watch(self.store)
        with span("rl.crl.allocate_batch", mode=self.mode, queries=len(rows)):
            # Group cache misses per environment, deduping by cache key
            # (first occurrence solves; later duplicates reuse it, which
            # is what the serial loop's warming cache would do).
            groups: dict = {}
            for i, sensing in enumerate(rows):
                importance = self.estimate_importance(sensing)
                environment_key = self._environment_key(sensing)
                key = None
                if cache is not None:
                    key = (
                        "crl.allocate",
                        self.mode,
                        self.store.version,
                        environment_key,
                        cache.array_signature(importance),
                        cache.problem_signature(self.geometry),
                    )
                    allocation = cache.get(key)
                    if allocation is not None:
                        results[i] = allocation
                        continue
                group = groups.setdefault(environment_key, {})
                dedup_key = key if key is not None else ("query", i)
                entry = group.get(dedup_key)
                if entry is None:
                    group[dedup_key] = (importance, [i])
                else:
                    entry[1].append(i)
            rollout_counter = registry.counter(
                "repro_rl_crl_rollouts_total",
                help="DQN greedy rollouts actually executed (cache misses)",
                mode=self.mode,
            )
            for environment_key, group in groups.items():
                entries = list(group.items())
                first_importance = entries[0][1][0]
                agent = self._agent_for_key(environment_key, first_importance)
                envs = [
                    AllocationEnv(self.geometry.scaled(importance=importance))
                    for _, (importance, _) in entries
                ]
                if len(envs) > 1:
                    allocations = agent.solve_greedy_batch(envs)
                else:
                    allocations = [agent.solve(envs[0])]
                for (dedup_key, (_, indices)), allocation in zip(entries, allocations):
                    rollout_counter.inc()
                    if cache is not None and not (
                        isinstance(dedup_key, tuple) and dedup_key[0] == "query"
                    ):
                        cache.put(dedup_key, allocation)
                    for i in indices:
                        results[i] = allocation
        allocation_counter = registry.counter(
            "repro_rl_crl_allocations_total",
            help="CRL allocation queries answered",
            mode=self.mode,
        )
        for _ in rows:
            allocation_counter.inc()
        return results

    def selection_scores(self, sensing: np.ndarray) -> np.ndarray:
        """Per-task scores in [0, 1] for cooperative combination (Eq. 6).

        Allocated tasks score their (normalized) estimated importance;
        unallocated tasks score 0. This is the general process F1's soft
        output consumed by the DCTA combiner.
        """
        importance = self.estimate_importance(sensing)
        allocation = self.allocate(sensing)
        scale = float(importance.max()) or 1.0
        selected = allocation.matrix.sum(axis=1).astype(float)
        return selected * importance / scale

    def selection_scores_batch(self, sensing_rows) -> np.ndarray:
        """Stacked :meth:`selection_scores` for many queries at once.

        One :meth:`allocate_batch` call answers every query's rollout;
        the per-row score arithmetic is unchanged, so row ``i`` equals
        ``selection_scores(sensing_rows[i])`` bit for bit.
        """
        rows = [np.asarray(row, dtype=float) for row in sensing_rows]
        if not rows:
            return np.zeros((0, self.geometry.n_tasks))
        allocations = self.allocate_batch(rows)
        scores = np.empty((len(rows), self.geometry.n_tasks))
        for i, (sensing, allocation) in enumerate(zip(rows, allocations)):
            importance = self.estimate_importance(sensing)
            scale = float(importance.max()) or 1.0
            selected = allocation.matrix.sum(axis=1).astype(float)
            scores[i] = selected * importance / scale
        return scores
