"""Exploration schedules for ε-greedy agents.

The DQN's built-in multiplicative decay is one point in a family; these
schedule objects make the exploration plan explicit and swappable:

- :class:`ConstantEpsilon` — fixed exploration (tabular baselines).
- :class:`ExponentialDecay` — the DQN default, as an object.
- :class:`LinearDecay` — reach the floor at a known episode.
- :class:`PiecewiseSchedule` — arbitrary breakpoints with interpolation.

All expose ``value(step)`` and are pure functions of the step index, so
resuming an agent at step k reproduces the exact exploration state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class EpsilonSchedule:
    """Interface: exploration rate as a function of the (episode) step."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        return float(np.clip(self.value(step), 0.0, 1.0))


@dataclass(frozen=True)
class ConstantEpsilon(EpsilonSchedule):
    """Always the same exploration rate."""

    epsilon: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {self.epsilon}")

    def value(self, step: int) -> float:
        return self.epsilon


@dataclass(frozen=True)
class ExponentialDecay(EpsilonSchedule):
    """ε(k) = max(end, start · decay^k) — the DQN default as an object."""

    start: float = 1.0
    end: float = 0.05
    decay: float = 0.995

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ConfigurationError(
                f"need 0 <= end <= start <= 1, got start={self.start}, end={self.end}"
            )
        if not 0.0 < self.decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {self.decay}")

    def value(self, step: int) -> float:
        return max(self.end, self.start * self.decay**step)


@dataclass(frozen=True)
class LinearDecay(EpsilonSchedule):
    """Linear ramp from start to end over ``horizon`` steps, then flat."""

    start: float = 1.0
    end: float = 0.05
    horizon: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ConfigurationError(
                f"need 0 <= end <= start <= 1, got start={self.start}, end={self.end}"
            )
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")

    def value(self, step: int) -> float:
        if step >= self.horizon:
            return self.end
        fraction = step / self.horizon
        return self.start + fraction * (self.end - self.start)


class PiecewiseSchedule(EpsilonSchedule):
    """Linear interpolation between (step, epsilon) breakpoints."""

    def __init__(self, breakpoints: list[tuple[int, float]]) -> None:
        if len(breakpoints) < 2:
            raise ConfigurationError("need at least two breakpoints")
        steps = [s for s, _ in breakpoints]
        if steps != sorted(steps) or len(set(steps)) != len(steps):
            raise ConfigurationError("breakpoint steps must be strictly increasing")
        for _, epsilon in breakpoints:
            if not 0.0 <= epsilon <= 1.0:
                raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
        self.breakpoints = [(int(s), float(e)) for s, e in breakpoints]

    def value(self, step: int) -> float:
        points = self.breakpoints
        if step <= points[0][0]:
            return points[0][1]
        if step >= points[-1][0]:
            return points[-1][1]
        for (s0, e0), (s1, e1) in zip(points, points[1:]):
            if s0 <= step <= s1:
                fraction = (step - s0) / (s1 - s0)
                return e0 + fraction * (e1 - e0)
        raise AssertionError("unreachable")  # pragma: no cover
