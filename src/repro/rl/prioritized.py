"""Prioritized experience replay (Schaul et al. 2016, proportional variant).

In the allocation MDP the reward is terminal-only, so the few transitions
that actually carry reward signal are rare in a uniform sample. Prioritized
replay samples transitions proportionally to their last TD error
(p_i = (|δ_i| + ε)^α) and corrects the induced bias with importance-
sampling weights w_i = (N·P(i))^{-β}. Drop-in alternative to
:class:`repro.rl.replay.ReplayBuffer` via the shared push/sample surface;
the DQN agent applies the weights when the buffer provides them.

Storage rides on the same structure-of-arrays backing store as the
uniform buffer (:class:`repro.rl.replay._SoAStorage`), with priorities in
a preallocated flat array — sampling powers/normalizes a slice view
instead of materializing a Python list every draw, and priority updates
are one vectorized scatter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.rl.replay import Transition, TransitionBatch, _SoAStorage
from repro.utils.rng import as_rng


class PrioritizedReplayBuffer:
    """Proportional prioritized replay with IS-weight correction.

    Parameters
    ----------
    capacity:
        Ring-buffer size.
    alpha:
        Prioritization strength (0 = uniform).
    beta:
        Importance-sampling correction strength (1 = full correction).
    epsilon:
        Priority floor so zero-error transitions stay sampleable.
    n_actions:
        Optional action-space width enabling the feasible-mask fast path
        (see :class:`repro.rl.replay.ReplayBuffer`).
    """

    def __init__(
        self,
        capacity: int = 50_000,
        *,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
        n_actions: int | None = None,
        seed=None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        self.capacity = int(capacity)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.epsilon = float(epsilon)
        self._storage = _SoAStorage(capacity, n_actions)
        self._priorities = np.empty(min(self.capacity, 1024), dtype=float)
        self._max_priority = 1.0
        self._rng = as_rng(seed)
        self._last_indices: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._storage)

    # ------------------------------------------------------------------
    def push(self, transition: Transition) -> None:
        """Insert with maximal priority (every transition gets one look)."""
        index = self._storage.push(transition)
        if index >= self._priorities.size:
            grown = np.empty(
                min(self.capacity, max(self._priorities.size * 2, index + 1)),
                dtype=float,
            )
            grown[: self._priorities.size] = self._priorities
            self._priorities = grown
        self._priorities[index] = self._max_priority

    def _sample_indices(self, batch_size: int) -> np.ndarray:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        n = len(self._storage)
        if not n:
            raise DataError("cannot sample from an empty replay buffer")
        priorities = self._priorities[:n] ** self.alpha
        probabilities = priorities / priorities.sum()
        size = min(batch_size, n)
        indices = self._rng.choice(n, size=size, p=probabilities)
        self._last_indices = indices
        self._last_probabilities = probabilities[indices]
        return indices

    def sample(self, batch_size: int) -> list[Transition]:
        """Priority-proportional sample; records indices for the update."""
        return self._storage.gather_transitions(self._sample_indices(batch_size))

    def sample_batch(self, batch_size: int) -> TransitionBatch:
        """Priority-proportional sample as column matrices (fast path)."""
        return self._storage.gather_batch(self._sample_indices(batch_size))

    def last_sample_weights(self) -> np.ndarray:
        """IS weights of the most recent sample, normalized to max 1."""
        if self._last_indices is None:
            raise DataError("no sample drawn yet")
        n = len(self._storage)
        weights = (n * self._last_probabilities) ** (-self.beta)
        return weights / weights.max()

    def update_priorities(self, td_errors: np.ndarray) -> None:
        """Set the last sample's priorities from its TD errors."""
        if self._last_indices is None:
            raise DataError("no sample drawn yet")
        errors = np.abs(np.asarray(td_errors, dtype=float)).ravel()
        if errors.size != self._last_indices.size:
            raise DataError(
                f"{errors.size} TD errors for {self._last_indices.size} sampled transitions"
            )
        priorities = errors + self.epsilon
        self._priorities[self._last_indices] = priorities
        self._max_priority = max(self._max_priority, float(priorities.max()))

    def clear(self) -> None:
        self._storage.clear()
        self._last_indices = None
