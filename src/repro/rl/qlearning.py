"""Tabular Q-learning (Watkins & Dayan 1992).

The paper's convergence argument rests on classic Q-learning guarantees;
this tabular agent provides the reference implementation used by the tests
to verify that the allocation MDP is well-posed (tabular Q-learning finds
the optimum on small instances) and by the DQN tests as a ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.env import AllocationEnv
from repro.tatim.solution import Allocation
from repro.utils.rng import as_rng


class QLearningAgent:
    """ε-greedy tabular Q-learning over hashed state vectors."""

    def __init__(
        self,
        *,
        learning_rate: float = 0.2,
        gamma: float = 1.0,
        epsilon: float = 0.3,
        epsilon_decay: float = 0.995,
        epsilon_min: float = 0.02,
        seed=None,
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 <= gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1], got {gamma}")
        self.learning_rate = learning_rate
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self._rng = as_rng(seed)
        self._q: dict[tuple[bytes, int], float] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(state: np.ndarray) -> bytes:
        return np.round(state, 6).tobytes()

    def q_value(self, state: np.ndarray, action: int) -> float:
        return self._q.get((self._key(state), int(action)), 0.0)

    def best_action(self, state: np.ndarray, feasible: np.ndarray) -> int:
        # Hash the state once, not once per candidate action: the key is a
        # full-vector round + serialize, the lookups are cheap dict gets.
        key = self._key(state)
        values = np.fromiter(
            (self._q.get((key, int(a)), 0.0) for a in feasible),
            dtype=float,
            count=feasible.size,
        )
        return int(feasible[int(np.argmax(values))])

    def act(self, state: np.ndarray, feasible: np.ndarray, *, greedy: bool = False) -> int:
        if feasible.size == 0:
            raise ConfigurationError("no feasible actions to act on")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.choice(feasible))
        return self.best_action(state, feasible)

    # ------------------------------------------------------------------
    def train_episode(self, env: AllocationEnv) -> float:
        """One episode of on-line Q-learning; returns the episode return."""
        state = env.reset()
        total = 0.0
        while not env.done:
            feasible = env.feasible_actions()
            action = self.act(state, feasible)
            next_state, reward, done, _ = env.step(action)
            total += reward
            if done:
                target = reward
            else:
                next_feasible = env.feasible_actions()
                next_key = self._key(next_state)
                best_next = max(
                    self._q.get((next_key, int(a)), 0.0) for a in next_feasible
                )
                target = reward + self.gamma * best_next
            key = (self._key(state), int(action))
            old = self._q.get(key, 0.0)
            self._q[key] = old + self.learning_rate * (target - old)
            state = next_state
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)
        return total

    def train(self, env: AllocationEnv, episodes: int) -> np.ndarray:
        """Run ``episodes`` episodes; returns the per-episode returns."""
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        return np.array([self.train_episode(env) for _ in range(episodes)])

    def solve(self, env: AllocationEnv) -> Allocation:
        """Greedy rollout of the learned policy."""
        state = env.reset()
        while not env.done:
            action = self.act(state, env.feasible_actions(), greedy=True)
            state, _, _, _ = env.step(action)
        return env.allocation()

    @property
    def table_size(self) -> int:
        return len(self._q)
