"""REINFORCE (Monte-Carlo policy gradient) on the allocation MDP.

A policy-gradient alternative to the value-based DQN: a linear-softmax
policy over the environment's state features, updated with the classic
Williams estimator

    ∇J = E[ Σ_t ∇ log π(a_t | s_t) · (G − b) ]

where G is the episode return (the terminal Σ I_j reward — no
discounting needed, γ=1) and b a running-mean baseline. Infeasible
actions are masked out of the softmax, so sampled trajectories are always
valid allocations. The linear policy keeps the gradient exact and the
implementation dependency-free; it is deliberately *weaker* than the DQN
(no state interactions), making the DQN-vs-REINFORCE ablation informative
about how much the value network's capacity buys.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.env import AllocationEnv
from repro.tatim.solution import Allocation
from repro.utils.rng import as_rng


class ReinforceAgent:
    """Linear-softmax REINFORCE with a running-mean baseline.

    Parameters
    ----------
    state_dim, n_actions:
        Environment geometry.
    learning_rate:
        Step size of the policy-gradient ascent.
    temperature:
        Softmax temperature (higher = more exploration).
    baseline_decay:
        Exponential-moving-average factor of the return baseline.
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        *,
        learning_rate: float = 0.05,
        temperature: float = 1.0,
        baseline_decay: float = 0.9,
        seed=None,
    ) -> None:
        if state_dim < 1 or n_actions < 1:
            raise ConfigurationError("state_dim and n_actions must be >= 1")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        if temperature <= 0:
            raise ConfigurationError(f"temperature must be > 0, got {temperature}")
        if not 0.0 <= baseline_decay < 1.0:
            raise ConfigurationError(
                f"baseline_decay must be in [0, 1), got {baseline_decay}"
            )
        self.state_dim = int(state_dim)
        self.n_actions = int(n_actions)
        self.learning_rate = float(learning_rate)
        self.temperature = float(temperature)
        self.baseline_decay = float(baseline_decay)
        self.weights = np.zeros((state_dim, n_actions))
        self.baseline = 0.0
        self._rng = as_rng(seed)

    # ------------------------------------------------------------------
    def _policy(self, state: np.ndarray, feasible: np.ndarray) -> np.ndarray:
        """Masked softmax over feasible actions (probabilities over them)."""
        logits = (state @ self.weights)[feasible] / self.temperature
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def act(self, state: np.ndarray, feasible: np.ndarray, *, greedy: bool = False) -> int:
        if feasible.size == 0:
            raise ConfigurationError("no feasible actions to act on")
        probabilities = self._policy(state, feasible)
        if greedy:
            return int(feasible[int(np.argmax(probabilities))])
        return int(self._rng.choice(feasible, p=probabilities))

    # ------------------------------------------------------------------
    def train_episode(self, env: AllocationEnv) -> float:
        """Sample one episode and apply the policy-gradient update."""
        state = env.reset()
        trajectory: list[tuple[np.ndarray, np.ndarray, int, np.ndarray]] = []
        episode_return = 0.0
        while not env.done:
            feasible = env.feasible_actions()
            if feasible.size == 0:
                raise ConfigurationError("no feasible actions to act on")
            # Inline act() and keep its probabilities: the weights don't
            # change until the episode ends, so the gradient loop below can
            # reuse these instead of recomputing every forward pass.
            probabilities = self._policy(state, feasible)
            action = int(self._rng.choice(feasible, p=probabilities))
            trajectory.append((state, feasible, action, probabilities))
            state, reward, _, _ = env.step(action)
            episode_return += reward
        advantage = episode_return - self.baseline
        self.baseline = (
            self.baseline_decay * self.baseline
            + (1.0 - self.baseline_decay) * episode_return
        )
        # ∇ log π for linear softmax: x ⊗ (1{a} − π) over feasible actions.
        gradient = np.zeros_like(self.weights)
        delta = np.zeros(self.n_actions)
        for features, feasible, action, probabilities in trajectory:
            delta.fill(0.0)
            delta[feasible] -= probabilities
            delta[action] += 1.0
            gradient += np.outer(features, delta) / self.temperature
        self.weights += self.learning_rate * advantage * gradient / max(len(trajectory), 1)
        return episode_return

    def train(self, env: AllocationEnv, episodes: int) -> np.ndarray:
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        return np.array([self.train_episode(env) for _ in range(episodes)])

    def solve(self, env: AllocationEnv) -> Allocation:
        """Greedy rollout of the learned policy."""
        state = env.reset()
        while not env.done:
            action = self.act(state, env.feasible_actions(), greedy=True)
            state, _, _, _ = env.step(action)
        return env.allocation()
