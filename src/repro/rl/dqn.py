"""Deep Q-learning agent for the allocation MDP (Algorithm 1's optimizer).

Implements the loss of Algorithm 1 line 4,

    L(s, a | θ) = (r + λ · max_{a'} Q(s', a'|θ⁻) − Q(s, a|θ))²,

with the standard stabilizers: an experience-replay buffer, a periodically
synced target network θ⁻, and ε-greedy exploration over the *feasible*
action set (infeasible actions are masked both when acting and inside the
Bellman max, so the learned policy always emits valid allocations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.neural import MLP, Adam
from repro.rl.env import AllocationEnv, BatchedAllocationEnv
from repro.rl.replay import ReplayBuffer, Transition, TransitionBatch
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry, span
from repro.utils.rng import as_rng

#: Q-value assigned to masked (infeasible) actions.
MASKED_Q = -1e9


@dataclass(frozen=True)
class DQNConfig:
    """Hyper-parameters of the DQN agent.

    ``double_q`` enables Double DQN (van Hasselt 2016): the online network
    selects the argmax action and the target network evaluates it,
    countering the max-operator's overestimation bias.
    """

    hidden_sizes: tuple[int, ...] = (128, 64)
    learning_rate: float = 1e-3
    gamma: float = 1.0
    double_q: bool = False
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay: float = 0.995
    batch_size: int = 32
    buffer_capacity: int = 20_000
    target_sync_every: int = 200
    train_every: int = 1
    warmup_transitions: int = 100

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.hidden_sizes:
            raise ConfigurationError("hidden_sizes must not be empty")


class DQNAgent:
    """DQN over a fixed (state_dim, n_actions) geometry."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        config: DQNConfig | None = None,
        *,
        buffer=None,
        epsilon_schedule=None,
        seed=None,
    ) -> None:
        """``buffer`` optionally injects a replay implementation (e.g.
        :class:`repro.rl.prioritized.PrioritizedReplayBuffer`); anything
        with push/sample — and optionally last_sample_weights /
        update_priorities for prioritized variants — works.

        ``epsilon_schedule`` optionally overrides the config's
        multiplicative decay with an explicit
        :class:`repro.rl.schedules.EpsilonSchedule`, evaluated on the
        episode counter."""
        if state_dim < 1 or n_actions < 1:
            raise ConfigurationError("state_dim and n_actions must be >= 1")
        self.state_dim = int(state_dim)
        self.n_actions = int(n_actions)
        self.config = config if config is not None else DQNConfig()
        rng = as_rng(seed)
        layer_sizes = (self.state_dim, *self.config.hidden_sizes, self.n_actions)
        self.online = MLP(
            layer_sizes,
            optimizer=Adam(learning_rate=self.config.learning_rate),
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        self.target = MLP(layer_sizes, seed=int(rng.integers(0, 2**31 - 1)))
        self.target.copy_from(self.online)
        self.buffer = buffer if buffer is not None else ReplayBuffer(
            self.config.buffer_capacity, n_actions=self.n_actions, seed=rng
        )
        self.epsilon_schedule = epsilon_schedule
        self.epsilon = (
            epsilon_schedule(0) if epsilon_schedule is not None else self.config.epsilon_start
        )
        self._rng = rng
        self._steps = 0
        self._episodes = 0
        # Pre-register the agent's metric families so /metrics scrapes show
        # them at zero before the first training event instead of omitting
        # them (the inc/set call sites re-fetch the same children).
        registry = get_registry()
        registry.counter(
            "repro_rl_dqn_train_steps_total", help="DQN gradient steps taken"
        )
        registry.counter(
            "repro_rl_dqn_episodes_total", help="DQN training episodes completed"
        )
        registry.gauge("repro_rl_dqn_loss", help="Latest DQN batch loss")
        registry.gauge("repro_rl_dqn_epsilon", help="Current exploration rate")
        registry.gauge(
            "repro_rl_replay_size", help="Transitions held in the replay buffer"
        )
        registry.gauge(
            "repro_rl_dqn_episode_return", help="Latest training-episode return"
        )

    # ------------------------------------------------------------------
    def q_values(self, state: np.ndarray) -> np.ndarray:
        return self.online.forward(state.reshape(1, -1)).ravel()

    def act(self, state: np.ndarray, feasible: np.ndarray, *, greedy: bool = False) -> int:
        if feasible.size == 0:
            raise ConfigurationError("no feasible actions to act on")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.choice(feasible))
        values = self.q_values(state)
        mask = np.full(self.n_actions, MASKED_Q)
        mask[feasible] = values[feasible]
        return int(np.argmax(mask))

    # ------------------------------------------------------------------
    def _feasible_mask_matrix(self, batch) -> np.ndarray:
        """Additive mask (0 feasible, MASKED_Q infeasible) for the whole batch.

        Buffers that know the action-space width hand back a boolean
        legality matrix, turned into the additive mask with one
        ``np.where``; otherwise the ragged feasible-index store is
        scattered over flattened (row, action) index arrays — no
        per-transition Python loop either way. Accepts a
        :class:`TransitionBatch` or a plain transition list.
        """
        if isinstance(batch, list):
            batch = TransitionBatch.from_transitions(batch)
        if batch.feasible_mask is not None:
            return np.where(batch.feasible_mask, 0.0, MASKED_Q)
        count = len(batch)
        mask = np.full((count, self.n_actions), MASKED_Q)
        sizes = np.fromiter(
            (f.size for f in batch.next_feasible), dtype=np.intp, count=count
        )
        if sizes.any():
            rows = np.repeat(np.arange(count), sizes)
            cols = np.concatenate(batch.next_feasible)
            mask[rows, cols] = 0.0
        return mask

    def train_step(self) -> float | None:
        """One gradient step on a replay batch; None during warmup."""
        if len(self.buffer) < self.config.warmup_transitions:
            return None
        sample_batch = getattr(self.buffer, "sample_batch", None)
        if sample_batch is not None:
            batch = sample_batch(self.config.batch_size)
        else:  # injected legacy buffer: column-ize its transition list
            batch = TransitionBatch.from_transitions(
                self.buffer.sample(self.config.batch_size)
            )
        count = len(batch)

        mask = self._feasible_mask_matrix(batch)
        target_q = self.target.forward(batch.next_states) + mask
        if self.config.double_q:
            # Double DQN: online net picks the action, target net scores it.
            online_q = self.online.forward(batch.next_states) + mask
            chosen = online_q.argmax(axis=1)
            best_next = target_q[np.arange(count), chosen]
        else:
            best_next = target_q.max(axis=1)
        best_next[batch.dones] = 0.0
        # One forward serves both the TD-error readout and the gradient
        # step below (train_from_cache) — 3 forwards/step down to 2.
        predictions = self.online.forward(batch.states, cache=True)
        targets = predictions.copy()
        rows = np.arange(count)
        bellman = batch.rewards + self.config.gamma * best_next
        td_errors = bellman - predictions[rows, batch.actions]
        if hasattr(self.buffer, "update_priorities"):
            self.buffer.update_priorities(td_errors)
            # Importance-sampling correction: scale each transition's
            # residual by its IS weight (exact for squared loss, whose
            # gradient is linear in the residual).
            weights = self.buffer.last_sample_weights()
            targets[rows, batch.actions] = predictions[rows, batch.actions] + weights * td_errors
        else:
            targets[rows, batch.actions] = bellman
        loss = self.online.train_from_cache(targets)
        registry = get_registry()
        registry.counter(
            "repro_rl_dqn_train_steps_total", help="DQN gradient steps taken"
        ).inc()
        registry.gauge("repro_rl_dqn_loss", help="Latest DQN batch loss").set(loss)
        return loss

    def train_episode(self, env: AllocationEnv) -> float:
        """Collect one episode into replay, training as transitions arrive."""
        state = env.reset()
        episode_return = 0.0
        while not env.done:
            feasible = env.feasible_actions()
            action = self.act(state, feasible)
            next_state, reward, done, _ = env.step(action)
            next_feasible = env.feasible_actions() if not done else np.array([], dtype=int)
            self.buffer.push(
                Transition(
                    state=state,
                    action=action,
                    reward=reward,
                    next_state=next_state,
                    done=done,
                    next_feasible=next_feasible,
                )
            )
            self._steps += 1
            if self._steps % self.config.train_every == 0:
                self.train_step()
            if self._steps % self.config.target_sync_every == 0:
                self.target.copy_from(self.online)
            episode_return += reward
            state = next_state
        self._episodes += 1
        if self.epsilon_schedule is not None:
            self.epsilon = self.epsilon_schedule(self._episodes)
        else:
            self.epsilon = max(
                self.config.epsilon_end, self.epsilon * self.config.epsilon_decay
            )
        registry = get_registry()
        registry.counter(
            "repro_rl_dqn_episodes_total", help="DQN training episodes completed"
        ).inc()
        registry.gauge("repro_rl_dqn_epsilon", help="Current exploration rate").set(
            self.epsilon
        )
        registry.gauge(
            "repro_rl_replay_size", help="Transitions held in the replay buffer"
        ).set(len(self.buffer))
        registry.gauge(
            "repro_rl_dqn_episode_return", help="Latest training-episode return"
        ).set(episode_return)
        return episode_return

    def train(self, env: AllocationEnv, episodes: int) -> np.ndarray:
        """Train for ``episodes`` episodes; returns per-episode returns."""
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        with span("rl.dqn.train", episodes=episodes):
            return np.array([self.train_episode(env) for _ in range(episodes)])

    def solve(self, env: AllocationEnv) -> Allocation:
        """Greedy rollout: the fast inference phase of Algorithm 1."""
        state = env.reset()
        while not env.done:
            action = self.act(state, env.feasible_actions(), greedy=True)
            state, _, _, _ = env.step(action)
        return env.allocation()

    def solve_greedy_batch(self, envs) -> list[Allocation]:
        """Greedy rollouts over many instances, stepped in lockstep.

        Accepts a sequence of :class:`AllocationEnv` (or a prebuilt
        :class:`BatchedAllocationEnv`) sharing this agent's geometry and
        returns one :class:`Allocation` per episode. Each step runs one
        row-isolated batched forward (:meth:`MLP.forward_rows`) plus one
        masked argmax over the feasibility matrix, so the returned
        allocations are byte-identical to calling :meth:`solve` per env
        in a loop — at a fraction of the per-rollout overhead. Episodes
        that finish early simply drop out of the live set.
        """
        if isinstance(envs, BatchedAllocationEnv):
            batch = envs
            batch.reset()
        else:
            envs = list(envs)
            if not envs:
                return []
            batch = BatchedAllocationEnv([env.problem for env in envs])
        with span("rl.dqn.solve_batch", episodes=len(batch)):
            while True:
                rows = np.flatnonzero(~batch.done_mask)
                if rows.size == 0:
                    break
                values = self.online.forward_rows(batch.states[rows])
                masked = np.where(batch.feasible_mask[rows], values, MASKED_Q)
                batch.step(masked.argmax(axis=1), rows=rows, check=False)
        return [batch.allocation(row) for row in range(len(batch))]
