"""Timed spans and per-run traces.

A :class:`RunTrace` is the trace sink of one run: a flat list of
:class:`SpanRecord` entries with parent links, produced by the
:func:`span` context manager against a monotonic clock
(``time.perf_counter``), timestamped relative to the trace's start.

    with use_run_trace(RunTrace()) as trace:
        with span("core.epoch", day=3):
            with span("tatim.solve", solver="density_greedy"):
                ...
    trace.write_jsonl("trace.jsonl")
    print(trace.flame())

Like the metrics registry, tracing is off by default: with no active
trace, :func:`span` returns a shared no-op context manager, so
instrumented code costs one global read and an ``with`` on a stateless
object. Spans record exceptions (the raising type lands in the span's
attrs under ``"error"``) and always close, so traces stay well-nested
even on failure paths.

**Cross-process request tracing.** A *trace id* is an opaque string that
follows one logical request across process boundaries. The serving
plane's dispatcher mints one per request and installs it around worker
execution via :func:`use_trace_id`; while set, every :func:`span` tags
itself with a ``trace_id`` attr automatically. Spans that carry a
``trace_id`` register as that id's *anchor* in their :class:`RunTrace`
(first span wins), so worker-side spans merged from another process can
re-parent under the originating request's span — see
``repro.parallel.trainer.merge_worker_spans``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DataError


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    ``start``/``end`` are seconds relative to the owning trace's start
    (monotonic clock); ``parent`` is the index of the enclosing span in
    the trace's span list, or None at the root; ``depth`` is the nesting
    level (0 = root). Bridged spans (e.g. from the edge DES) may carry
    simulated rather than wall-clock seconds — they mark themselves via
    attrs (``clock="sim"``).
    """

    name: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        try:
            return cls(
                name=str(payload["name"]),
                start=float(payload["start"]),
                end=None if payload.get("end") is None else float(payload["end"]),
                depth=int(payload.get("depth", 0)),
                parent=payload.get("parent"),
                attrs=dict(payload.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed span record: {payload!r}") from exc


class RunTrace:
    """Ordered span sink for one run, serializable to JSONL."""

    def __init__(self, *, label: str = "run", clock=time.perf_counter) -> None:
        self.label = label
        self._clock = clock
        self._t0 = clock()
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []
        #: trace_id -> index of the first span that carried it (the span
        #: cross-process children re-parent under on telemetry merge).
        self.anchors: dict[str, int] = {}

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current offset on this trace's clock (relative seconds)."""
        return self._clock() - self._t0

    def current_index(self) -> int | None:
        """Index of the innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, attrs: dict | None = None) -> int:
        """Open a span; returns its index for :meth:`finish`."""
        record = SpanRecord(
            name=name,
            start=self._clock() - self._t0,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            attrs=dict(attrs) if attrs else {},
        )
        index = len(self.spans)
        self.spans.append(record)
        self._stack.append(index)
        trace_id = record.attrs.get("trace_id")
        if trace_id is not None:
            self.anchors.setdefault(str(trace_id), index)
        return index

    def finish(self, index: int, *, error: str | None = None) -> SpanRecord:
        """Close the span opened as ``index`` (must be the innermost)."""
        if not self._stack or self._stack[-1] != index:
            raise DataError(
                f"span {index} is not the innermost open span; "
                f"stack is {self._stack}"
            )
        self._stack.pop()
        record = self.spans[index]
        record.end = self._clock() - self._t0
        if error is not None:
            record.attrs["error"] = error
        return record

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        attrs: dict | None = None,
        parent: int | None = None,
    ) -> int:
        """Append a pre-timed span (bridged from another event source).

        Unlike :meth:`begin`/:meth:`finish`, timestamps are taken as
        given, so foreign timelines (the edge DES's simulated seconds)
        can flow into the same sink. Returns the new span's index.
        """
        if end < start:
            raise DataError(f"span {name!r} ends before it starts ({start} .. {end})")
        if parent is not None and not (0 <= parent < len(self.spans)):
            raise DataError(f"parent index {parent} out of range")
        depth = 0 if parent is None else self.spans[parent].depth + 1
        record = SpanRecord(
            name=name,
            start=float(start),
            end=float(end),
            depth=depth,
            parent=parent,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(record)
        index = len(self.spans) - 1
        trace_id = record.attrs.get("trace_id")
        if trace_id is not None:
            self.anchors.setdefault(str(trace_id), index)
        return index

    def touch(self, index: int) -> SpanRecord:
        """Extend a pre-timed span's end to now (anchor-span close-out)."""
        record = self.spans[index]
        record.end = self._clock() - self._t0
        return record

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """End of the last closed span (relative seconds)."""
        ends = [s.end for s in self.spans if s.end is not None]
        return max(ends) if ends else 0.0

    def roots(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent is None]

    def children_of(self, index: int) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent == index]

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One meta line plus one JSON object per span."""
        lines = [json.dumps({"kind": "meta", "label": self.label, "spans": len(self.spans)})]
        for record in self.spans:
            payload = record.to_dict()
            payload["kind"] = "span"
            lines.append(json.dumps(payload))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "RunTrace":
        """Parse a serialized trace; inverse of :meth:`to_jsonl`."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"invalid JSONL line: {line[:80]!r}") from exc
            kind = payload.get("kind", "span")
            if kind == "meta":
                trace.label = str(payload.get("label", trace.label))
            elif kind == "span":
                trace.spans.append(SpanRecord.from_dict(payload))
            # Unknown kinds are skipped for forward compatibility.
        return trace

    @classmethod
    def read_jsonl(cls, path) -> "RunTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # ------------------------------------------------------------------
    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-name rollup: calls, total time, and self time.

        Self time is a span's duration minus its direct children's — the
        flame-graph quantity that shows where time is actually spent
        rather than merely passed through.
        """
        child_time = [0.0] * len(self.spans)
        for record in self.spans:
            if record.parent is not None and record.end is not None:
                child_time[record.parent] += record.duration
        rollup: dict[str, dict[str, float]] = {}
        for index, record in enumerate(self.spans):
            if record.end is None:
                continue
            entry = rollup.setdefault(
                record.name, {"calls": 0, "total_s": 0.0, "self_s": 0.0}
            )
            entry["calls"] += 1
            entry["total_s"] += record.duration
            entry["self_s"] += max(0.0, record.duration - child_time[index])
        return rollup

    def flame(self, *, width: int = 50, max_names: int = 20) -> str:
        """Text flame summary: nesting tree plus a self-time bar chart."""
        from repro.utils.ascii_charts import bar_chart

        if not self.spans:
            return "(empty trace)"
        lines = [f"trace {self.label!r}: {len(self.spans)} spans, {self.duration:.3f}s"]
        shown = 0
        for record in self.spans:
            if shown >= 40:
                lines.append(f"  ... ({len(self.spans) - shown} more spans)")
                break
            marker = " [sim]" if record.attrs.get("clock") == "sim" else ""
            error = f" !{record.attrs['error']}" if "error" in record.attrs else ""
            lines.append(
                f"  {'  ' * record.depth}{record.name}  {record.duration:.4f}s{marker}{error}"
            )
            shown += 1
        rollup = self.aggregate()
        if rollup:
            ranked = sorted(rollup.items(), key=lambda kv: -kv[1]["self_s"])[:max_names]
            labels = [f"{name} (x{int(entry['calls'])})" for name, entry in ranked]
            values = [entry["self_s"] for _, entry in ranked]
            lines.append("")
            lines.append(
                bar_chart(labels, values, width=width, title="self time by span name", unit="s")
            )
        return "\n".join(lines)


class _SpanContext:
    """Context manager that records one span into a RunTrace."""

    __slots__ = ("_trace", "_name", "_attrs", "_index")

    def __init__(self, trace: RunTrace, name: str, attrs: dict) -> None:
        self._trace = trace
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self._index = self._trace.begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._trace.finish(
            self._index, error=exc_type.__name__ if exc_type is not None else None
        )
        return False


class _NoopSpan:
    """Stateless reusable stand-in when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_active_trace: RunTrace | None = None
_current_trace_id: str | None = None


def current_trace_id() -> str | None:
    """The ambient request trace id, or None outside any request."""
    return _current_trace_id


def set_trace_id(trace_id: str | None) -> str | None:
    """Install (or clear, with None) the ambient request trace id."""
    global _current_trace_id
    _current_trace_id = trace_id
    return trace_id


@contextmanager
def use_trace_id(trace_id: str | None) -> Iterator[str | None]:
    """Tag every span opened inside with ``trace_id`` (None = no-op).

    This is the cross-process propagation primitive: the dispatcher
    mints an id per request, the worker entry point re-installs it, and
    spans on both sides then share the attr that re-parents them into
    one logical request on telemetry merge.
    """
    if trace_id is None:
        yield None
        return
    previous = _current_trace_id
    set_trace_id(trace_id)
    try:
        yield trace_id
    finally:
        set_trace_id(previous)


def current_run_trace() -> RunTrace | None:
    """The installed trace sink, or None when tracing is off."""
    return _active_trace


def set_run_trace(trace: RunTrace | None) -> RunTrace | None:
    """Install (or clear, with None) the process-wide trace sink."""
    global _active_trace
    _active_trace = trace
    return trace


@contextmanager
def use_run_trace(trace: RunTrace) -> Iterator[RunTrace]:
    """Temporarily install ``trace``; restores the previous sink on exit."""
    previous = _active_trace
    set_run_trace(trace)
    try:
        yield trace
    finally:
        set_run_trace(previous)


def span(name: str, **attrs):
    """Open a timed span in the active trace (no-op when tracing is off).

    When an ambient trace id is installed (:func:`use_trace_id`), the
    span tags itself with it under ``trace_id`` unless the caller passed
    one explicitly.
    """
    trace = _active_trace
    if trace is None:
        return _NOOP_SPAN
    if _current_trace_id is not None and "trace_id" not in attrs:
        attrs["trace_id"] = _current_trace_id
    return _SpanContext(trace, name, attrs)
