"""Streaming time-series telemetry: windowed registry deltas in a ring.

The batch exporters dump the registry once, at the end of a run; a live
``repro serve`` process needs the *trajectory* — requests/sec and tail
latency per window, not per run. :class:`TimeSeriesAggregator` provides
that view at bounded memory: it snapshots :class:`MetricsRegistry`
deltas into fixed-width **tumbling windows** held in a bounded ring
(``collections.deque(maxlen=max_windows)``), so a million-event run
costs O(families × windows), never O(events).

Per closed window it records, sparsely (only instruments that moved):

- **counters** — the window's delta and rate/sec;
- **gauges** — the latest value (only when it changed);
- **histograms** — the window's count/sum deltas, rate, mean, and
  bucket-interpolated percentile *estimates* (p50/p95/p99 by default) —
  the same linear-within-bucket rule as Prometheus ``histogram_quantile``,
  so accuracy is bounded by the bucket edges, not by sample storage.

Windows serialize to JSONL (one meta line + one line per window); the
``repro top`` CLI renders either a saved file or a live ``/timeseries``
endpoint back into the window table via :func:`timeseries_table`.

Ticking is **pull-based**: call :meth:`TimeSeriesAggregator.maybe_tick`
from any loop (the dispatcher does, once per drain iteration) and/or let
the HTTP sidecar's sampler thread drive it. Closing is idempotent and
lock-protected, so both may race freely. A window that closes with no
movement stores an empty row list — stalls stay cheap. All deltas
observed at close time are attributed to the window being closed: after
a long stall the first catch-up window absorbs the backlog and the rest
close empty (standard tumbling-window attribution).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DataError
from repro.telemetry.exporters import _edge_text
from repro.telemetry.instruments import Histogram
from repro.telemetry.registry import MetricsRegistry, NullRegistry, get_registry

#: Percentiles estimated per histogram per window.
DEFAULT_QUANTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


def estimate_quantile(
    edges: tuple[float, ...],
    bucket_deltas: list[int],
    overflow: int,
    q: float,
) -> float:
    """Bucket-interpolated quantile of one window's histogram delta.

    Linear interpolation inside the bucket holding the rank (the
    ``histogram_quantile`` rule); the first bucket interpolates from 0,
    and ranks landing in the +Inf overflow bucket clamp to the last
    edge — estimates are only as sharp as the bucket grid.
    """
    total = sum(bucket_deltas) + overflow
    if total <= 0:
        return 0.0
    rank = (q / 100.0) * total
    running = 0.0
    for index, count in enumerate(bucket_deltas):
        if count <= 0:
            continue
        if running + count >= rank:
            lower = edges[index - 1] if index > 0 else 0.0
            upper = edges[index]
            return lower + (upper - lower) * (rank - running) / count
        running += count
    return float(edges[-1])


@dataclass
class WindowSnapshot:
    """One closed tumbling window: per-instrument deltas and rates.

    ``rows`` is sparse — only instruments that moved during the window
    appear (gauges: only when the value changed). Row shapes::

        {"name", "kind": "counter",   "labels", "delta", "rate_per_s"}
        {"name", "kind": "gauge",     "labels", "value"}
        {"name", "kind": "histogram", "labels", "count_delta",
         "sum_delta", "overflow_delta", "rate_per_s", "mean",
         "p50", "p95", "p99", "le": {edge: cumulative window count}}

    The histogram ``le`` map holds this window's *delta* counts in
    cumulative (Prometheus) form — the SLO evaluator reads good/bad
    fractions off it without ever touching raw events.
    """

    index: int
    start_s: float
    end_s: float
    rows: list[dict] = field(default_factory=list)

    @property
    def width_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "index": int(self.index),
            "start_s": float(self.start_s),
            "end_s": float(self.end_s),
            "rows": self.rows,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowSnapshot":
        try:
            return cls(
                index=int(payload["index"]),
                start_s=float(payload["start_s"]),
                end_s=float(payload["end_s"]),
                rows=list(payload.get("rows", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed window record: {payload!r}") from exc


class TimeSeriesAggregator:
    """Snapshots registry deltas into a bounded ring of tumbling windows.

    Parameters
    ----------
    registry:
        The registry to diff. ``None`` (the default) resolves the
        ambient process registry *at each tick*, so an aggregator built
        before ``use_registry`` installs the real one still sees it.
    window_s:
        Tumbling-window width in (clock) seconds.
    max_windows:
        Ring capacity — the O(windows) memory bound. Older windows fall
        off the front; ``dropped`` counts them.
    clock:
        Monotonic time source. Injectable so the edge DES can drive
        windows on *simulated* seconds (see
        :func:`repro.telemetry.bridge.edgesim_timeseries`).
    quantiles:
        Percentiles estimated per histogram per window.
    """

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry | None = None,
        *,
        window_s: float = 1.0,
        max_windows: int = 240,
        clock=time.perf_counter,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        if max_windows < 1:
            raise ConfigurationError(f"max_windows must be >= 1, got {max_windows}")
        self._registry = registry
        self.window_s = float(window_s)
        self.max_windows = int(max_windows)
        self.quantiles = tuple(float(q) for q in quantiles)
        self.windows: deque[WindowSnapshot] = deque(maxlen=self.max_windows)
        self.dropped = 0
        self._clock = clock
        self._t0 = clock()
        self._open_index = 0
        #: (name, label-key) -> last-seen cumulative state. Size is
        #: O(instrument children), independent of event count.
        self._baseline: dict[tuple, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _target(self) -> MetricsRegistry | NullRegistry:
        return self._registry if self._registry is not None else get_registry()

    def elapsed(self) -> float:
        """Seconds since construction on the aggregator's clock."""
        return self._clock() - self._t0

    def __len__(self) -> int:
        return len(self.windows)

    # ------------------------------------------------------------------
    def _diff_rows(self, width_s: float) -> list[dict]:
        """Sparse per-instrument deltas since the previous close."""
        rows: list[dict] = []
        registry = self._target()
        for family in registry.families():
            for key in sorted(family.children):
                child = family.children[key]
                baseline_key = (family.name, key)
                labels = dict(key)
                if isinstance(child, Histogram):
                    counts = list(child.bucket_counts)
                    state = (counts, child.overflow, child.sum, child.count)
                    prev = self._baseline.get(baseline_key)
                    self._baseline[baseline_key] = state
                    if prev is None:
                        prev = ([0] * len(counts), 0, 0.0, 0)
                    count_delta = child.count - prev[3]
                    if count_delta <= 0:
                        continue
                    bucket_deltas = [c - p for c, p in zip(counts, prev[0])]
                    overflow_delta = child.overflow - prev[1]
                    sum_delta = child.sum - prev[2]
                    le: dict[str, int] = {}
                    running = 0
                    for edge, delta in zip(child.edges, bucket_deltas):
                        running += delta
                        le[_edge_text(edge)] = running
                    row = {
                        "name": family.name,
                        "kind": "histogram",
                        "labels": labels,
                        "count_delta": int(count_delta),
                        "sum_delta": float(sum_delta),
                        "overflow_delta": int(overflow_delta),
                        "rate_per_s": count_delta / width_s if width_s > 0 else 0.0,
                        "mean": float(sum_delta / count_delta),
                        "le": le,
                    }
                    for q in self.quantiles:
                        row[f"p{q:g}".replace(".", "_")] = estimate_quantile(
                            child.edges, bucket_deltas, overflow_delta, q
                        )
                    rows.append(row)
                elif child.kind == "counter":
                    prev_value = self._baseline.get(baseline_key, 0.0)
                    value = child.value
                    self._baseline[baseline_key] = value
                    delta = value - prev_value
                    if delta == 0:
                        continue
                    rows.append(
                        {
                            "name": family.name,
                            "kind": "counter",
                            "labels": labels,
                            "delta": float(delta),
                            "rate_per_s": delta / width_s if width_s > 0 else 0.0,
                        }
                    )
                else:  # gauge
                    value = child.value
                    prev_value = self._baseline.get(baseline_key)
                    self._baseline[baseline_key] = value
                    if prev_value is not None and value == prev_value:
                        continue
                    rows.append(
                        {
                            "name": family.name,
                            "kind": "gauge",
                            "labels": labels,
                            "value": float(value),
                        }
                    )
        return rows

    def _close_window(self, end_s: float) -> None:
        start_s = self._open_index * self.window_s
        if len(self.windows) == self.windows.maxlen:
            self.dropped += 1
        self.windows.append(
            WindowSnapshot(
                index=self._open_index,
                start_s=start_s,
                end_s=end_s,
                rows=self._diff_rows(end_s - start_s),
            )
        )
        self._open_index += 1

    def maybe_tick(self, now: float | None = None) -> int:
        """Close every window whose boundary has passed; returns count.

        Cheap when nothing is due (one clock read and a compare), so
        serving loops can call it every iteration. After a stall the
        first catch-up window absorbs all accumulated deltas and the
        remaining windows close empty; catch-up beyond the ring capacity
        fast-forwards instead of materializing windows destined to be
        dropped.
        """
        elapsed = self.elapsed() if now is None else float(now)
        target = int(elapsed / self.window_s)
        if target <= self._open_index:
            return 0
        with self._lock:
            gap = target - self._open_index
            if gap <= 0:
                return 0
            closed = 0
            if gap > self.max_windows:
                # Close the absorbing window (it takes all backlogged
                # deltas), then skip windows that would only be appended
                # to fall straight off the ring.
                self._close_window((self._open_index + 1) * self.window_s)
                closed += 1
                skipped = gap - self.max_windows
                self.dropped += skipped
                self._open_index += skipped
            while self._open_index < target:
                self._close_window((self._open_index + 1) * self.window_s)
                closed += 1
            return closed

    def flush(self) -> int:
        """Close due windows plus the current partial one (end-of-run)."""
        elapsed = self.elapsed()
        closed = self.maybe_tick(elapsed)
        with self._lock:
            if elapsed > self._open_index * self.window_s:
                self._close_window(elapsed)
                closed += 1
        return closed

    # ------------------------------------------------------------------
    def to_jsonl(self, *, last: int | None = None) -> str:
        """One meta line + one JSON object per (optionally last N) window."""
        with self._lock:
            windows = list(self.windows)
        if last is not None and last >= 0:
            windows = windows[-last:]
        meta = {
            "kind": "meta",
            "window_s": self.window_s,
            "max_windows": self.max_windows,
            "windows": len(windows),
            "dropped": self.dropped,
        }
        lines = [json.dumps(meta)]
        for window in windows:
            payload = window.to_dict()
            payload["kind"] = "window"
            lines.append(json.dumps(payload))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path, *, last: int | None = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl(last=last))

    def table(self, *, last: int = 12) -> str:
        """The live window table (see :func:`timeseries_table`)."""
        with self._lock:
            windows = list(self.windows)
        return timeseries_table(windows, last=last)


def parse_timeseries_jsonl(text: str) -> tuple[dict, list[WindowSnapshot]]:
    """Parse a serialized timeseries; inverse of ``to_jsonl``.

    Returns ``(meta, windows)``; unknown line kinds are skipped for
    forward compatibility, mirroring :meth:`RunTrace.from_jsonl`.
    """
    meta: dict = {}
    windows: list[WindowSnapshot] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DataError(f"invalid timeseries JSONL line: {line[:80]!r}") from exc
        kind = payload.get("kind", "window")
        if kind == "meta":
            meta = {k: v for k, v in payload.items() if k != "kind"}
        elif kind == "window":
            windows.append(WindowSnapshot.from_dict(payload))
    return meta, windows


def read_timeseries_jsonl(path) -> tuple[dict, list[WindowSnapshot]]:
    """Read a ``write_jsonl`` file back as ``(meta, windows)``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_timeseries_jsonl(handle.read())


def _merge_rows(
    row_lists: list[list[dict]], width_s: float, quantiles: tuple[float, ...]
) -> list[dict]:
    """Merge one window's rows from several sources into combined rows.

    Counters sum their deltas; histograms sum count/sum/overflow deltas
    and their cumulative ``le`` maps, then re-derive mean, rate, and
    quantile estimates from the summed buckets — exactly what one
    registry observing all the sources' events would have recorded.
    Gauges keep the last source's value (summing point-in-time values is
    meaningless); merged rows appear in first-seen source order, so the
    output is a pure function of the source list order.
    """
    merged: dict[tuple, dict] = {}
    order: list[tuple] = []
    for rows in row_lists:
        for row in rows:
            key = (
                row["name"],
                row["kind"],
                tuple(sorted(row.get("labels", {}).items())),
            )
            slot = merged.get(key)
            if slot is None:
                merged[key] = {
                    "name": row["name"],
                    "kind": row["kind"],
                    "labels": dict(row.get("labels", {})),
                    **(
                        {"delta": 0.0}
                        if row["kind"] == "counter"
                        else {"value": 0.0}
                        if row["kind"] == "gauge"
                        else {
                            "count_delta": 0,
                            "sum_delta": 0.0,
                            "overflow_delta": 0,
                            "le": {},
                        }
                    ),
                }
                order.append(key)
                slot = merged[key]
            if row["kind"] == "counter":
                slot["delta"] += float(row["delta"])
            elif row["kind"] == "gauge":
                slot["value"] = float(row["value"])
            else:
                slot["count_delta"] += int(row["count_delta"])
                slot["sum_delta"] += float(row["sum_delta"])
                slot["overflow_delta"] += int(row.get("overflow_delta", 0))
                le = slot["le"]
                for edge, cumulative in row["le"].items():
                    le[edge] = le.get(edge, 0) + int(cumulative)
    out: list[dict] = []
    for key in order:
        slot = merged[key]
        if slot["kind"] == "counter":
            slot["rate_per_s"] = slot["delta"] / width_s if width_s > 0 else 0.0
        elif slot["kind"] == "histogram":
            count = slot["count_delta"]
            slot["rate_per_s"] = count / width_s if width_s > 0 else 0.0
            slot["mean"] = float(slot["sum_delta"] / count) if count else 0.0
            edges = tuple(float(e) for e in slot["le"])
            cumulative = list(slot["le"].values())
            deltas = [
                c - p for c, p in zip(cumulative, [0] + cumulative[:-1])
            ]
            for q in quantiles:
                slot[f"p{q:g}".replace(".", "_")] = estimate_quantile(
                    edges, deltas, slot["overflow_delta"], q
                )
        out.append(slot)
    return out


def merge_timeseries(
    sources: list,
    *,
    window_s: float,
    max_windows: int,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> TimeSeriesAggregator:
    """Fold several same-grid window streams into one aggregator view.

    ``sources`` is a list of ``WindowSnapshot`` sequences (or
    aggregators, whose ``windows`` are taken), all recorded on the same
    ``window_s`` tumbling grid — the sharded fleet runner's per-group
    rings. Windows are matched by index; each merged window's rows
    combine per :func:`_merge_rows` and its ``end_s`` is the furthest
    source end (sources that drained earlier simply contribute fewer
    windows). The result is a plain :class:`TimeSeriesAggregator` whose
    ring holds the merged windows, so ``to_jsonl`` / ``table`` / SLO
    evaluation work unchanged. Deterministic: the output is a pure
    function of the source streams and their order.
    """
    window_lists: list[list[WindowSnapshot]] = [
        list(source.windows) if hasattr(source, "windows") else list(source)
        for source in sources
    ]
    by_index: dict[int, list[WindowSnapshot]] = {}
    for windows in window_lists:
        for window in windows:
            by_index.setdefault(int(window.index), []).append(window)
    merged = TimeSeriesAggregator(
        registry=NullRegistry(),
        window_s=window_s,
        max_windows=max_windows,
        clock=lambda: 0.0,
        quantiles=quantiles,
    )
    overflowed = max(0, len(by_index) - max_windows)
    merged.dropped = overflowed
    for index in sorted(by_index):
        group = by_index[index]
        start_s = min(w.start_s for w in group)
        end_s = max(w.end_s for w in group)
        merged.windows.append(
            WindowSnapshot(
                index=index,
                start_s=start_s,
                end_s=end_s,
                rows=_merge_rows([w.rows for w in group], end_s - start_s, quantiles),
            )
        )
        merged._open_index = index + 1
    return merged


def _rank_families(windows: list[WindowSnapshot]) -> tuple[list[str], list[str]]:
    """(counter families by total delta, histogram families by count)."""
    counter_totals: dict[str, float] = {}
    histogram_totals: dict[str, int] = {}
    for window in windows:
        for row in window.rows:
            if row["kind"] == "counter":
                counter_totals[row["name"]] = counter_totals.get(row["name"], 0.0) + row["delta"]
            elif row["kind"] == "histogram":
                histogram_totals[row["name"]] = (
                    histogram_totals.get(row["name"], 0) + row["count_delta"]
                )
    counters = sorted(counter_totals, key=lambda n: (-counter_totals[n], n))
    histograms = sorted(histogram_totals, key=lambda n: (-histogram_totals[n], n))
    return counters, histograms


def timeseries_table(
    windows: list[WindowSnapshot],
    *,
    last: int = 12,
    counter_families: list[str] | None = None,
    histogram_families: list[str] | None = None,
) -> str:
    """Render windows as the ``repro top`` table (one row per window).

    With no explicit family selection, serving metrics are preferred
    when present; otherwise the busiest counter and histogram families
    are picked by total movement across the shown windows.
    """
    from repro.utils.reporting import format_table

    windows = list(windows)[-max(last, 1) :]
    if not windows:
        return "(no windows recorded)"
    ranked_counters, ranked_histograms = _rank_families(windows)
    if counter_families is None:
        preferred = [
            n for n in ("repro_serve_requests_total", "repro_serve_rejections_total")
            if n in ranked_counters
        ]
        counter_families = preferred or ranked_counters[:2]
    if histogram_families is None:
        preferred = [n for n in ("repro_serve_latency_seconds",) if n in ranked_histograms]
        histogram_families = preferred or ranked_histograms[:1]

    def short(name: str) -> str:
        return name.removeprefix("repro_").removesuffix("_total").removesuffix("_seconds")

    headers = ["window", "t (s)"]
    for name in counter_families:
        headers.append(f"{short(name)}/s")
    for name in histogram_families:
        headers.extend([f"{short(name)} p50 (ms)", "p95 (ms)", "p99 (ms)"])
    rows: list[list[object]] = []
    for window in windows:
        row: list[object] = [
            window.index,
            f"{window.start_s:.1f}-{window.end_s:.1f}",
        ]
        for name in counter_families:
            rate = sum(
                r["rate_per_s"]
                for r in window.rows
                if r["kind"] == "counter" and r["name"] == name
            )
            row.append(f"{rate:.1f}")
        for name in histogram_families:
            matches = [
                r for r in window.rows if r["kind"] == "histogram" and r["name"] == name
            ]
            for quantile_key in ("p50", "p95", "p99"):
                if matches:
                    worst = max(m.get(quantile_key, 0.0) for m in matches)
                    row.append(f"{worst * 1e3:.3f}")
                else:
                    row.append("-")
        rows.append(row)
    return format_table(headers, rows, title="telemetry windows")
