"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLO` states an objective over the serving plane's windowed
telemetry — "99% of requests complete under 250ms", "99% of requests
are admitted" — and :class:`SLOEvaluator` grades it against the
:class:`~repro.telemetry.timeseries.TimeSeriesAggregator` ring using the
standard **multi-window burn-rate** rule: the error-budget burn rate is
computed over a short window set (reacts fast) and a long one (filters
blips), and the SLO is *breaching* only when **both** exceed the burn
threshold. Burn rate 1.0 means the budget is being spent exactly at the
sustainable pace; an SLO with a 1% budget seeing 2% bad requests burns
at 2.0.

Two SLO kinds, both computed from window rows (never raw events, so
evaluation is O(windows)):

- ``latency`` — a request is *good* when its latency is ≤
  ``threshold_s``; the good fraction is read off the window's histogram
  bucket deltas (resolution = the bucket grid).
- ``error_rate`` — a request is *bad* when its counter row matches
  ``bad_label`` (default: ``status="rejected"`` admission-control
  sheds).

:meth:`SLOEvaluator.publish` exports the verdicts as ``repro_slo_*``
gauges so ``/metrics`` scrapes carry them, and
:meth:`SLOEvaluator.healthz` shapes the ``/healthz`` payload (HTTP 503
while any SLO is breaching). See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.registry import MetricsRegistry, NullRegistry, get_registry
from repro.telemetry.timeseries import TimeSeriesAggregator, WindowSnapshot

#: SLO kinds understood by the evaluator.
SLO_KINDS = ("latency", "error_rate")


@dataclass(frozen=True)
class SLO:
    """One declarative objective over windowed telemetry.

    Attributes
    ----------
    name:
        Label value on the exported ``repro_slo_*`` gauges.
    kind:
        ``"latency"`` (good = faster than ``threshold_s``) or
        ``"error_rate"`` (bad = counter rows matching ``bad_label``).
    objective:
        Target good fraction in (0, 1), e.g. ``0.99``; the error budget
        is ``1 - objective``.
    threshold_s:
        Latency cutoff for ``kind="latency"``.
    metric:
        Source family: a histogram for ``latency``, a counter for
        ``error_rate``.
    bad_label:
        ``(label, value)`` marking bad counter rows for ``error_rate``.
    short_windows / long_windows:
        Window counts for the fast and slow burn-rate views.
    burn_threshold:
        Breach when *both* burn rates exceed this.
    """

    name: str
    kind: str
    objective: float = 0.99
    threshold_s: float = 0.25
    metric: str = "repro_serve_latency_seconds"
    bad_label: tuple[str, str] = ("status", "rejected")
    short_windows: int = 5
    long_windows: int = 30
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ConfigurationError(f"SLO kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(f"objective must be in (0, 1), got {self.objective}")
        if self.kind == "latency" and self.threshold_s <= 0:
            raise ConfigurationError(f"threshold_s must be > 0, got {self.threshold_s}")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ConfigurationError(
                f"need 1 <= short_windows <= long_windows, got "
                f"{self.short_windows}/{self.long_windows}"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError(f"burn_threshold must be > 0, got {self.burn_threshold}")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    # ------------------------------------------------------------------
    def _window_good_bad(self, window: WindowSnapshot) -> tuple[float, float]:
        """(good, bad) event counts this SLO sees in one window."""
        good = bad = 0.0
        for row in window.rows:
            if row["name"] != self.metric:
                continue
            if self.kind == "latency":
                if row["kind"] != "histogram":
                    continue
                total = float(row["count_delta"])
                fast = total * _fraction_le(row, self.threshold_s)
                good += fast
                bad += total - fast
            else:
                if row["kind"] != "counter":
                    continue
                label, value = self.bad_label
                if str(row.get("labels", {}).get(label)) == value:
                    bad += row["delta"]
                else:
                    good += row["delta"]
        return good, bad

    def burn_rate(self, windows: list[WindowSnapshot]) -> float:
        """Error-budget burn rate over a window set (0.0 with no traffic)."""
        good = bad = 0.0
        for window in windows:
            window_good, window_bad = self._window_good_bad(window)
            good += window_good
            bad += window_bad
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / self.error_budget


def _fraction_le(row: dict, threshold_s: float) -> float:
    """Fraction of a histogram row's window observations ≤ threshold.

    Reads the row's cumulative ``le`` delta map with linear
    interpolation inside the bucket holding the threshold (the inverse
    of ``histogram_quantile``). Observations past the last edge (the
    +Inf overflow) only ever count as bad, so the estimate is
    conservative.
    """
    total = float(row.get("count_delta", 0))
    le = row.get("le")
    if not le or total <= 0:
        return 0.0
    pairs = sorted((float(edge), float(cum)) for edge, cum in le.items())
    prev_edge, prev_cum = 0.0, 0.0
    for edge, cum in pairs:
        if threshold_s < edge:
            width = edge - prev_edge
            inside = (threshold_s - prev_edge) / width if width > 0 else 1.0
            below = prev_cum + (cum - prev_cum) * max(0.0, min(1.0, inside))
            return below / total
        prev_edge, prev_cum = edge, cum
    return prev_cum / total


@dataclass(frozen=True)
class SLOStatus:
    """One SLO's verdict over the current ring."""

    slo: SLO
    short_burn_rate: float
    long_burn_rate: float
    windows_evaluated: int

    @property
    def breaching(self) -> bool:
        """Multi-window rule: page only when fast AND slow views agree."""
        return (
            self.short_burn_rate > self.slo.burn_threshold
            and self.long_burn_rate > self.slo.burn_threshold
        )

    def to_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "burn_threshold": self.slo.burn_threshold,
            "short_burn_rate": round(self.short_burn_rate, 6),
            "long_burn_rate": round(self.long_burn_rate, 6),
            "windows_evaluated": self.windows_evaluated,
            "breaching": self.breaching,
        }


class SLOEvaluator:
    """Grades a set of SLOs against an aggregator's window ring."""

    def __init__(self, slos: list[SLO], aggregator: TimeSeriesAggregator) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names: {names}")
        self.slos = list(slos)
        self.aggregator = aggregator

    def evaluate(self) -> list[SLOStatus]:
        windows = list(self.aggregator.windows)
        statuses = []
        for slo in self.slos:
            statuses.append(
                SLOStatus(
                    slo=slo,
                    short_burn_rate=slo.burn_rate(windows[-slo.short_windows :]),
                    long_burn_rate=slo.burn_rate(windows[-slo.long_windows :]),
                    windows_evaluated=min(len(windows), slo.long_windows),
                )
            )
        return statuses

    def publish(
        self, registry: MetricsRegistry | NullRegistry | None = None
    ) -> list[SLOStatus]:
        """Evaluate and export ``repro_slo_*`` gauges; returns statuses."""
        registry = registry if registry is not None else get_registry()
        statuses = self.evaluate()
        for status in statuses:
            name = status.slo.name
            registry.gauge(
                "repro_slo_burn_rate",
                help="Error-budget burn rate (1.0 = budget spent exactly on pace)",
                slo=name,
                window="short",
            ).set(status.short_burn_rate)
            registry.gauge(
                "repro_slo_burn_rate",
                help="Error-budget burn rate (1.0 = budget spent exactly on pace)",
                slo=name,
                window="long",
            ).set(status.long_burn_rate)
            registry.gauge(
                "repro_slo_breaching",
                help="1 while short AND long burn rates exceed the threshold",
                slo=name,
            ).set(1.0 if status.breaching else 0.0)
            registry.gauge(
                "repro_slo_objective",
                help="Declared target good fraction",
                slo=name,
            ).set(status.slo.objective)
        return statuses

    def healthz(self) -> dict:
        """The ``/healthz`` payload: overall status + per-SLO verdicts."""
        statuses = self.evaluate()
        breaching = [s for s in statuses if s.breaching]
        return {
            "status": "degraded" if breaching else "ok",
            "breaching": [s.slo.name for s in breaching],
            "windows": len(self.aggregator.windows),
            "window_s": self.aggregator.window_s,
            "slos": [s.to_dict() for s in statuses],
        }


def default_serve_slos(
    *, p99_threshold_s: float = 0.25, rejection_objective: float = 0.99
) -> list[SLO]:
    """The serving plane's stock SLOs: p99 latency + admission rate."""
    return [
        SLO(
            name="latency_p99",
            kind="latency",
            objective=0.99,
            threshold_s=p99_threshold_s,
            metric="repro_serve_latency_seconds",
        ),
        SLO(
            name="rejection_rate",
            kind="error_rate",
            objective=rejection_objective,
            metric="repro_serve_requests_total",
            bad_label=("status", "rejected"),
        ),
    ]


def slo_table(statuses: list[SLOStatus]) -> str:
    """Render SLO verdicts as the repo's standard table."""
    from repro.utils.reporting import format_table

    rows = [
        [
            s.slo.name,
            s.slo.kind,
            f"{s.slo.objective:.4g}",
            f"{s.short_burn_rate:.3f}",
            f"{s.long_burn_rate:.3f}",
            f"{s.slo.burn_threshold:g}",
            "BREACH" if s.breaching else "ok",
        ]
        for s in statuses
    ]
    if not rows:
        return "(no SLOs configured)"
    return format_table(
        ["slo", "kind", "objective", "burn(short)", "burn(long)", "threshold", "state"],
        rows,
        title="SLO burn rates",
    )
