"""Unified telemetry: metrics, spans/traces, exporters, structured logs.

The observability layer for the DCTA pipeline — dependency-free (stdlib
only) and zero-cost when off. Three coordinated pieces:

- **Metrics** — a process-wide :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments with
  label support. Disabled by default (:class:`NullRegistry` hands out
  shared no-op instruments); the CLI's ``--metrics-out`` installs a real
  one. Names follow ``repro_<subsystem>_<name>_<unit>``.
- **Spans** — :func:`span` context managers nest into a per-run
  :class:`RunTrace` on a monotonic clock; traces serialize to JSONL and
  render a text flame summary. :func:`use_trace_id` stamps spans with a
  request-scoped trace id so worker-side spans re-parent under the
  originating request on merge. :func:`record_edgesim_trace` bridges the
  edge DES's reconstructed event timeline into the same sink.
- **Exporters / logs** — Prometheus text exposition and JSON snapshots
  of the registry, plus a stdlib ``logging`` wrapper with a compact
  key=value formatter for structured run logs.
- **Time series / SLOs** — :class:`TimeSeriesAggregator` folds registry
  deltas into a bounded ring of tumbling windows (O(windows) memory for
  arbitrarily long runs); :class:`SLOEvaluator` grades declarative
  :class:`SLO` objectives against that ring with multi-window burn
  rates, feeding ``/healthz`` and the ``repro_slo_*`` gauges.

See ``docs/observability.md`` for the instrument catalog and CLI usage.
"""

from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)
from repro.telemetry.registry import (
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    reset_registry,
    set_registry,
    telemetry_enabled,
    use_registry,
)
from repro.telemetry.spans import (
    RunTrace,
    SpanRecord,
    current_run_trace,
    current_trace_id,
    set_run_trace,
    set_trace_id,
    span,
    use_run_trace,
    use_trace_id,
)
from repro.telemetry.timeseries import (
    TimeSeriesAggregator,
    WindowSnapshot,
    estimate_quantile,
    merge_timeseries,
    parse_timeseries_jsonl,
    read_timeseries_jsonl,
    timeseries_table,
)
from repro.telemetry.slo import (
    SLO,
    SLOEvaluator,
    SLOStatus,
    default_serve_slos,
    slo_table,
)
from repro.telemetry.exporters import (
    metrics_table,
    snapshot,
    snapshot_table,
    to_json,
    to_prometheus,
    write_metrics_json,
)
from repro.telemetry.bridge import (
    edgesim_timeseries,
    merge_sim_timeseries,
    record_edgesim_trace,
)
from repro.telemetry.log import (
    KeyValueFormatter,
    configure_logging,
    get_logger,
    kv,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "reset_registry",
    "set_registry",
    "telemetry_enabled",
    "use_registry",
    "RunTrace",
    "SpanRecord",
    "current_run_trace",
    "current_trace_id",
    "set_run_trace",
    "set_trace_id",
    "span",
    "use_run_trace",
    "use_trace_id",
    "TimeSeriesAggregator",
    "WindowSnapshot",
    "estimate_quantile",
    "merge_timeseries",
    "parse_timeseries_jsonl",
    "read_timeseries_jsonl",
    "timeseries_table",
    "SLO",
    "SLOEvaluator",
    "SLOStatus",
    "default_serve_slos",
    "slo_table",
    "metrics_table",
    "snapshot",
    "snapshot_table",
    "to_json",
    "to_prometheus",
    "write_metrics_json",
    "edgesim_timeseries",
    "merge_sim_timeseries",
    "record_edgesim_trace",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "kv",
]
