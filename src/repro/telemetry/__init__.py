"""Unified telemetry: metrics, spans/traces, exporters, structured logs.

The observability layer for the DCTA pipeline — dependency-free (stdlib
only) and zero-cost when off. Three coordinated pieces:

- **Metrics** — a process-wide :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments with
  label support. Disabled by default (:class:`NullRegistry` hands out
  shared no-op instruments); the CLI's ``--metrics-out`` installs a real
  one. Names follow ``repro_<subsystem>_<name>_<unit>``.
- **Spans** — :func:`span` context managers nest into a per-run
  :class:`RunTrace` on a monotonic clock; traces serialize to JSONL and
  render a text flame summary. :func:`record_edgesim_trace` bridges the
  edge DES's reconstructed event timeline into the same sink.
- **Exporters / logs** — Prometheus text exposition and JSON snapshots
  of the registry, plus a stdlib ``logging`` wrapper with a compact
  key=value formatter for structured run logs.

See ``docs/observability.md`` for the instrument catalog and CLI usage.
"""

from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)
from repro.telemetry.registry import (
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    reset_registry,
    set_registry,
    telemetry_enabled,
    use_registry,
)
from repro.telemetry.spans import (
    RunTrace,
    SpanRecord,
    current_run_trace,
    set_run_trace,
    span,
    use_run_trace,
)
from repro.telemetry.exporters import (
    metrics_table,
    snapshot,
    snapshot_table,
    to_json,
    to_prometheus,
    write_metrics_json,
)
from repro.telemetry.bridge import record_edgesim_trace
from repro.telemetry.log import (
    KeyValueFormatter,
    configure_logging,
    get_logger,
    kv,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "reset_registry",
    "set_registry",
    "telemetry_enabled",
    "use_registry",
    "RunTrace",
    "SpanRecord",
    "current_run_trace",
    "set_run_trace",
    "span",
    "use_run_trace",
    "metrics_table",
    "snapshot",
    "snapshot_table",
    "to_json",
    "to_prometheus",
    "write_metrics_json",
    "record_edgesim_trace",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "kv",
]
