"""Process-wide metrics registry with label support.

One :class:`MetricsRegistry` owns every instrument family in a run. A
family is a metric name plus its kind (counter/gauge/histogram); each
distinct label set under a family gets its own child instrument, created
on first use and cached:

    registry.counter("repro_tatim_solves_total", solver="density_greedy").inc()

The process default is a :class:`NullRegistry` whose accessors return
shared no-op instruments, so instrumented code pays (almost) nothing when
telemetry is off. The CLI (or a test) switches telemetry on by installing
a real registry via :func:`set_registry` or the :func:`use_registry`
context manager.

Metric names follow ``repro_<subsystem>_<name>_<unit>`` (see
``docs/observability.md`` for the catalog and conventions).
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigurationError
from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricFamily:
    """All children of one metric name: shared kind, help, and buckets."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Creates, caches, and enumerates metric instruments."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ConfigurationError(
                    f"invalid metric name {name!r}; use lowercase snake_case "
                    "(convention: repro_<subsystem>_<name>_<unit>)"
                )
            family = MetricFamily(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        elif buckets is not None and family.buckets != buckets:
            raise ConfigurationError(
                f"metric {name!r} already registered with buckets {family.buckets}"
            )
        if help and not family.help:
            family.help = help
        return family

    def _child(self, family: MetricFamily, labels: dict, factory):
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = factory()
            family.children[key] = child
        return child

    # ------------------------------------------------------------------
    def counter(self, name: str, *, help: str = "", **labels) -> Counter:
        family = self._family(name, "counter", help)
        return self._child(family, labels, Counter)

    def gauge(self, name: str, *, help: str = "", **labels) -> Gauge:
        family = self._family(name, "gauge", help)
        return self._child(family, labels, Gauge)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        **labels,
    ) -> Histogram:
        buckets = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, buckets)
        return self._child(family, labels, lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        """Families in sorted name order (the exporters' iteration order)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str, **labels):
        """Fetch an existing instrument or raise KeyError (test helper)."""
        family = self._families[name]
        return family.children[_label_key(labels)]

    def names(self) -> set[str]:
        return set(self._families)

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())


class NullRegistry:
    """No-op registry: every accessor returns a shared null instrument."""

    def counter(self, name: str, *, help: str = "", **labels):
        return NULL_COUNTER

    def gauge(self, name: str, *, help: str = "", **labels):
        return NULL_GAUGE

    def histogram(self, name: str, *, buckets=DEFAULT_LATENCY_BUCKETS, help: str = "", **labels):
        return NULL_HISTOGRAM

    def families(self) -> list[MetricFamily]:
        return []

    def names(self) -> set[str]:
        return set()

    def __len__(self) -> int:
        return 0


_NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide registry instrumented code reports into."""
    return _registry


def set_registry(registry: MetricsRegistry | NullRegistry) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the process-wide sink; returns it."""
    global _registry
    _registry = registry
    return registry


def reset_registry() -> None:
    """Back to the disabled (no-op) default."""
    set_registry(_NULL_REGISTRY)


def telemetry_enabled() -> bool:
    """True when a real registry is installed."""
    return not isinstance(_registry, NullRegistry)


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry) -> Iterator[MetricsRegistry | NullRegistry]:
    """Temporarily install ``registry``; restores the previous one on exit."""
    previous = _registry
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
