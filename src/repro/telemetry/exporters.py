"""Metric exporters: JSON snapshot and Prometheus text exposition.

Both walk the registry's families in sorted name order with label sets in
sorted key order, so output is deterministic for a given run — the golden
tests and the CI smoke check depend on that.
"""

from __future__ import annotations

import json
import math

from repro.telemetry.instruments import Histogram
from repro.telemetry.registry import MetricsRegistry, NullRegistry


def snapshot(registry: MetricsRegistry | NullRegistry) -> dict:
    """Registry state as a JSON-ready dict: ``{"metrics": [...]}``.

    Counter/gauge entries carry ``value``; histogram entries carry
    ``buckets`` (cumulative ``le`` counts), ``sum`` and ``count``.
    """
    metrics: list[dict] = []
    for family in registry.families():
        for key in sorted(family.children):
            child = family.children[key]
            entry: dict = {
                "name": family.name,
                "kind": family.kind,
                "labels": dict(key),
            }
            if family.help:
                entry["help"] = family.help
            if isinstance(child, Histogram):
                entry["buckets"] = {
                    _edge_text(edge): count
                    for edge, count in zip(child.edges, child.cumulative_counts())
                }
                entry["buckets"]["+Inf"] = child.count
                entry["sum"] = child.sum
                entry["count"] = child.count
            else:
                entry["value"] = child.value
            metrics.append(entry)
    return {"metrics": metrics}


def to_json(registry: MetricsRegistry | NullRegistry, *, indent: int | None = 2) -> str:
    """The registry snapshot rendered as a JSON document string."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=False)


def write_metrics_json(registry: MetricsRegistry | NullRegistry, path) -> None:
    """Write the registry's JSON snapshot to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry) + "\n")


def _edge_text(edge: float) -> str:
    """Compact edge rendering: integral edges print without the .0."""
    if math.isinf(edge):
        return "+Inf"
    if edge == int(edge):
        return str(int(edge))
    return repr(edge)


def _value_text(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote, and newline are the three characters the
    text format requires escaping inside quoted label values; order
    matters (backslash first, or the other escapes double up).
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(key: tuple[tuple[str, str], ...], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry | NullRegistry) -> str:
    """Prometheus text exposition (format 0.0.4) of the registry."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if isinstance(child, Histogram):
                for edge, count in zip(child.edges, child.cumulative_counts()):
                    labels = _label_text(key, (("le", _edge_text(edge)),))
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _label_text(key, (("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{labels} {child.count}")
                lines.append(f"{family.name}_sum{_label_text(key)} {_value_text(child.sum)}")
                lines.append(f"{family.name}_count{_label_text(key)} {child.count}")
            else:
                lines.append(f"{family.name}{_label_text(key)} {_value_text(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_table(registry: MetricsRegistry | NullRegistry) -> str:
    """Human-oriented metric listing for the CLI's telemetry-report."""
    from repro.utils.reporting import format_table

    rows: list[list[object]] = []
    for family in registry.families():
        for key in sorted(family.children):
            child = family.children[key]
            labels = ",".join(f"{k}={v}" for k, v in key) or "-"
            if isinstance(child, Histogram):
                mean = child.sum / child.count if child.count else 0.0
                value = f"n={child.count} mean={mean:.4g} sum={child.sum:.4g}"
            else:
                value = _value_text(child.value)
            rows.append([family.name, family.kind, labels, value])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["metric", "kind", "labels", "value"], rows)


def snapshot_table(data: dict) -> str:
    """Render a saved :func:`snapshot` dict (e.g. a metrics.json file).

    The offline twin of :func:`metrics_table` for ``telemetry-report``,
    which only has the serialized snapshot, not the live registry.
    """
    from repro.errors import DataError
    from repro.utils.reporting import format_table

    entries = data.get("metrics")
    if not isinstance(entries, list):
        raise DataError("metrics snapshot must contain a 'metrics' list")
    rows: list[list[object]] = []
    for entry in entries:
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry.get("labels", {}).items())) or "-"
        if entry.get("kind") == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = total / count if count else 0.0
            value = f"n={count} mean={mean:.4g} sum={total:.4g}"
        else:
            value = _value_text(float(entry.get("value", 0.0)))
        rows.append([entry.get("name", "?"), entry.get("kind", "?"), labels, value])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["metric", "kind", "labels", "value"], rows)
