"""Metric instruments: Counter, Gauge, and fixed-bucket Histogram.

The value model follows Prometheus conventions — counters are monotone,
gauges are set/inc/dec, histograms bucket observations against fixed upper
edges (cumulative ``le`` semantics at export time). Instruments are plain
Python objects; they are created and owned by a
:class:`repro.telemetry.registry.MetricsRegistry` (one instrument per
(name, label-set) pair) and carry no locking — the reproduction pipeline
is single-threaded.

A parallel set of ``Null*`` singletons implements the same call surface as
no-ops; the default :class:`~repro.telemetry.registry.NullRegistry` hands
those out so instrumented hot paths cost two attribute lookups and a
no-op call when telemetry is disabled.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ConfigurationError, DataError

#: Default latency buckets (seconds) for histograms: sub-millisecond
#: through a minute, roughly geometric. The Figs. 9-11 processing times
#: land in the upper decades; solver/planner latencies in the lower ones.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    600.0,
)


class Counter:
    """Monotonically increasing value (events, totals)."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise DataError(f"counter increments must be >= 0, got {amount}")
        self.value += float(amount)


class Gauge:
    """Last-written value (sizes, levels, most-recent measurements)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` edge semantics.

    ``bucket_counts[i]`` holds observations with
    ``edges[i-1] < value <= edges[i]`` (the first bucket has no lower
    edge); values above the last edge land in the implicit ``+Inf``
    overflow bucket. Cumulative counts are materialized only at export.
    """

    __slots__ = ("edges", "bucket_counts", "overflow", "sum", "count")

    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ConfigurationError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(f"bucket edges must be strictly increasing: {edges}")
        self.edges = edges
        self.bucket_counts = [0] * len(edges)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        # bisect_left puts a value equal to an edge into that edge's
        # bucket, matching the inclusive-upper-bound ``le`` convention.
        index = bisect_left(self.edges, value)
        if index == len(self.edges):
            self.overflow += 1
        else:
            self.bucket_counts[index] += 1

    def observe_batch(self, values) -> None:
        """Vectorized :meth:`observe` over an array of values.

        One ``searchsorted`` + ``bincount`` pass instead of a Python call
        per sample — the fleet engine records whole event cohorts through
        this. Bucket placement matches ``observe`` exactly
        (``searchsorted(side="left")`` is ``bisect_left``).
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.sum += float(values.sum())
        self.count += int(values.size)
        indices = np.searchsorted(self.edges, values, side="left")
        counts = np.bincount(indices, minlength=len(self.edges) + 1)
        self.overflow += int(counts[len(self.edges)])
        buckets = self.bucket_counts
        for i in range(len(buckets)):
            buckets[i] += int(counts[i])

    def cumulative_counts(self) -> list[int]:
        """Per-edge cumulative counts (``le`` view), excluding +Inf."""
        counts = []
        running = 0
        for bucket in self.bucket_counts:
            running += bucket
            counts.append(running)
        return counts


class NullCounter:
    __slots__ = ()

    kind = "counter"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()

    kind = "gauge"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    kind = "histogram"
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass

    def observe_batch(self, values) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
