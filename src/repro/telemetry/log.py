"""Structured logging: stdlib ``logging`` with a compact key=value format.

Library modules obtain loggers under the ``repro`` namespace::

    from repro.telemetry.log import get_logger, kv

    _log = get_logger(__name__)
    _log.debug("table_rendered %s", kv(rows=12, columns=4))

Following library convention, the ``repro`` root logger carries a
``NullHandler`` so nothing prints unless the application opts in —
:func:`configure_logging` (wired to the CLI's ``--log-level``) installs a
stderr handler with :class:`KeyValueFormatter`, which renders records as

    2026-08-06T12:00:00 level=debug logger=repro.utils.reporting msg="table_rendered rows=12 columns=4"
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER_NAME = "repro"

_configured_handler: logging.Handler | None = None


def format_value(value: object) -> str:
    """Render one value for key=value output; quotes when needed."""
    if isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if any(c in text for c in (" ", "=", '"')) or text == "":
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


def kv(**fields) -> str:
    """Fields as a stable ``key=value`` string (insertion order kept)."""
    return " ".join(f"{key}={format_value(value)}" for key, value in fields.items())


class KeyValueFormatter(logging.Formatter):
    """One-line key=value rendering of a log record."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        parts = [
            self.formatTime(record, self.default_time_format),
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={format_value(message)}",
        ]
        if record.exc_info:
            parts.append(f"exc={format_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (NullHandler attached once)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    if name is None or name == ROOT_LOGGER_NAME:
        return root
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def configure_logging(level: int | str = logging.INFO, *, stream=None) -> logging.Logger:
    """Opt in to console output: attach the key=value handler once.

    Re-invoking replaces the previous handler (idempotent for the CLI,
    which may be called repeatedly in one process, e.g. under tests).
    """
    global _configured_handler
    root = get_logger()
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    _configured_handler = handler
    return root
