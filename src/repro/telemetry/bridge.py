"""Bridge: edge-DES traces flow into the telemetry span sink.

:class:`repro.edgesim.trace.TracingSimulator` reconstructs per-task
transfer/execution spans on the *simulated* clock. Rather than keeping
that a parallel tracing system, this bridge folds a finished
``edgesim.trace.Trace`` into the active :class:`RunTrace`: one parent
span per epoch (``edgesim.epoch``) whose children are the DES events
(``edgesim.input`` / ``edgesim.execution`` / ``edgesim.result``), all
tagged ``clock="sim"`` since their timestamps are simulated seconds, not
wall-clock offsets.

The bridge is duck-typed over ``trace.events`` (objects with ``kind``,
``task_id``, ``node_id``, ``start``, ``end``) so telemetry keeps zero
imports from ``repro.edgesim``.
"""

from __future__ import annotations

from repro.telemetry.spans import RunTrace, current_run_trace


def record_edgesim_trace(
    trace,
    *,
    run_trace: RunTrace | None = None,
    prefix: str = "edgesim",
    label: str | None = None,
) -> int:
    """Fold a DES ``Trace`` into the span sink; returns spans added.

    Targets ``run_trace`` when given, otherwise the active process-wide
    trace; with neither, it is a no-op returning 0 (the same
    off-by-default contract as :func:`repro.telemetry.span`).
    """
    target = run_trace if run_trace is not None else current_run_trace()
    if target is None:
        return 0
    events = list(trace.events)
    attrs: dict = {"clock": "sim", "events": len(events)}
    if label is not None:
        attrs["label"] = label
    decision_time = getattr(trace, "decision_time", None)
    if decision_time is not None:
        attrs["decision_time"] = decision_time
    start = min((e.start for e in events), default=0.0)
    end = max((e.end for e in events), default=start)
    parent = target.add_span(f"{prefix}.epoch", start, end, attrs=attrs)
    for event in events:
        target.add_span(
            f"{prefix}.{event.kind}",
            event.start,
            event.end,
            attrs={
                "clock": "sim",
                "task_id": int(event.task_id),
                "node_id": int(event.node_id),
            },
            parent=parent,
        )
    return len(events) + 1
