"""Bridge: edge-DES traces flow into the telemetry span sink.

:class:`repro.edgesim.trace.TracingSimulator` reconstructs per-task
transfer/execution spans on the *simulated* clock. Rather than keeping
that a parallel tracing system, this bridge folds a finished
``edgesim.trace.Trace`` into the active :class:`RunTrace`: one parent
span per epoch (``edgesim.epoch``) whose children are the DES events
(``edgesim.input`` / ``edgesim.execution`` / ``edgesim.result``), all
tagged ``clock="sim"`` since their timestamps are simulated seconds, not
wall-clock offsets.

The bridge is duck-typed over ``trace.events`` (objects with ``kind``,
``task_id``, ``node_id``, ``start``, ``end``) so telemetry keeps zero
imports from ``repro.edgesim``.
"""

from __future__ import annotations

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import RunTrace, current_run_trace
from repro.telemetry.timeseries import TimeSeriesAggregator, merge_timeseries


def record_edgesim_trace(
    trace,
    *,
    run_trace: RunTrace | None = None,
    prefix: str = "edgesim",
    label: str | None = None,
) -> int:
    """Fold a DES ``Trace`` into the span sink; returns spans added.

    Targets ``run_trace`` when given, otherwise the active process-wide
    trace; with neither, it is a no-op returning 0 (the same
    off-by-default contract as :func:`repro.telemetry.span`).
    """
    target = run_trace if run_trace is not None else current_run_trace()
    if target is None:
        return 0
    events = list(trace.events)
    attrs: dict = {"clock": "sim", "events": len(events)}
    if label is not None:
        attrs["label"] = label
    decision_time = getattr(trace, "decision_time", None)
    if decision_time is not None:
        attrs["decision_time"] = decision_time
    start = min((e.start for e in events), default=0.0)
    end = max((e.end for e in events), default=start)
    parent = target.add_span(f"{prefix}.epoch", start, end, attrs=attrs)
    for event in events:
        target.add_span(
            f"{prefix}.{event.kind}",
            event.start,
            event.end,
            attrs={
                "clock": "sim",
                "task_id": int(event.task_id),
                "node_id": int(event.node_id),
            },
            parent=parent,
        )
    return len(events) + 1


#: Bucket edges (simulated seconds) for the windowed DES bridge — DES
#: event durations span transfer milliseconds to multi-minute executions.
_EDGESIM_EVENT_BUCKETS: tuple[float, ...] = (
    0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


def edgesim_timeseries(
    trace,
    *,
    window_s: float = 60.0,
    max_windows: int = 240,
    prefix: str = "repro_edgesim",
) -> TimeSeriesAggregator:
    """Bucket a DES ``Trace`` into tumbling windows on the *simulated* clock.

    The fleet-scale counterpart of :func:`record_edgesim_trace`: instead
    of one span per event (O(events) memory), events stream through a
    private registry into a :class:`TimeSeriesAggregator` whose clock is
    the event timeline — so an arbitrarily long simulation folds into at
    most ``max_windows`` windows of per-kind event rates and duration
    percentiles. Duck-typed over ``trace.events`` like the span bridge.

    Returns the aggregator (flushed; read ``.windows`` or export with
    ``.to_jsonl()``).
    """
    sim_clock = [0.0]
    registry = MetricsRegistry()
    aggregator = TimeSeriesAggregator(
        registry,
        window_s=window_s,
        max_windows=max_windows,
        clock=lambda: sim_clock[0],
    )
    for event in sorted(trace.events, key=lambda e: (e.end, e.start)):
        sim_clock[0] = float(event.end)
        aggregator.maybe_tick()
        kind = str(event.kind)
        registry.counter(
            f"{prefix}_events_total",
            help="DES events completed (windowed bridge)",
            kind=kind,
        ).inc()
        registry.histogram(
            f"{prefix}_event_seconds",
            buckets=_EDGESIM_EVENT_BUCKETS,
            help="DES event duration in simulated seconds",
            kind=kind,
        ).observe(float(event.end) - float(event.start))
    aggregator.flush()
    return aggregator


def sim_time_aggregator(
    *,
    window_s: float = 10.0,
    max_windows: int = 240,
    quantiles: tuple[float, ...] | None = None,
) -> tuple[MetricsRegistry, TimeSeriesAggregator, list]:
    """A private registry + aggregator pair clocked on simulated time.

    The *live* counterpart of :func:`edgesim_timeseries`: instead of
    post-processing a finished trace, a running engine (the fleet DES)
    records into the returned registry as it goes and drives the windows
    itself. Returns ``(registry, aggregator, sim_clock)`` where
    ``sim_clock`` is a one-element list — write ``sim_clock[0] = now``
    and call ``aggregator.maybe_tick()`` from the event loop. Memory is
    O(instrument children + windows), never O(events).
    """
    sim_clock = [0.0]
    registry = MetricsRegistry()
    kwargs: dict = {}
    if quantiles is not None:
        kwargs["quantiles"] = quantiles
    aggregator = TimeSeriesAggregator(
        registry,
        window_s=window_s,
        max_windows=max_windows,
        clock=lambda: sim_clock[0],
        **kwargs,
    )
    return registry, aggregator, sim_clock


def merge_sim_timeseries(
    sources: list,
    *,
    window_s: float = 10.0,
    max_windows: int = 240,
) -> TimeSeriesAggregator:
    """Merge per-shard :func:`sim_time_aggregator` rings into one view.

    ``sources`` are window lists (or aggregators) recorded on the same
    simulated-time window grid — one per region group of a sharded fleet
    run. Thin wrapper over
    :func:`repro.telemetry.timeseries.merge_timeseries`; it exists here
    so engine code keeps importing telemetry through the bridge. The
    merge is deterministic in source order, which is what makes the
    sharded runner's ``shards=1 == shards=N`` timeseries contract hold.
    """
    return merge_timeseries(sources, window_s=window_s, max_windows=max_windows)
