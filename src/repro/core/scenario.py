"""Synthetic AIOps decision scenarios for the processing-time experiments.

The paper's Figs. 9-11 run 50 transfer-learning tasks through the edge
testbed under drifting task importance. The full building pipeline can
supply that importance (see :class:`repro.core.dcta_system.DCTASystem`),
but the figure sweeps need many epochs × many configurations, so this
module provides a statistically matched generator:

- A small number of **regimes** (seasons / demand patterns). Each regime
  carries a long-tailed base importance vector over the fixed task
  population (Observation 1).
- Each **epoch** (day) belongs to a regime; its true importance is the
  regime base modulated by per-task lognormal fluctuation (Observation 3).
- The epoch's **sensing vector Z** is the regime centroid plus noise —
  informative for CRL's kNN environment definition, the way weather/load
  summaries are informative about the cooling-demand regime.
- The epoch's **Table I-style feature matrix** carries a noisy view of the
  *current* importance (runtime telemetry sees today's fluctuations) plus
  context columns. The local process can therefore recover day-specific
  signal that the historical-environment kNN cannot — precisely the
  complementarity Eq. 6 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.edgesim.workload import SimTask, WorkloadGenerator
from repro.errors import ConfigurationError, DataError
from repro.rl.crl import EnvironmentStore
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class Epoch:
    """One decision epoch: its context and ground truth."""

    day: int
    regime: int
    sensing: np.ndarray
    true_importance: np.ndarray
    features: np.ndarray


@dataclass(frozen=True)
class ScenarioConfig:
    """Generator parameters.

    ``fluctuation_sigma`` controls Observation 3 (day-to-day importance
    variance within a regime); ``feature_noise`` controls how cleanly the
    Table I features reflect today's importance (lower = easier for the
    local process).
    """

    n_tasks: int = 50
    n_regimes: int = 4
    n_history: int = 40
    n_eval: int = 10
    mean_input_mb: float = 500.0
    pareto_shape: float = 1.2
    sensing_dim: int = 6
    sensing_noise: float = 0.3
    fluctuation_sigma: float = 0.4
    feature_noise: float = 0.35
    n_context_features: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tasks < 2:
            raise ConfigurationError(f"n_tasks must be >= 2, got {self.n_tasks}")
        if self.n_regimes < 1:
            raise ConfigurationError(f"n_regimes must be >= 1, got {self.n_regimes}")
        if self.n_history < self.n_regimes:
            raise ConfigurationError("n_history must cover every regime at least once")
        if self.n_eval < 1:
            raise ConfigurationError(f"n_eval must be >= 1, got {self.n_eval}")


class SyntheticScenario:
    """Deterministic epoch stream with regime structure.

    Usage::

        scenario = SyntheticScenario(ScenarioConfig(seed=1))
        tasks = scenario.tasks                      # fixed 50-task population
        store = scenario.environment_store()        # history for CRL
        for epoch in scenario.eval_epochs:          # evaluation days
            workload = scenario.workload_for(epoch)
    """

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        self.config = config if config is not None else ScenarioConfig()
        rng = as_rng(self.config.seed)
        self._rng = rng
        generator = WorkloadGenerator(
            n_tasks=self.config.n_tasks,
            mean_input_mb=self.config.mean_input_mb,
            pareto_shape=self.config.pareto_shape,
            seed=rng.spawn(1)[0],
        )
        self.tasks: list[SimTask] = generator.draw()
        # Regime base importance vectors: independent long-tail draws.
        self._regime_importance = []
        self._regime_centroids = []
        for _ in range(self.config.n_regimes):
            base = rng.pareto(self.config.pareto_shape, size=self.config.n_tasks) + 1e-3
            self._regime_importance.append(base / base.max())
            self._regime_centroids.append(rng.normal(0.0, 3.0, size=self.config.sensing_dim))
        self.history_epochs: list[Epoch] = [
            self._draw_epoch(day) for day in range(self.config.n_history)
        ]
        self.eval_epochs: list[Epoch] = [
            self._draw_epoch(self.config.n_history + day) for day in range(self.config.n_eval)
        ]

    # ------------------------------------------------------------------
    def _draw_epoch(self, day: int) -> Epoch:
        config = self.config
        rng = self._rng
        regime = day % config.n_regimes
        base = self._regime_importance[regime]
        fluctuation = np.exp(rng.normal(0.0, config.fluctuation_sigma, size=config.n_tasks))
        importance = base * fluctuation
        importance = importance / importance.max()
        sensing = self._regime_centroids[regime] + rng.normal(
            0.0, config.sensing_noise, size=config.sensing_dim
        )
        features = self._make_features(importance, regime, rng)
        return Epoch(
            day=day,
            regime=regime,
            sensing=sensing,
            true_importance=importance,
            features=features,
        )

    def _make_features(
        self, importance: np.ndarray, regime: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Table I-like matrix: signal columns + context columns.

        Column 0 mimics "Past Success" (noisy rank signal of importance);
        column 1 mimics "Prediction Accuracy"; the remaining columns are
        regime/context telemetry with weak or no per-task signal.
        """
        config = self.config
        n = config.n_tasks
        noisy = importance * np.exp(rng.normal(0.0, config.feature_noise, size=n))
        past_success = np.argsort(np.argsort(noisy)) / max(n - 1, 1)
        accuracy = np.clip(
            0.9 - 0.3 * np.abs(rng.normal(0.0, config.feature_noise, size=n)), 0.0, 1.0
        )
        signal = np.column_stack([past_success, accuracy, noisy / (noisy.max() or 1.0)])
        context = np.tile(
            rng.normal(regime, 0.5, size=(1, config.n_context_features)), (n, 1)
        ) + rng.normal(0.0, 0.1, size=(n, config.n_context_features))
        return np.hstack([signal, context])

    # ------------------------------------------------------------------
    def environment_store(self) -> EnvironmentStore:
        """History as CRL's environment store E."""
        store = EnvironmentStore()
        for epoch in self.history_epochs:
            store.add(epoch.sensing, epoch.true_importance)
        return store

    def workload_for(self, epoch: Epoch) -> list[SimTask]:
        """The fixed task population carrying this epoch's true importance."""
        if epoch.true_importance.size != len(self.tasks):
            raise DataError("epoch importance size does not match the task population")
        return [
            replace(task, true_importance=float(epoch.true_importance[task.task_id]))
            for task in self.tasks
        ]
