"""Scenarios, the DCTA system, experiment sweeps, and capacity planning.

The experiment/system constructors that used to be re-exported here
(``DCTASystem``, ``PTExperiment``, ``ScenarioConfig``, ...) are now part
of the single top-level :mod:`repro` facade. Importing them through
``repro.core`` still works but raises :class:`DeprecationWarning` via a
module ``__getattr__`` shim — update imports to ``from repro import X``
(the concrete submodules ``repro.core.experiment`` etc. remain the
internal implementation and are not deprecated).
"""

import warnings

from repro.core.scenario import Epoch
from repro.core.experiment import EpochOutcome, SweepResult
from repro.core.statistics import AggregatedSweep, aggregate_sweeps, repeat_sweep
from repro.core.planner import bandwidth_needed, capacity_table, processors_needed

#: Symbols promoted to the top-level ``repro`` facade; the package
#: surface serves them through the deprecation shim below.
_PROMOTED = {
    "ScenarioConfig": "repro.core.scenario",
    "SyntheticScenario": "repro.core.scenario",
    "DCTASystem": "repro.core.dcta_system",
    "DCTASystemConfig": "repro.core.dcta_system",
    "PTExperiment": "repro.core.experiment",
    "build_allocators": "repro.core.experiment",
    "OnlineDCTA": "repro.core.online",
}

__all__ = [
    "Epoch",
    "ScenarioConfig",
    "SyntheticScenario",
    "DCTASystem",
    "DCTASystemConfig",
    "PTExperiment",
    "SweepResult",
    "EpochOutcome",
    "build_allocators",
    "OnlineDCTA",
    "AggregatedSweep",
    "aggregate_sweeps",
    "repeat_sweep",
    "processors_needed",
    "bandwidth_needed",
    "capacity_table",
]


def __getattr__(name: str):
    """Deprecation shim: promoted constructors now live on ``repro``."""
    module_name = _PROMOTED.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name} from repro.core is deprecated; "
        f"use `from repro import {name}` (the public facade)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_PROMOTED))
