"""Top-level facade: scenarios, the DCTA system, and experiment sweeps."""

from repro.core.scenario import Epoch, ScenarioConfig, SyntheticScenario
from repro.core.dcta_system import DCTASystem, DCTASystemConfig
from repro.core.experiment import (
    EpochOutcome,
    PTExperiment,
    SweepResult,
    build_allocators,
)
from repro.core.online import OnlineDCTA
from repro.core.statistics import AggregatedSweep, aggregate_sweeps, repeat_sweep
from repro.core.planner import bandwidth_needed, capacity_table, processors_needed

__all__ = [
    "Epoch",
    "ScenarioConfig",
    "SyntheticScenario",
    "DCTASystem",
    "DCTASystemConfig",
    "PTExperiment",
    "SweepResult",
    "EpochOutcome",
    "build_allocators",
    "OnlineDCTA",
    "AggregatedSweep",
    "aggregate_sweeps",
    "repeat_sweep",
    "processors_needed",
    "bandwidth_needed",
    "capacity_table",
]
