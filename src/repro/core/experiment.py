"""Processing-time experiment runner for the Figs. 9-11 sweeps.

:func:`build_allocators` assembles the paper's four policies (plus the
oracle) over a scenario: it trains CRL on the scenario's environment
store and the local SVM process on its history epochs, labels coming from
the optimal (density-greedy on true importance) TATIM selection of each
historical day. :class:`PTExperiment` then sweeps processors / input size /
bandwidth, averaging processing time over the evaluation epochs.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext, tatim_from_workload
from repro.allocation.crl_policy import CRLAllocator
from repro.allocation.dcta import DCTAAllocator
from repro.allocation.dml import DMLAllocator
from repro.allocation.local import LocalProcess
from repro.allocation.oracle import OracleAllocator
from repro.allocation.random_mapping import RandomMapping
from repro.core.scenario import Epoch, ScenarioConfig, SyntheticScenario
from repro.edgesim.node import EdgeNode
from repro.edgesim.network import StarNetwork
from repro.edgesim.fleet import FleetSimulator
from repro.edgesim.testbed import scaled_testbed
from repro.errors import DataError
from repro.rl.crl import CRLModel
from repro.rl.dqn import DQNConfig
from repro.tatim.cache import AllocationCache, get_allocation_cache, use_allocation_cache
from repro.tatim.greedy import density_greedy
from repro.telemetry import get_registry, span
from repro.utils.reporting import format_table, speedup_table


@dataclass(frozen=True)
class EpochOutcome:
    """One (method, epoch) simulation outcome."""

    method: str
    day: int
    processing_time: float
    tasks_executed: int


@dataclass(frozen=True)
class SweepResult:
    """Results of one sweep: mean PT per method per sweep value.

    ``plan_seconds`` and ``solve_counts`` are the per-method telemetry
    columns: controller-side wall-clock spent computing plans and the
    number of plans solved at each sweep point (the Sec. V allocation-time
    vs training-time breakdown at sweep granularity). Both are empty for
    results built by older callers.
    """

    sweep_name: str
    sweep_values: tuple
    times: dict[str, list[float]]
    outcomes: list[EpochOutcome] = field(default_factory=list, repr=False)
    plan_seconds: dict[str, list[float]] = field(default_factory=dict, repr=False)
    solve_counts: dict[str, list[int]] = field(default_factory=dict, repr=False)

    def speedup_over(self, method: str, *, reference: str = "DCTA") -> np.ndarray:
        """Per-sweep-point PT ratio method/reference."""
        if method not in self.times or reference not in self.times:
            raise DataError(f"unknown method; have {sorted(self.times)}")
        return np.asarray(self.times[method]) / np.asarray(self.times[reference])

    def mean_speedup(self, method: str, *, reference: str = "DCTA") -> float:
        return float(self.speedup_over(method, reference=reference).mean())

    def table(self, *, reference: str = "DCTA") -> str:
        """The figure's data as a printable table (PT + speedups)."""
        return speedup_table(self.sweep_name, list(self.sweep_values), self.times, reference=reference)

    def timing_table(self) -> str:
        """Per-method plan wall-time (ms) and solve counts per sweep point."""
        if not self.plan_seconds:
            return "(no plan-timing telemetry recorded)"
        methods = list(self.plan_seconds)
        headers = [self.sweep_name]
        for method in methods:
            headers += [f"{method} plan (ms)", f"{method} solves"]
        rows = []
        for i, value in enumerate(self.sweep_values):
            row: list[object] = [value]
            for method in methods:
                row += [
                    self.plan_seconds[method][i] * 1e3,
                    self.solve_counts[method][i],
                ]
            rows.append(row)
        return format_table(headers, rows, title="allocation cost per sweep point")


def optimal_selection_labels(
    scenario: SyntheticScenario, epoch: Epoch, nodes: Sequence[EdgeNode]
) -> np.ndarray:
    """0/1 per-task vector: membership in the epoch's optimal TATIM allocation.

    "Optimal" here is the density-greedy solution on *true* importance —
    the label source for the local process's "Past Success"-style training
    (exact search over 50 tasks per epoch would be intractable and the
    greedy is within a few percent on long-tail instances).
    """
    workload = scenario.workload_for(epoch)
    problem = tatim_from_workload(workload, nodes)
    allocation = density_greedy(problem)
    labels = np.zeros(len(workload), dtype=int)
    labels[allocation.assigned_tasks()] = 1
    return labels


def build_allocators(
    scenario: SyntheticScenario,
    nodes: Sequence[EdgeNode],
    *,
    crl_episodes: int = 60,
    crl_clusters: int = 4,
    dqn_hidden: tuple[int, ...] = (64, 32),
    weights: tuple[float, float] = (0.5, 0.5),
    include_oracle: bool = False,
    jobs: int = 1,
    seed: int = 0,
) -> dict[str, Allocator]:
    """Train and assemble the RM / DML / CRL / DCTA policy set.

    The CRL geometry is bound to ``nodes``; rebuild when the node set
    changes (the Fig. 9 sweep does this per point). ``jobs > 1`` fans
    per-cluster CRL training out over worker processes.
    """
    geometry = tatim_from_workload(scenario.tasks, nodes)
    crl_model = CRLModel(
        geometry,
        n_clusters=crl_clusters,
        episodes=crl_episodes,
        dqn_config=DQNConfig(hidden_sizes=dqn_hidden),
        jobs=jobs,
        seed=seed,
    )
    crl_model.fit(scenario.environment_store())

    local = LocalProcess()
    train_features = [epoch.features for epoch in scenario.history_epochs]
    train_labels = [
        optimal_selection_labels(scenario, epoch, nodes) for epoch in scenario.history_epochs
    ]
    local.fit(train_features, train_labels)

    allocators: dict[str, Allocator] = {
        "RM": RandomMapping(seed=seed),
        "DML": DMLAllocator(),
        "CRL": CRLAllocator(crl_model),
        "DCTA": DCTAAllocator(crl_model, local, w1=weights[0], w2=weights[1]),
    }
    if include_oracle:
        allocators["Oracle"] = OracleAllocator(time_limit_s=geometry.time_limit)
    return allocators


#: Rough serial cost of one Fig. 9 sweep point (allocator rebuild + eval
#: epochs on the reference bench machine); feeds the pool's fan-out decision.
EST_SWEEP_POINT_S = 0.4


@dataclass(frozen=True)
class _ProcessorPoint:
    """Picklable payload: one Fig. 9 sweep point (allocator rebuild + eval).

    ``scenario`` is usually a :class:`~repro.parallel.shm.SharedBlobRef`
    so the scenario (environment store included) is pickled once into
    shared memory rather than once per point.
    """

    scenario: object
    count: int
    quality_threshold: float
    crl_episodes: int
    seed: int


def _run_processor_point(point: _ProcessorPoint) -> dict:
    """Rebuild allocators for ``count`` processors and evaluate (worker fn).

    Allocators are built with ``jobs=1`` — the point itself is the unit of
    parallelism, and the pool's fork-guard would serialise any nested
    fan-out anyway.
    """
    from repro.parallel import resolve_shared

    scenario = resolve_shared(point.scenario)
    experiment = PTExperiment(
        scenario,
        quality_threshold=point.quality_threshold,
        crl_episodes=point.crl_episodes,
        jobs=1,
        seed=point.seed,
    )
    nodes, network = scaled_testbed(point.count)
    allocators = build_allocators(
        scenario,
        nodes,
        crl_episodes=point.crl_episodes,
        jobs=1,
        seed=point.seed,
    )
    means = experiment._run_point(nodes, network, allocators)
    return {
        "means": means,
        "plan_seconds": experiment._last_plan_seconds,
        "solve_counts": experiment._last_solve_counts,
    }


class PTExperiment:
    """Sweeps processing time across the paper's three figure axes."""

    def __init__(
        self,
        scenario: SyntheticScenario,
        *,
        quality_threshold: float = 0.9,
        crl_episodes: int = 60,
        jobs: int = 1,
        seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.quality_threshold = quality_threshold
        self.crl_episodes = crl_episodes
        self.jobs = int(jobs)
        self.seed = seed

    # ------------------------------------------------------------------
    def _run_point(
        self,
        nodes: Sequence[EdgeNode],
        network: StarNetwork,
        allocators: Mapping[str, Allocator],
        *,
        workload_transform: Callable | None = None,
    ) -> dict[str, float]:
        simulator = FleetSimulator(nodes, network, quality_threshold=self.quality_threshold)
        registry = get_registry()
        sums: dict[str, float] = {name: 0.0 for name in allocators}
        plan_seconds: dict[str, float] = {name: 0.0 for name in allocators}
        solve_counts: dict[str, int] = {name: 0 for name in allocators}
        outcomes: list[EpochOutcome] = []
        # Batched rollout prefetch: every CRL-backed policy will ask the
        # model for each eval epoch's allocation one sensing vector at a
        # time, so warm an allocation cache once via allocate_batch — the
        # per-cluster DQN rollouts for all epochs run as lockstep batched
        # episodes and the per-epoch plan() calls below become cache hits.
        # Scores are identical either way (rollouts are deterministic), so
        # PT columns are unchanged; only controller wall-clock moves.
        models: dict[int, CRLModel] = {}
        for allocator in allocators.values():
            model = getattr(allocator, "crl_model", getattr(allocator, "model", None))
            if isinstance(model, CRLModel) and model.store is not None:
                models.setdefault(id(model), model)
        sensing_rows = [
            epoch.sensing for epoch in self.scenario.eval_epochs if epoch.sensing is not None
        ]
        with ExitStack() as stack:
            if models and len(sensing_rows) > 1:
                if get_allocation_cache() is None:
                    stack.enter_context(use_allocation_cache(AllocationCache()))
                for model in models.values():
                    prefetch_started = time.perf_counter()
                    with span("core.prefetch", epochs=len(sensing_rows)):
                        model.allocate_batch(sensing_rows)
                    registry.histogram(
                        "repro_core_prefetch_seconds",
                        help="Batched CRL rollout prefetch latency per sweep point",
                    ).observe(time.perf_counter() - prefetch_started)
            for epoch in self.scenario.eval_epochs:
                workload = self.scenario.workload_for(epoch)
                if workload_transform is not None:
                    workload = workload_transform(workload)
                context = EpochContext(sensing=epoch.sensing, features=epoch.features, day=epoch.day)
                for name, allocator in allocators.items():
                    with span("core.plan", policy=name, day=epoch.day):
                        started = time.perf_counter()
                        plan = allocator.plan(workload, nodes, context)
                        elapsed = time.perf_counter() - started
                    plan_seconds[name] += elapsed
                    solve_counts[name] += 1
                    registry.counter(
                        "repro_core_plans_total",
                        help="Allocation plans computed during PT sweeps",
                        policy=name,
                    ).inc()
                    registry.histogram(
                        "repro_core_plan_seconds",
                        help="Controller-side plan computation latency",
                        policy=name,
                    ).observe(elapsed)
                    result = simulator.run(workload, plan)
                    sums[name] += result.processing_time
                    outcomes.append(
                        EpochOutcome(name, epoch.day, result.processing_time, result.tasks_executed)
                    )
        n = len(self.scenario.eval_epochs)
        self._last_outcomes = outcomes
        self._last_plan_seconds = plan_seconds
        self._last_solve_counts = solve_counts
        return {name: total / n for name, total in sums.items()}

    # ------------------------------------------------------------------
    def _append_point(
        self,
        point: dict[str, float],
        times: dict[str, list[float]],
        plan_seconds: dict[str, list[float]],
        solve_counts: dict[str, list[int]],
    ) -> None:
        """Fold one sweep point's means + plan telemetry into the columns."""
        for name, value in point.items():
            times.setdefault(name, []).append(value)
            plan_seconds.setdefault(name, []).append(self._last_plan_seconds[name])
            solve_counts.setdefault(name, []).append(self._last_solve_counts[name])

    def sweep_processors(self, processor_counts: Sequence[int] = (2, 4, 6, 8, 10)) -> SweepResult:
        """Fig. 9: PT vs number of processors.

        This is the one sweep that rebuilds the whole policy set per point
        (CRL geometry is bound to the node set), so with ``jobs > 1`` the
        points themselves fan out over the worker pool: the scenario is
        published to shared memory once, each worker rebuilds and
        evaluates its point with ``jobs=1`` internally, and columns are
        reassembled in point order. CRL training and the simulator are
        seed-deterministic, so PT columns are identical for any ``jobs``.
        """
        times: dict[str, list[float]] = {}
        plan_seconds: dict[str, list[float]] = {}
        solve_counts: dict[str, list[int]] = {}
        jobs = self.jobs
        if jobs > 1 and len(processor_counts) > 1:
            # Skip the share/shard machinery when the pool would degrade
            # the run to serial anyway (single core, small sweeps).
            from repro.parallel import get_worker_pool

            jobs = get_worker_pool().effective_jobs(
                jobs,
                len(processor_counts),
                estimated_cost_s=EST_SWEEP_POINT_S * len(processor_counts),
            )
        with span("core.sweep", axis="processors", points=len(processor_counts)):
            if jobs > 1 and len(processor_counts) > 1:
                from repro.parallel import ParallelTrainer, get_shared_store

                scenario_ref = get_shared_store().share(
                    f"sweep.scenario:{id(self.scenario)}", self.scenario
                )
                points = [
                    _ProcessorPoint(
                        scenario=scenario_ref,
                        count=int(count),
                        quality_threshold=self.quality_threshold,
                        crl_episodes=self.crl_episodes,
                        seed=self.seed,
                    )
                    for count in processor_counts
                ]
                trainer = ParallelTrainer(
                    _run_processor_point,
                    jobs=jobs,
                    label="sweep.processors",
                    estimated_cost_s=EST_SWEEP_POINT_S * len(points),
                )
                for result in trainer.map(points):
                    self._last_plan_seconds = result["plan_seconds"]
                    self._last_solve_counts = result["solve_counts"]
                    self._append_point(result["means"], times, plan_seconds, solve_counts)
            else:
                for count in processor_counts:
                    nodes, network = scaled_testbed(count)
                    allocators = build_allocators(
                        self.scenario,
                        nodes,
                        crl_episodes=self.crl_episodes,
                        jobs=self.jobs,
                        seed=self.seed,
                    )
                    point = self._run_point(nodes, network, allocators)
                    self._append_point(point, times, plan_seconds, solve_counts)
        return SweepResult(
            "processors",
            tuple(processor_counts),
            times,
            plan_seconds=plan_seconds,
            solve_counts=solve_counts,
        )

    def sweep_input_size(
        self,
        mean_sizes_mb: Sequence[float] = (200, 400, 600, 800, 1000),
        *,
        n_processors: int = 10,
    ) -> SweepResult:
        """Fig. 10: PT vs average input data size (Mb)."""
        nodes, network = scaled_testbed(n_processors)
        allocators = build_allocators(
            self.scenario, nodes, crl_episodes=self.crl_episodes, jobs=self.jobs, seed=self.seed
        )
        base_mean = float(np.mean([task.input_mb for task in self.scenario.tasks]))
        times: dict[str, list[float]] = {}
        plan_seconds: dict[str, list[float]] = {}
        solve_counts: dict[str, list[int]] = {}
        with span("core.sweep", axis="input_size_mb", points=len(mean_sizes_mb)):
            for mean_size in mean_sizes_mb:
                scale = mean_size / base_mean

                def rescale(workload, scale=scale):
                    return [replace(task, input_mb=task.input_mb * scale) for task in workload]

                point = self._run_point(nodes, network, allocators, workload_transform=rescale)
                self._append_point(point, times, plan_seconds, solve_counts)
        return SweepResult(
            "input_size_mb",
            tuple(mean_sizes_mb),
            times,
            plan_seconds=plan_seconds,
            solve_counts=solve_counts,
        )

    def sweep_bandwidth(
        self,
        bandwidths_mbps: Sequence[float] = (10, 20, 40, 80, 120),
        *,
        n_processors: int = 10,
    ) -> SweepResult:
        """Fig. 11: PT vs network bandwidth (Mbps)."""
        nodes, _ = scaled_testbed(n_processors)
        allocators = build_allocators(
            self.scenario, nodes, crl_episodes=self.crl_episodes, jobs=self.jobs, seed=self.seed
        )
        times: dict[str, list[float]] = {}
        plan_seconds: dict[str, list[float]] = {}
        solve_counts: dict[str, list[int]] = {}
        with span("core.sweep", axis="bandwidth_mbps", points=len(bandwidths_mbps)):
            for bandwidth in bandwidths_mbps:
                _, network = scaled_testbed(n_processors, bandwidth_mbps=bandwidth)
                point = self._run_point(nodes, network, allocators)
                self._append_point(point, times, plan_seconds, solve_counts)
        return SweepResult(
            "bandwidth_mbps",
            tuple(bandwidths_mbps),
            times,
            plan_seconds=plan_seconds,
            solve_counts=solve_counts,
        )


# ----------------------------------------------------------------------
# Multi-seed fan-out: Fig. 9-style sweeps repeated across scenario seeds
# are embarrassingly parallel (one independent scenario + policy set per
# seed), so they ride the same ParallelTrainer as per-cluster CRL fits.


@dataclass(frozen=True)
class SweepSpec:
    """Picklable description of one seed's sweep for the process pool."""

    scenario_config: ScenarioConfig
    seed: int
    axis: str = "processors"
    points: tuple = (2, 4, 6, 8, 10)
    crl_episodes: int = 60
    quality_threshold: float = 0.9


def run_sweep_spec(spec: SweepSpec) -> SweepResult:
    """Build the seed's scenario + experiment and run one sweep (worker fn)."""
    scenario = SyntheticScenario(replace(spec.scenario_config, seed=spec.seed))
    experiment = PTExperiment(
        scenario,
        quality_threshold=spec.quality_threshold,
        crl_episodes=spec.crl_episodes,
        seed=spec.seed,
    )
    if spec.axis == "processors":
        return experiment.sweep_processors(spec.points)
    if spec.axis == "input_size_mb":
        return experiment.sweep_input_size(spec.points)
    if spec.axis == "bandwidth_mbps":
        return experiment.sweep_bandwidth(spec.points)
    raise DataError(f"unknown sweep axis {spec.axis!r}")


def run_multiseed(
    scenario_config: ScenarioConfig,
    seeds: Sequence[int],
    *,
    axis: str = "processors",
    points: Sequence | None = None,
    crl_episodes: int = 60,
    quality_threshold: float = 0.9,
    jobs: int = 1,
) -> list[SweepResult]:
    """One full sweep per seed, fanned out over ``jobs`` processes.

    Each seed is an independent draw of the scenario (regimes, workloads,
    CRL training), so the fan-out changes nothing but wall-clock; results
    come back in seed order and feed straight into
    :func:`repro.core.statistics.aggregate_sweeps`.
    """
    from repro.parallel import ParallelTrainer

    if points is None:
        points = {
            "processors": (2, 4, 6, 8, 10),
            "input_size_mb": (200, 400, 600, 800, 1000),
            "bandwidth_mbps": (10, 20, 40, 80, 120),
        }.get(axis)
    if points is None:
        raise DataError(f"unknown sweep axis {axis!r}")
    specs = [
        SweepSpec(
            scenario_config=scenario_config,
            seed=int(seed),
            axis=axis,
            points=tuple(points),
            crl_episodes=crl_episodes,
            quality_threshold=quality_threshold,
        )
        for seed in seeds
    ]
    trainer = ParallelTrainer(
        run_sweep_spec,
        jobs=jobs,
        label="multiseed",
        estimated_cost_s=EST_SWEEP_POINT_S * len(points) * len(specs),
    )
    return trainer.map(specs)
