"""End-to-end DCTA system over the green-building pipeline.

This is the full-fidelity integration the paper deploys: synthetic building
telemetry → MTL task training → leave-one-out task importance per day →
historical environment store → CRL training → local SVM process on real
Table I features → the four allocation policies → the edge testbed
simulation, with decision quality H(.) measurable for any allocation.

The figure benchmarks use the faster statistically matched
:class:`repro.core.scenario.SyntheticScenario`; this facade exists to show
(and test) that the whole chain composes on real pipeline data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.allocation.base import Allocator, EpochContext, tatim_from_workload
from repro.allocation.crl_policy import CRLAllocator
from repro.allocation.dcta import DCTAAllocator
from repro.allocation.dml import DMLAllocator
from repro.allocation.local import LocalProcess
from repro.allocation.random_mapping import RandomMapping
from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset
from repro.building.features import TaskEpochFeatures
from repro.core.experiment import EpochOutcome
from repro.edgesim.simulator import EdgeSimulator, SimResult
from repro.edgesim.testbed import scaled_testbed
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.importance.importance import ImportanceEvaluator
from repro.ml.metrics import mean_absolute_error
from repro.rl.crl import CRLModel, EnvironmentStore
from repro.rl.dqn import DQNConfig
from repro.tatim.greedy import density_greedy
from repro.telemetry import get_registry, span
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.registry import make_strategy
from repro.transfer.task import TaskModelSet


@dataclass(frozen=True)
class DCTASystemConfig:
    """Configuration of the full pipeline build."""

    building: BuildingOperationConfig = field(default_factory=lambda: BuildingOperationConfig(n_days=40))
    mtl_strategy: str = "clustered"
    base_model: str = "ridge"
    history_fraction: float = 0.7
    n_processors: int = 10
    bandwidth_mbps: float = 50.0
    crl_clusters: int = 3
    crl_episodes: int = 40
    dqn_hidden: tuple[int, ...] = (64, 32)
    weights: tuple[float, float] = (0.5, 0.5)
    quality_threshold: float = 0.9
    mean_input_mb: float = 500.0
    #: Worker processes for per-cluster CRL training (1 = serial).
    jobs: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.history_fraction < 1.0:
            raise ConfigurationError(
                f"history_fraction must be in (0, 1), got {self.history_fraction}"
            )


class DCTASystem:
    """Builds and runs the complete DCTA stack on pipeline data."""

    def __init__(self, config: DCTASystemConfig | None = None) -> None:
        self.config = config if config is not None else DCTASystemConfig()
        self.dataset: BuildingOperationDataset | None = None
        self.model_set: TaskModelSet | None = None
        self.evaluator: ImportanceEvaluator | None = None
        self.history_days: np.ndarray | None = None
        self.eval_days: np.ndarray | None = None
        self.importance_history: np.ndarray | None = None
        self.workload: list[SimTask] | None = None
        self.allocators: dict[str, Allocator] | None = None
        self.nodes = None
        self.network = None
        self._features: TaskEpochFeatures | None = None
        self._past_success: np.ndarray | None = None
        self._prediction_accuracy: np.ndarray | None = None

    # ------------------------------------------------------------------
    def build(self) -> "DCTASystem":
        """Run the full training chain. Idempotent."""
        started = time.perf_counter()
        with span("core.build", seed=self.config.seed):
            result = self._build()
        get_registry().histogram(
            "repro_core_build_seconds",
            help="Full DCTASystem training-chain latency",
        ).observe(time.perf_counter() - started)
        return result

    def _build(self) -> "DCTASystem":
        config = self.config
        dataset = BuildingOperationDataset(config.building).generate()
        strategy = make_strategy(config.mtl_strategy, config.base_model, seed=config.seed)
        with span("core.build.mtl_fit", strategy=config.mtl_strategy):
            model_set = strategy.fit(dataset.tasks)
        evaluator = ImportanceEvaluator(dataset, model_set)

        days = dataset.days
        split = max(1, int(round(config.history_fraction * days.size)))
        if split >= days.size:
            raise DataError("not enough days for a history/eval split; increase n_days")
        history_days = days[:split]
        eval_days = days[split:]
        with span("core.build.importance_history", days=history_days.size):
            importance_history = evaluator.importance_matrix(history_days)

        # Edge workload: one SimTask per learning task; input size scales
        # with the task's training-set size (more samples = more data to
        # ship and grind), memory likewise.
        sample_counts = np.array([task.n_samples for task in dataset.tasks], dtype=float)
        size_scale = config.mean_input_mb / sample_counts.mean()
        workload = [
            SimTask(
                task_id=task.task_id,
                input_mb=float(max(sample_counts[i] * size_scale, 1.0)),
                memory_mb=float(max(sample_counts[i] * 0.5, 10.0)),
                true_importance=0.0,
            )
            for i, task in enumerate(dataset.tasks)
        ]

        nodes, network = scaled_testbed(
            config.n_processors, bandwidth_mbps=config.bandwidth_mbps
        )
        geometry = tatim_from_workload(workload, nodes)

        store = EnvironmentStore()
        for row, day in enumerate(history_days):
            store.add(self._sensing_for_day(dataset, int(day)), importance_history[row])
        crl_model = CRLModel(
            geometry,
            n_clusters=config.crl_clusters,
            episodes=config.crl_episodes,
            dqn_config=DQNConfig(hidden_sizes=config.dqn_hidden),
            jobs=config.jobs,
            seed=config.seed,
        )
        crl_model.fit(store)

        features = TaskEpochFeatures(dataset)
        past_success = np.zeros(len(dataset.tasks))
        prediction_accuracy = self._model_accuracy(model_set)
        train_features, train_labels = [], []
        with span("core.build.selection_labels", days=history_days.size):
            for row, day in enumerate(history_days):
                matrix = features.features_for_day(int(day), past_success, prediction_accuracy)
                problem = geometry.scaled(importance=importance_history[row])
                selection = np.zeros(len(workload), dtype=int)
                selection[density_greedy(problem).assigned_tasks()] = 1
                train_features.append(matrix)
                train_labels.append(selection)
                past_success = past_success + selection
        local = LocalProcess()
        local.fit(train_features, train_labels)

        self.dataset = dataset
        self.model_set = model_set
        self.evaluator = evaluator
        self.history_days = history_days
        self.eval_days = eval_days
        self.importance_history = importance_history
        self.workload = workload
        self.nodes = nodes
        self.network = network
        self._features = features
        self._past_success = past_success
        self._prediction_accuracy = prediction_accuracy
        self.allocators = {
            "RM": RandomMapping(seed=config.seed),
            "DML": DMLAllocator(),
            "CRL": CRLAllocator(crl_model),
            "DCTA": DCTAAllocator(
                crl_model, local, w1=config.weights[0], w2=config.weights[1]
            ),
        }
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _sensing_for_day(dataset: BuildingOperationDataset, day: int) -> np.ndarray:
        """Concatenate per-building sensing summaries into the Z vector."""
        return np.concatenate(
            [
                dataset.scenario_summary_for_day(building, day)
                for building in range(len(dataset.plants))
            ]
        )

    def _model_accuracy(self, model_set: TaskModelSet) -> np.ndarray:
        """Per-task "Prediction Accuracy" feature: 1 − relative MAE on its data."""
        accuracies = []
        for task_id in model_set.task_ids:
            task = model_set.get(task_id)
            predictions = task.predict(task.data.X)
            mae = mean_absolute_error(task.data.y, predictions)
            mean_target = float(np.mean(np.abs(task.data.y))) or 1.0
            accuracies.append(max(0.0, 1.0 - mae / mean_target))
        return np.asarray(accuracies)

    def _require_built(self) -> None:
        if self.allocators is None:
            raise DataError("system not built; call build() first")

    def context_for_day(self, day: int) -> EpochContext:
        """Assemble the epoch context (sensing + Table I features) for a day."""
        self._require_built()
        sensing = self._sensing_for_day(self.dataset, day)
        matrix = self._features.features_for_day(
            day, self._past_success, self._prediction_accuracy
        )
        return EpochContext(sensing=sensing, features=matrix, day=day)

    def workload_for_day(self, day: int) -> list[SimTask]:
        """The edge workload with that day's true importance attached."""
        self._require_built()
        importance = self.evaluator.importance_for_day(day)
        from dataclasses import replace

        return [
            replace(task, true_importance=float(importance[i]))
            for i, task in enumerate(self.workload)
        ]

    # ------------------------------------------------------------------
    def run_epoch(self, day: int) -> dict[str, SimResult]:
        """Simulate one evaluation day under every policy."""
        self._require_built()
        registry = get_registry()
        with span("core.epoch", day=day):
            workload = self.workload_for_day(day)
            context = self.context_for_day(day)
            simulator = EdgeSimulator(
                self.nodes, self.network, quality_threshold=self.config.quality_threshold
            )
            results: dict[str, SimResult] = {}
            for name, allocator in self.allocators.items():
                with span("core.epoch.policy", policy=name):
                    plan = allocator.plan(workload, self.nodes, context)
                    results[name] = simulator.run(workload, plan)
                if results[name].gate_crossed:
                    registry.histogram(
                        "repro_core_epoch_pt_seconds",
                        help="Per-policy Processing Time of pipeline epochs",
                        policy=name,
                    ).observe(results[name].processing_time)
        registry.counter(
            "repro_core_epochs_total", help="Pipeline evaluation epochs simulated"
        ).inc()
        return results

    def decision_quality(self, day: int, selected_task_ids) -> float:
        """H of the decision made with only the selected tasks' models.

        Quantifies Fig. 3's effect on real pipeline data: allocations that
        keep the important tasks preserve H; allocations that drop them
        degrade it.
        """
        self._require_built()
        selected = set(int(t) for t in selected_task_ids)
        if not selected:
            raise DataError("selected task set must not be empty")
        reduced = self.model_set.restricted_to(selected)
        return MTLDecisionModel(self.dataset, reduced).overall_performance(day)
