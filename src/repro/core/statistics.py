"""Multi-seed experiment statistics: mean, spread, and confidence intervals.

A single-seed sweep can mislead — RM especially is high-variance. This
module repeats an experiment across seeds and reduces the per-seed sweep
results into mean ± Student-t confidence intervals per (method, sweep
point), the form a credible evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.core.experiment import SweepResult
from repro.errors import ConfigurationError, DataError
from repro.utils.reporting import format_table


@dataclass(frozen=True)
class AggregatedSweep:
    """Mean/CI reduction of repeated sweeps.

    ``mean``, ``std``, ``ci_half_width`` map method -> array over sweep
    points; the CI is a two-sided Student-t interval at ``confidence``.
    """

    sweep_name: str
    sweep_values: tuple
    n_seeds: int
    confidence: float
    mean: dict[str, np.ndarray]
    std: dict[str, np.ndarray]
    ci_half_width: dict[str, np.ndarray]

    def table(self) -> str:
        """Mean ± CI table, one row per sweep point."""
        methods = sorted(self.mean)
        headers = [self.sweep_name] + [f"{m} (s)" for m in methods]
        rows = []
        for i, value in enumerate(self.sweep_values):
            row: list[object] = [value]
            for method in methods:
                row.append(
                    f"{self.mean[method][i]:.4g} ± {self.ci_half_width[method][i]:.3g}"
                )
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=f"mean over {self.n_seeds} seeds, {self.confidence:.0%} CI",
        )

    def mean_speedup(self, method: str, *, reference: str = "DCTA") -> float:
        """Mean of per-point mean-PT ratios method/reference."""
        if method not in self.mean or reference not in self.mean:
            raise DataError(f"unknown method; have {sorted(self.mean)}")
        return float(np.mean(self.mean[method] / self.mean[reference]))

    def separated(self, method_a: str, method_b: str) -> bool:
        """Whether the two methods' CIs are disjoint at every sweep point."""
        low_a = self.mean[method_a] - self.ci_half_width[method_a]
        high_a = self.mean[method_a] + self.ci_half_width[method_a]
        low_b = self.mean[method_b] - self.ci_half_width[method_b]
        high_b = self.mean[method_b] + self.ci_half_width[method_b]
        return bool(np.all((high_a < low_b) | (high_b < low_a)))


def aggregate_sweeps(
    results: Sequence[SweepResult], *, confidence: float = 0.95
) -> AggregatedSweep:
    """Reduce same-shaped sweeps (one per seed) to mean ± CI."""
    if not results:
        raise DataError("aggregate_sweeps needs at least one result")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    first = results[0]
    for result in results[1:]:
        if result.sweep_values != first.sweep_values or set(result.times) != set(first.times):
            raise DataError("sweep results differ in shape; cannot aggregate")
    n = len(results)
    mean: dict[str, np.ndarray] = {}
    std: dict[str, np.ndarray] = {}
    half: dict[str, np.ndarray] = {}
    if n > 1:
        t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    else:
        t_value = 0.0
    for method in first.times:
        stacked = np.vstack([np.asarray(r.times[method]) for r in results])
        mean[method] = stacked.mean(axis=0)
        std[method] = stacked.std(axis=0, ddof=1) if n > 1 else np.zeros(stacked.shape[1])
        half[method] = t_value * std[method] / np.sqrt(n) if n > 1 else np.zeros(stacked.shape[1])
    return AggregatedSweep(
        sweep_name=first.sweep_name,
        sweep_values=first.sweep_values,
        n_seeds=n,
        confidence=confidence,
        mean=mean,
        std=std,
        ci_half_width=half,
    )


def repeat_sweep(
    sweep_factory: Callable[[int], SweepResult],
    seeds: Sequence[int],
    *,
    confidence: float = 0.95,
) -> AggregatedSweep:
    """Run ``sweep_factory(seed)`` per seed and aggregate.

    ``sweep_factory`` should construct the scenario/experiment from the
    seed so runs are independent draws.
    """
    if not seeds:
        raise DataError("repeat_sweep needs at least one seed")
    results = [sweep_factory(int(seed)) for seed in seeds]
    return aggregate_sweeps(results, confidence=confidence)
