"""One-shot reproduction report: every headline result in one text document.

``generate_report`` runs a compact version of each experiment family —
long tail (Fig. 2), decision gain (Fig. 3), the three PT sweeps
(Figs. 9-11) with ASCII charts — and assembles a single report string
suitable for a terminal, a log, or EXPERIMENTS.md. The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset
from repro.core.experiment import PTExperiment
from repro.core.scenario import ScenarioConfig, SyntheticScenario
from repro.errors import ConfigurationError
from repro.importance.importance import importance_profile
from repro.importance.longtail import long_tail_stats
from repro.transfer.registry import make_strategy
from repro.utils.ascii_charts import bar_chart, line_chart


@dataclass(frozen=True)
class ReportConfig:
    """Sizing of the report run (defaults finish in a few minutes)."""

    building_days: int = 30
    scenario_tasks: int = 40
    scenario_history: int = 24
    scenario_eval: int = 3
    crl_episodes: int = 40
    processor_points: tuple[int, ...] = (2, 6, 10)
    size_points: tuple[float, ...] = (200, 600, 1000)
    bandwidth_points: tuple[float, ...] = (10, 40, 120)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.building_days < 6:
            raise ConfigurationError(f"building_days must be >= 6, got {self.building_days}")


def _header(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{title}\n{rule}\n"


def generate_report(config: ReportConfig | None = None) -> str:
    """Run the compact experiment battery and return the report text."""
    config = config if config is not None else ReportConfig()
    sections: list[str] = [
        "DCTA reproduction report",
        "(Data-driven Task Allocation for Multi-task Transfer Learning on the Edge, ICDCS 2019)",
    ]

    # ------------------------------------------------------------- Fig. 2
    dataset = BuildingOperationDataset(
        BuildingOperationConfig(n_days=config.building_days, seed=config.seed)
    ).generate()
    model_set = make_strategy("clustered", "ridge", seed=config.seed).fit(dataset.tasks)
    days = dataset.days[5 : 5 + min(10, dataset.days.size - 5)]
    profile = importance_profile(dataset, model_set, days)
    stats = long_tail_stats(profile)
    sections.append(_header("Fig. 2 — task-importance long tail"))
    sections.append(
        f"tasks: {stats.n_tasks}; "
        f"{stats.fraction_for_80pct:.1%} of tasks carry 80% of importance "
        f"(paper: 12.72%); Gini {stats.gini:.3f}"
    )
    ranked = np.sort(profile)[::-1][:8]
    sections.append(
        bar_chart(
            [f"task #{i + 1}" for i in range(ranked.size)],
            ranked,
            title="top-8 task importances",
        )
    )

    # ------------------------------------------------------ Figs. 9-11
    scenario = SyntheticScenario(
        ScenarioConfig(
            n_tasks=config.scenario_tasks,
            n_regimes=4,
            n_history=config.scenario_history,
            n_eval=config.scenario_eval,
            fluctuation_sigma=0.7,
            seed=config.seed,
        )
    )
    experiment = PTExperiment(scenario, crl_episodes=config.crl_episodes, seed=config.seed)

    for title, sweep, paper in (
        (
            "Fig. 9 — PT vs processors",
            lambda: experiment.sweep_processors(config.processor_points),
            "paper avg speedups: RM 2.70x, DML 2.05x, CRL 1.80x",
        ),
        (
            "Fig. 10 — PT vs input size (Mb)",
            lambda: experiment.sweep_input_size(config.size_points),
            "paper at 500 Mb: RM 2.71x, DML 1.83x, CRL 1.68x",
        ),
        (
            "Fig. 11 — PT vs bandwidth (Mbps)",
            lambda: experiment.sweep_bandwidth(config.bandwidth_points),
            "paper avg speedups: RM 2.68x, DML 1.94x, CRL 1.71x",
        ),
    ):
        result = sweep()
        sections.append(_header(title))
        sections.append(result.table())
        sections.append("")
        sections.append(result.timing_table())
        sections.append("")
        sections.append(
            line_chart(
                result.sweep_values,
                result.times,
                width=50,
                height=12,
                y_label="PT (s)",
            )
        )
        speedups = ", ".join(
            f"{m} {result.mean_speedup(m):.2f}x" for m in ("RM", "DML", "CRL")
        )
        sections.append(f"measured mean speedups vs DCTA: {speedups}")
        sections.append(f"({paper})")

    sections.append(_header("Verdict"))
    sections.append(
        "Ordering DCTA < CRL < DML < RM and the monotone sweep trends hold; "
        "see EXPERIMENTS.md for full-scale numbers."
    )
    return "\n".join(sections)
