"""Online (continual) DCTA — Section VII's "Real-time Sensing Data" mode.

A deployed controller does not retrain from scratch each day: it appends
every finished epoch's observed environment to the historical store, keeps
running statistics of the general features (Past Success, Prediction
Accuracy), and periodically refreshes the local process on a sliding
window of recent epochs. :class:`OnlineDCTA` packages that loop:

    controller = OnlineDCTA(geometry, nodes, ...)
    controller.bootstrap(history_epochs)          # offline phase
    for epoch in stream:
        plan = controller.plan_epoch(workload, context)
        ... simulate / deploy ...
        controller.observe(context, true_importance)   # feedback

Feedback uses the *realized* importance (measurable after the decision —
the paper's H is computed from observed outcomes), so the controller
tracks regime drift: after a shift, the environment store and the local
training window fill with post-shift epochs and estimates re-converge.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.allocation.base import EpochContext
from repro.allocation.dcta import DCTAAllocator
from repro.allocation.local import LocalProcess
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.rl.crl import CRLModel, EnvironmentStore
from repro.rl.dqn import DQNConfig
from repro.tatim.greedy import density_greedy
from repro.tatim.problem import TATIMProblem


class OnlineDCTA:
    """Continually-learning DCTA controller.

    Parameters
    ----------
    geometry:
        The fixed TATIM geometry of the recurring workload.
    nodes:
        The edge devices plans target.
    window:
        Sliding-window length (epochs) for local-process retraining.
    refresh_every:
        Retrain the local process after this many observed epochs.
    crl_episodes, crl_clusters, dqn_config, weights, seed:
        As in the offline builders.
    """

    def __init__(
        self,
        geometry: TATIMProblem,
        nodes: Sequence[EdgeNode],
        *,
        window: int = 30,
        refresh_every: int = 5,
        crl_episodes: int = 40,
        crl_clusters: int = 4,
        dqn_config: DQNConfig | None = None,
        weights: tuple[float, float] = (0.5, 0.5),
        seed: int | None = 0,
    ) -> None:
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if refresh_every < 1:
            raise ConfigurationError(f"refresh_every must be >= 1, got {refresh_every}")
        self.geometry = geometry
        self.nodes = list(nodes)
        self.window = int(window)
        self.refresh_every = int(refresh_every)
        self.weights = weights
        self.seed = seed
        self.store = EnvironmentStore()
        self.crl_model = CRLModel(
            geometry,
            n_clusters=crl_clusters,
            episodes=crl_episodes,
            dqn_config=dqn_config if dqn_config is not None else DQNConfig(hidden_sizes=(64, 32)),
            seed=seed,
        )
        self.local = LocalProcess()
        self._recent: deque[tuple[np.ndarray, np.ndarray]] = deque(maxlen=window)
        self._observed_since_refresh = 0
        self._bootstrapped = False
        self.allocator: DCTAAllocator | None = None

    # ------------------------------------------------------------------
    def _optimal_selection(self, importance: np.ndarray) -> np.ndarray:
        problem = self.geometry.scaled(importance=importance)
        selection = np.zeros(self.geometry.n_tasks, dtype=int)
        selection[density_greedy(problem).assigned_tasks()] = 1
        return selection

    def _refresh_local(self) -> None:
        features = [f for f, _ in self._recent]
        labels = [l for _, l in self._recent]
        self.local.fit(features, labels)
        self._observed_since_refresh = 0

    def bootstrap(self, epochs: Sequence) -> "OnlineDCTA":
        """Offline phase: ingest history and train both processes.

        ``epochs`` must provide ``.sensing``, ``.features`` and
        ``.true_importance`` (e.g. :class:`repro.core.scenario.Epoch`).
        """
        if not epochs:
            raise DataError("bootstrap needs at least one historical epoch")
        for epoch in epochs:
            self.store.add(epoch.sensing, epoch.true_importance)
            self._recent.append(
                (epoch.features, self._optimal_selection(epoch.true_importance))
            )
        self.crl_model.fit(self.store)
        self._refresh_local()
        self.allocator = DCTAAllocator(
            self.crl_model, self.local, w1=self.weights[0], w2=self.weights[1]
        )
        self._bootstrapped = True
        return self

    # ------------------------------------------------------------------
    def plan_epoch(
        self, workload: Sequence[SimTask], context: EpochContext
    ) -> ExecutionPlan:
        """Plan one epoch with the current cooperative model."""
        if not self._bootstrapped:
            raise DataError("controller not bootstrapped; call bootstrap() first")
        return self.allocator.plan(workload, self.nodes, context)

    def estimate_importance(self, sensing: np.ndarray) -> np.ndarray:
        """The current environment-definition estimate for a sensing vector."""
        if not self._bootstrapped:
            raise DataError("controller not bootstrapped; call bootstrap() first")
        return self.crl_model.estimate_importance(sensing)

    def observe(self, context: EpochContext, realized_importance: np.ndarray) -> None:
        """Feedback after an epoch: extend history and refresh periodically.

        The environment store grows immediately (kNN sees the new epoch on
        the next query); the local process retrains every
        ``refresh_every`` observations on the sliding window.
        """
        if not self._bootstrapped:
            raise DataError("controller not bootstrapped; call bootstrap() first")
        realized = np.asarray(realized_importance, dtype=float).ravel()
        if realized.size != self.geometry.n_tasks:
            raise DataError(
                f"realized importance has {realized.size} entries for "
                f"{self.geometry.n_tasks} tasks"
            )
        if context.sensing is None or context.features is None:
            raise DataError("observe needs context.sensing and context.features")
        self.store.add(context.sensing, realized)
        self._recent.append((context.features, self._optimal_selection(realized)))
        self._observed_since_refresh += 1
        if self._observed_since_refresh >= self.refresh_every:
            self._refresh_local()

    @property
    def history_size(self) -> int:
        """Number of environments currently in the store."""
        return len(self.store)
