"""Tracked performance benchmarks behind ``repro bench``.

Times the pipeline's hot paths — building-dataset generation, the full
:class:`~repro.core.dcta_system.DCTASystem` build, per-cluster CRL
training at ``jobs=1`` vs ``jobs=N``, and cold- vs warm-cache planning —
and writes the results to ``BENCH_perf.json`` at the repo root so the
performance trajectory is tracked commit over commit.

Schema (one entry per bench)::

    {"<bench_name>": {"mean_s": float, "rounds": int, "commit": str}}

:func:`write_bench_json` merges into an existing file, so partial runs
(e.g. the pytest ``benchmarks/perf/`` suite, which reuses this writer)
update their entries without clobbering the rest.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.core.experiment import PTExperiment, build_allocators
from repro.core.scenario import ScenarioConfig, SyntheticScenario
from repro.allocation.base import EpochContext
from repro.edgesim.testbed import scaled_testbed
from repro.tatim.cache import AllocationCache, use_allocation_cache
from repro.telemetry import (
    MetricsRegistry,
    get_registry,
    telemetry_enabled,
    use_registry,
)

#: Default output path, relative to the current working directory (CI
#: runs from the repo root; the pytest suite resolves the root itself).
DEFAULT_BENCH_PATH = "BENCH_perf.json"


def bench_commit() -> str:
    """Short git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record(results: dict, name: str, mean_s: float, rounds: int, *, commit: str | None = None) -> None:
    """Append one bench entry in the ``BENCH_perf.json`` schema."""
    results[name] = {
        "mean_s": float(mean_s),
        "rounds": int(rounds),
        "commit": commit if commit is not None else bench_commit(),
    }


def write_bench_json(results: dict, path=DEFAULT_BENCH_PATH) -> None:
    """Merge ``results`` into the JSON file at ``path`` (create if absent)."""
    path = Path(path)
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(results)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def bench_table(results: dict) -> str:
    from repro.utils.reporting import format_table

    rows = [
        [name, entry["mean_s"], entry["rounds"], entry["commit"]]
        for name, entry in sorted(results.items())
    ]
    return format_table(["bench", "mean_s", "rounds", "commit"], rows, title="repro bench")


def _timed(fn, rounds: int) -> tuple[float, object]:
    """(mean seconds, last result) over ``rounds`` calls."""
    result = None
    total = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        total += time.perf_counter() - started
    return total / rounds, result


def _family_total(registry, name: str) -> float:
    """Sum of a counter family across label sets (0 when absent)."""
    for family in registry.families():
        if family.name == name:
            return float(sum(child.value for child in family.children.values()))
    return 0.0


# ----------------------------------------------------------------------
def run_bench(
    *,
    jobs: int = 4,
    quick: bool = True,
    rounds: int = 1,
    out: str | None = DEFAULT_BENCH_PATH,
) -> tuple[dict, list[str]]:
    """Run the tracked perf suite; returns (results, human-readable notes).

    ``quick`` uses CI-sized workloads (the default); disable it for
    higher-fidelity numbers. The cache benches always verify that cached
    and uncached plans agree byte-for-byte before reporting speedups.
    """
    commit = bench_commit()
    results: dict = {}
    notes: list[str] = []
    # Count solver/rollout invocations in the ambient registry when
    # telemetry is on (so cache hit-rate metrics reach the CLI exports),
    # else in a private one.
    registry = get_registry() if telemetry_enabled() else MetricsRegistry()
    with use_registry(registry):
        _bench_dataset(results, rounds, commit, quick)
        _bench_system_build(results, rounds, commit, quick)
        _bench_crl_train(results, rounds, commit, quick, jobs, notes)
        _bench_plan_cache(results, commit, quick, notes, registry)
    if out is not None:
        write_bench_json(results, out)
        notes.append(f"wrote {len(results)} benches to {out}")
    return results, notes


def _bench_dataset(results, rounds, commit, quick) -> None:
    from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset

    config = BuildingOperationConfig(
        n_days=20 if quick else 90, n_buildings=2 if quick else 3, seed=7
    )
    mean_s, _ = _timed(lambda: BuildingOperationDataset(config).generate(), rounds)
    record(results, "building_dataset_generate", mean_s, rounds, commit=commit)


def _bench_system_build(results, rounds, commit, quick) -> None:
    from repro.building.dataset import BuildingOperationConfig
    from repro.core.dcta_system import DCTASystem, DCTASystemConfig

    config = DCTASystemConfig(
        building=BuildingOperationConfig(
            n_days=12 if quick else 30, n_buildings=2 if quick else 3, seed=0
        ),
        crl_episodes=4 if quick else 40,
        seed=0,
    )
    mean_s, _ = _timed(lambda: DCTASystem(config).build(), rounds)
    record(results, "dcta_system_build", mean_s, rounds, commit=commit)


def _train_scenario(quick: bool) -> SyntheticScenario:
    return SyntheticScenario(
        ScenarioConfig(
            n_tasks=24 if quick else 50,
            n_regimes=4,
            n_history=16 if quick else 32,
            n_eval=3 if quick else 6,
            fluctuation_sigma=0.7,
            seed=0,
        )
    )


def _bench_crl_train(results, rounds, commit, quick, jobs, notes) -> None:
    scenario = _train_scenario(quick)
    nodes, _ = scaled_testbed(6)
    episodes = 30 if quick else 80

    def train(n_jobs: int):
        return build_allocators(
            scenario, nodes, crl_episodes=episodes, crl_clusters=4, jobs=n_jobs, seed=0
        )

    serial_s, _ = _timed(lambda: train(1), rounds)
    record(results, "crl_train_4cluster_jobs1", serial_s, rounds, commit=commit)
    if jobs > 1:
        parallel_s, _ = _timed(lambda: train(jobs), rounds)
        record(results, f"crl_train_4cluster_jobs{jobs}", parallel_s, rounds, commit=commit)
        notes.append(
            f"CRL train speedup at jobs={jobs}: {serial_s / max(parallel_s, 1e-9):.2f}x"
        )


def _bench_plan_cache(results, commit, quick, notes, registry) -> None:
    """Cold vs warm cache planning over near-identical repeat queries."""
    scenario = _train_scenario(quick)
    nodes, _ = scaled_testbed(6)
    allocators = build_allocators(
        scenario, nodes, crl_episodes=10 if quick else 40, crl_clusters=3, seed=0
    )
    crl = allocators["CRL"]
    epoch = scenario.eval_epochs[0]
    workload = scenario.workload_for(epoch)
    # Repeat queries with sub-quantization jitter: the drift regime where
    # consecutive epochs quantize to the same environment.
    jitter_rng = np.random.default_rng(0)
    contexts = [
        EpochContext(
            sensing=epoch.sensing + jitter_rng.normal(0.0, 1e-9, size=epoch.sensing.shape),
            features=epoch.features,
            day=epoch.day,
        )
        for _ in range(10)
    ]

    def plan_all():
        return [crl.plan(workload, nodes, context) for context in contexts]

    def rollouts() -> float:
        return _family_total(registry, "repro_rl_crl_rollouts_total")

    before = rollouts()
    uncached_s, uncached_plans = _timed(plan_all, 1)
    uncached_rollouts = rollouts() - before
    record(results, "plan_10x_uncached", uncached_s, 1, commit=commit)

    cache = AllocationCache()
    with use_allocation_cache(cache):
        before = rollouts()
        cold_s, cold_plans = _timed(plan_all, 1)
        cold_rollouts = rollouts() - before
        before = rollouts()
        warm_s, warm_plans = _timed(plan_all, 1)
        warm_rollouts = rollouts() - before
    record(results, "plan_10x_cold_cache", cold_s, 1, commit=commit)
    record(results, "plan_10x_warm_cache", warm_s, 1, commit=commit)

    identical = all(
        a.assignments == b.assignments == c.assignments
        for a, b, c in zip(uncached_plans, cold_plans, warm_plans)
    )
    reduction = uncached_rollouts / max(cold_rollouts, 1.0)
    notes.append(
        f"cache: {int(uncached_rollouts)} rollouts/10 plans uncached vs "
        f"{int(cold_rollouts)} cold + {int(warm_rollouts)} warm "
        f"(hit ratio {cache.hit_ratio:.2f}); allocations byte-identical: {identical}"
    )
    if not identical:
        raise AssertionError("cached allocations diverged from uncached run")
    notes.append(
        f"cached-plan solver-invocation reduction: {reduction:.1f}x fewer rollouts"
    )
