"""Tracked performance benchmarks behind ``repro bench``.

Times the pipeline's hot paths — building-dataset generation, the full
:class:`~repro.core.dcta_system.DCTASystem` build, per-cluster CRL
training at ``jobs=1`` vs ``jobs=N``, cold- vs warm-cache planning, and
the allocation-serving data plane (``serve_*``) — and writes the results
to ``BENCH_perf.json`` at the repo root so the performance trajectory is
tracked commit over commit.

Schema (one entry per bench)::

    {"<bench_name>": {"mean_s": float, "std_s": float, "rounds": int, "commit": str}}

Serve and fleet benches append informational KPI extras
(``throughput_rps``, ``latency_p95_ms``, ``rejected``,
``events_per_sec``, ``peak_rss_mib``, ...) to their entries; the
regression gate ignores them, and :func:`bench_table` surfaces them in
the ``repro bench`` output. Peak RSS is always mebibytes
(:func:`peak_rss_mib` normalizes the platform-dependent ``ru_maxrss``
unit — KiB on Linux, bytes on macOS).

:func:`write_bench_json` merges into an existing file, so partial runs
(e.g. the pytest ``benchmarks/perf/`` suite, which reuses this writer)
update their entries without clobbering the rest.

:func:`check_regressions` closes the loop: ``repro bench --check``
compares a fresh run against a baseline ``BENCH_perf.json`` with
per-bench relative thresholds (plus a std-derived noise allowance and a
floor below which micro-benches are informational only) and reports
failures, so perf work is gated rather than just tracked.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.core.experiment import PTExperiment, build_allocators
from repro.core.scenario import ScenarioConfig, SyntheticScenario
from repro.allocation.base import EpochContext
from repro.edgesim.testbed import scaled_testbed
from repro.tatim.cache import AllocationCache, use_allocation_cache
from repro.telemetry import (
    MetricsRegistry,
    get_registry,
    telemetry_enabled,
    use_registry,
)

#: Default output path, relative to the current working directory (CI
#: runs from the repo root; the pytest suite resolves the root itself).
DEFAULT_BENCH_PATH = "BENCH_perf.json"


def bench_commit() -> str:
    """Short git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record(
    results: dict,
    name: str,
    mean_s: float,
    rounds: int,
    *,
    std_s: float = 0.0,
    commit: str | None = None,
    extra: dict | None = None,
) -> None:
    """Append one bench entry in the ``BENCH_perf.json`` schema.

    ``extra`` merges additional keys (serving KPIs: ``throughput_rps``,
    ``latency_p95_ms``, ``rejected``, ...) into the entry; the regression
    gate only reads ``mean_s``/``std_s``, so extras are informational.

    Every entry is stamped with the interpreter and numpy versions it was
    measured under: numpy upgrades routinely move kernel-bound means by
    more than the gate's threshold, so :func:`baseline_warnings` can flag
    a stale-runtime baseline instead of letting the gate misfire.
    """
    entry = {
        "mean_s": float(mean_s),
        "std_s": float(std_s),
        "rounds": int(rounds),
        "commit": commit if commit is not None else bench_commit(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if extra:
        entry.update(extra)
    results[name] = entry


def write_bench_json(results: dict, path=DEFAULT_BENCH_PATH) -> None:
    """Merge ``results`` into the JSON file at ``path`` (create if absent)."""
    path = Path(path)
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(results)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8")


#: Entry keys every bench carries; anything else is an informational
#: extra (serving KPIs, events/sec, peak RSS, ...) surfaced by
#: :func:`bench_table` rather than living only in ``BENCH_perf.json``.
_CORE_ENTRY_KEYS = frozenset({"mean_s", "std_s", "rounds", "commit", "python", "numpy"})


def peak_rss_mib() -> float:
    """Process peak RSS in MiB, normalized across platforms.

    ``resource.getrusage(...).ru_maxrss`` is kibibytes on Linux but bytes
    on macOS; converting here (once) keeps every ``peak_rss_mib`` bench
    extra in the same unit regardless of where it was recorded.
    """
    import resource
    import sys

    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def bench_table(results: dict) -> str:
    from repro.utils.reporting import format_table

    rows = []
    for name, entry in sorted(results.items()):
        extras = ", ".join(
            f"{key}={entry[key]}" for key in entry if key not in _CORE_ENTRY_KEYS
        )
        rows.append(
            [
                name,
                entry["mean_s"],
                entry.get("std_s", 0.0),
                entry["rounds"],
                entry["commit"],
                extras or "-",
            ]
        )
    return format_table(
        ["bench", "mean_s", "std_s", "rounds", "commit", "extras"],
        rows,
        title="repro bench",
    )


def _timed(fn, rounds: int) -> tuple[float, float, object]:
    """(mean seconds, population std, last result) over ``rounds`` calls."""
    result = None
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
    samples = np.asarray(samples)
    return float(samples.mean()), float(samples.std()), result


def _timed_interleaved(fns: dict, rounds: int) -> dict:
    """Time several variants with interleaved rounds (A B A B ... not A A B B).

    Clock speed drifts over a bench process's lifetime (thermal/turbo
    decay, background load), so timing all of variant A's rounds before
    variant B's biases whichever runs later. Interleaving spreads the
    drift evenly across variants. Returns
    ``{name: (mean_s, std_s, last_result)}``.
    """
    samples: dict = {name: [] for name in fns}
    last: dict = {name: None for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            started = time.perf_counter()
            last[name] = fn()
            samples[name].append(time.perf_counter() - started)
    return {
        name: (
            float(np.mean(samples[name])),
            float(np.std(samples[name])),
            last[name],
        )
        for name in fns
    }


def _family_total(registry, name: str) -> float:
    """Sum of a counter family across label sets (0 when absent)."""
    for family in registry.families():
        if family.name == name:
            return float(sum(child.value for child in family.children.values()))
    return 0.0


# ----------------------------------------------------------------------
# Regression gate

#: Default allowed current/baseline mean ratio before a bench fails.
DEFAULT_THRESHOLD = 1.25

#: Per-bench overrides for benches whose absolute times are so small that
#: scheduler jitter regularly exceeds the default relative threshold.
PER_BENCH_THRESHOLD = {
    "building_dataset_generate": 1.6,
    "plan_10x_uncached": 2.0,
    "plan_10x_cold_cache": 2.0,
    "plan_10x_warm_cache": 2.5,
}

#: Benches with baseline means under this floor are reported but never
#: fail the gate — at sub-millisecond scale the ratio is pure noise.
MIN_GATED_SECONDS = 0.002


def check_regressions(
    current: dict,
    baseline: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], str]:
    """Compare a fresh bench run against a baseline ``BENCH_perf.json``.

    A bench regresses when its current mean exceeds
    ``baseline_mean * limit + 2 * max(stds)`` where ``limit`` is the
    per-bench threshold (``PER_BENCH_THRESHOLD`` falling back to
    ``threshold``) and the std term absorbs recorded round-to-round
    noise. Benches only present on one side are reported as ``new`` /
    ``missing`` but never fail; neither do sub-floor micro-benches.

    Returns ``(failures, table)`` — an empty ``failures`` list means the
    gate passes. Baselines must be produced on the same machine as the
    current run; cross-machine ratios are meaningless.
    """
    from repro.utils.reporting import format_table

    failures: list[str] = []
    rows = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append([name, "-", cur["mean_s"], "-", "-", "new"])
            continue
        if cur is None:
            rows.append([name, base["mean_s"], "-", "-", "-", "missing"])
            continue
        limit = PER_BENCH_THRESHOLD.get(name, threshold)
        base_mean = float(base["mean_s"])
        cur_mean = float(cur["mean_s"])
        ratio = cur_mean / base_mean if base_mean > 0 else float("inf")
        noise = 2.0 * max(float(base.get("std_s", 0.0)), float(cur.get("std_s", 0.0)))
        if base_mean < MIN_GATED_SECONDS:
            status = "ok (ungated: micro)"
        elif cur_mean > base_mean * limit + noise:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cur_mean:.4f}s vs baseline {base_mean:.4f}s "
                f"(ratio {ratio:.2f}x > limit {limit:.2f}x + noise {noise:.4f}s)"
            )
        else:
            status = "ok"
        rows.append([name, base_mean, cur_mean, f"{ratio:.2f}x", f"{limit:.2f}x", status])
    table = format_table(
        ["bench", "baseline_s", "current_s", "ratio", "limit", "status"],
        rows,
        title="bench regression check",
    )
    return failures, table


def baseline_warnings(baseline: dict) -> list[str]:
    """Consistency warnings for a baseline ``BENCH_perf.json``.

    The regression gate assumes every baseline entry describes the same
    code state and runtime; this audits that assumption without failing
    the gate:

    - **mixed commits** — entries recorded at different commits compare
      the current run against several historical code states at once
      (typical after partial pytest-suite merges); regenerate with one
      full ``repro bench`` run;
    - **runtime drift** — entries stamped with a different interpreter or
      numpy version than the current process (kernel-bound means shift
      across numpy releases). Entries predating the version stamps are
      skipped.
    """
    warnings: list[str] = []
    if not baseline:
        return warnings
    commits = sorted({entry.get("commit", "unknown") for entry in baseline.values()})
    if len(commits) > 1:
        warnings.append(
            f"baseline mixes entries from {len(commits)} commits "
            f"({', '.join(commits)}); ratios compare against inconsistent "
            "code states — regenerate with one full `repro bench` run"
        )
    pythons = sorted({e["python"] for e in baseline.values() if "python" in e})
    current_python = platform.python_version()
    if pythons and (len(pythons) > 1 or pythons[0] != current_python):
        warnings.append(
            f"baseline recorded under python {', '.join(pythons)} but current "
            f"run is {current_python}; absolute times are not comparable"
        )
    numpys = sorted({e["numpy"] for e in baseline.values() if "numpy" in e})
    if numpys and (len(numpys) > 1 or numpys[0] != np.__version__):
        warnings.append(
            f"baseline recorded under numpy {', '.join(numpys)} but current "
            f"run is {np.__version__}; kernel-bound means may shift"
        )
    return warnings


def load_bench_json(path=DEFAULT_BENCH_PATH) -> dict:
    """Read a ``BENCH_perf.json`` baseline (empty dict when absent)."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}


# ----------------------------------------------------------------------
def run_bench(
    *,
    jobs: int = 4,
    quick: bool = True,
    rounds: int = 3,
    out: str | None = DEFAULT_BENCH_PATH,
) -> tuple[dict, list[str]]:
    """Run the tracked perf suite; returns (results, human-readable notes).

    ``quick`` uses CI-sized workloads (the default); disable it for
    higher-fidelity numbers. The cache benches always verify that cached
    and uncached plans agree byte-for-byte before reporting speedups, and
    the importance benches verify ``jobs=1`` / ``jobs=N`` byte-identity.
    The worker pool is warmed once up front so parallel benches measure
    steady-state dispatch, not spin-up; it is shut down (and its shared
    segments released) before returning.
    """
    import os

    from repro.parallel import get_worker_pool, shutdown_worker_pool

    commit = bench_commit()
    results: dict = {}
    notes: list[str] = []
    notes.append(f"machine: {os.cpu_count() or 1} cpu(s); pool degrades to serial on 1")
    # Count solver/rollout invocations in the ambient registry when
    # telemetry is on (so cache hit-rate metrics reach the CLI exports),
    # else in a private one.
    registry = get_registry() if telemetry_enabled() else MetricsRegistry()
    try:
        with use_registry(registry):
            if jobs > 1 and (os.cpu_count() or 1) > 1:
                get_worker_pool().executor(min(jobs, os.cpu_count() or 1))
            _bench_dataset(results, rounds, commit, quick)
            _bench_system_build(results, rounds, commit, quick)
            _bench_crl_train(results, rounds, commit, quick, jobs, notes)
            _bench_stacked_train(results, rounds, commit, quick, notes)
            _bench_dqn(results, rounds, commit, quick)
            _bench_rollout_batch(results, rounds, commit, quick, notes)
            _bench_mlp_fit(results, rounds, commit, quick, notes)
            _bench_importance(results, rounds, commit, quick, jobs, notes)
            _bench_edgesim(results, rounds, commit, quick)
            _bench_fleet(results, rounds, commit, quick, notes)
            _bench_fleet_sharded(results, rounds, commit, quick, notes)
            _bench_plan_cache(results, rounds, commit, quick, notes, registry)
            _bench_serve(results, rounds, commit, quick, jobs, notes)
    finally:
        shutdown_worker_pool()
    if out is not None:
        write_bench_json(results, out)
        notes.append(f"wrote {len(results)} benches to {out}")
    return results, notes


def _bench_dataset(results, rounds, commit, quick) -> None:
    from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset

    config = BuildingOperationConfig(
        n_days=20 if quick else 90, n_buildings=2 if quick else 3, seed=7
    )
    mean_s, std_s, _ = _timed(lambda: BuildingOperationDataset(config).generate(), rounds)
    record(results, "building_dataset_generate", mean_s, rounds, std_s=std_s, commit=commit)


def _bench_system_build(results, rounds, commit, quick) -> None:
    from repro.building.dataset import BuildingOperationConfig
    from repro.core.dcta_system import DCTASystem, DCTASystemConfig

    config = DCTASystemConfig(
        building=BuildingOperationConfig(
            n_days=12 if quick else 30, n_buildings=2 if quick else 3, seed=0
        ),
        crl_episodes=4 if quick else 40,
        seed=0,
    )
    mean_s, std_s, _ = _timed(lambda: DCTASystem(config).build(), rounds)
    record(results, "dcta_system_build", mean_s, rounds, std_s=std_s, commit=commit)


def _train_scenario(quick: bool) -> SyntheticScenario:
    return SyntheticScenario(
        ScenarioConfig(
            n_tasks=24 if quick else 50,
            n_regimes=4,
            n_history=16 if quick else 32,
            n_eval=3 if quick else 6,
            fluctuation_sigma=0.7,
            seed=0,
        )
    )


def _bench_crl_train(results, rounds, commit, quick, jobs, notes) -> None:
    scenario = _train_scenario(quick)
    nodes, _ = scaled_testbed(6)
    episodes = 30 if quick else 80

    def train(n_jobs: int):
        return build_allocators(
            scenario, nodes, crl_episodes=episodes, crl_clusters=4, jobs=n_jobs, seed=0
        )

    if jobs > 1:
        timings = _timed_interleaved({"jobs1": lambda: train(1), "jobsN": lambda: train(jobs)}, rounds)
        serial_s, serial_std, _ = timings["jobs1"]
        parallel_s, parallel_std, _ = timings["jobsN"]
        record(
            results, "crl_train_4cluster_jobs1", serial_s, rounds, std_s=serial_std, commit=commit
        )
        record(
            results,
            f"crl_train_4cluster_jobs{jobs}",
            parallel_s,
            rounds,
            std_s=parallel_std,
            commit=commit,
        )
        notes.append(
            f"CRL train speedup at jobs={jobs}: {serial_s / max(parallel_s, 1e-9):.2f}x"
        )
    else:
        serial_s, serial_std, _ = _timed(lambda: train(1), rounds)
        record(
            results, "crl_train_4cluster_jobs1", serial_s, rounds, std_s=serial_std, commit=commit
        )


def _crl_params_sha(model) -> str:
    """Digest of every cluster agent's trained state (identity checks)."""
    digest = hashlib.sha256()
    for key in sorted(model._cluster_agents):
        agent = model._cluster_agents[key]
        digest.update(np.ascontiguousarray(agent.online._flat_params).tobytes())
        digest.update(np.ascontiguousarray(agent.target._flat_params).tobytes())
        digest.update(np.float64(agent.epsilon).tobytes())
        digest.update(np.int64(agent._steps).tobytes())
    return digest.hexdigest()


def _bench_stacked_train(results, rounds, commit, quick, notes) -> None:
    """Lockstep-stacked vs serial per-agent CRL training (same model).

    Times :meth:`CRLModel.fit` with the cross-agent stacked kernels
    forced on vs off (interleaved rounds), then asserts the two trained
    models are byte-identical — parameters, target nets, ε and step
    counters — before recording. The stacked path is what ``jobs=1``
    builds use by default, so ``crl_train_stacked`` tracks the number
    the `crl_train_4cluster_jobs1` entry rides on.
    """
    from repro.allocation.base import tatim_from_workload
    from repro.rl.crl import CRLModel
    from repro.rl.dqn import DQNConfig

    scenario = _train_scenario(quick)
    nodes, _ = scaled_testbed(6)
    geometry = tatim_from_workload(scenario.tasks, nodes)
    store = scenario.environment_store()
    episodes = 30 if quick else 80

    def fit(stacked: bool):
        model = CRLModel(
            geometry,
            n_clusters=4,
            episodes=episodes,
            dqn_config=DQNConfig(hidden_sizes=(64, 32)),
            jobs=1,
            seed=0,
            stacked=stacked,
        )
        return model.fit(store)

    timings = _timed_interleaved(
        {"stacked": lambda: fit(True), "unstacked": lambda: fit(False)}, rounds
    )
    stacked_s, stacked_std, stacked_model = timings["stacked"]
    serial_s, serial_std, serial_model = timings["unstacked"]
    if _crl_params_sha(stacked_model) != _crl_params_sha(serial_model):
        raise AssertionError("stacked CRL training diverged from serial training")
    record(results, "crl_train_stacked", stacked_s, rounds, std_s=stacked_std, commit=commit)
    record(
        results, "crl_train_unstacked", serial_s, rounds, std_s=serial_std, commit=commit
    )
    notes.append(
        f"stacked CRL training: {serial_s / max(stacked_s, 1e-9):.2f}x over serial "
        "(trained agents byte-identical)"
    )


def _bench_rollout_batch(results, rounds, commit, quick, notes) -> None:
    """Batched lockstep greedy rollouts vs one :meth:`solve` per instance.

    32 instances share the agent's geometry with per-instance importance
    vectors (the dispatcher's miss-group shape). Assignments from the
    batched pass are asserted identical to the serial loop's before the
    entries are recorded.
    """
    from repro.rl.dqn import DQNAgent, DQNConfig
    from repro.rl.env import AllocationEnv, BatchedAllocationEnv
    from repro.tatim.generators import random_instance

    base = random_instance(24 if quick else 50, 3, seed=11)
    env = AllocationEnv(base)
    agent = DQNAgent(
        env.state_dim,
        env.n_actions,
        DQNConfig(hidden_sizes=(128, 64), batch_size=32, warmup_transitions=64),
        seed=5,
    )
    for _ in range(4):
        agent.train_episode(env)
    importance_rng = np.random.default_rng(23)
    problems = [
        base.scaled(importance=importance_rng.uniform(0.1, 1.0, base.n_tasks))
        for _ in range(32)
    ]

    def serial():
        return [agent.solve(AllocationEnv(problem)) for problem in problems]

    def batched():
        return agent.solve_greedy_batch(BatchedAllocationEnv(problems))

    timings = _timed_interleaved({"serial": serial, "batched": batched}, rounds)
    serial_s, serial_std, serial_allocs = timings["serial"]
    batch_s, batch_std, batch_allocs = timings["batched"]
    if [a.as_assignment() for a in serial_allocs] != [
        a.as_assignment() for a in batch_allocs
    ]:
        raise AssertionError("batched greedy rollouts diverged from serial solves")
    record(results, "rollout_serial_x32", serial_s, rounds, std_s=serial_std, commit=commit)
    record(results, "rollout_batch_x32", batch_s, rounds, std_s=batch_std, commit=commit)
    notes.append(
        f"batched rollouts: {serial_s / max(batch_s, 1e-9):.2f}x over serial "
        "solves (allocations identical)"
    )


def _bench_mlp_fit(results, rounds, commit, quick, notes) -> None:
    """Fused-cache MLPRegressor training vs the naive per-batch loop.

    The naive variant replays exactly what ``fit`` did before the fused
    epoch driver — one ``train_batch`` (allocate, forward, backward) per
    mini-batch slice — on an identically seeded network, then the two
    parameter vectors are asserted bit-equal.
    """
    from repro.ml.mlp_regressor import MLPRegressor
    from repro.ml.neural import MLP, Adam
    from repro.ml.preprocessing import StandardScaler
    from repro.utils.rng import as_rng

    data_rng = np.random.default_rng(9)
    X = data_rng.normal(size=(256 if quick else 512, 12))
    y = np.sin(X @ data_rng.normal(size=12)) + 0.1 * data_rng.normal(size=X.shape[0])
    epochs, batch_size, seed = 40 if quick else 120, 32, 3

    def fused():
        model = MLPRegressor(
            hidden_sizes=(32, 16), epochs=epochs, batch_size=batch_size, seed=seed
        )
        model.fit(X, y)
        return model.network_._flat_params.copy()

    def naive():
        scaler = StandardScaler().fit(X)
        scaled_x = scaler.transform(X)
        scaled_y = ((y - float(y.mean())) / (float(y.std()) or 1.0)).reshape(-1, 1)
        network = MLP((X.shape[1], 32, 16, 1), optimizer=Adam(1e-3), seed=seed)
        rng = as_rng(seed)
        n = scaled_x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                index = order[start : start + batch_size]
                network.train_batch(scaled_x[index], scaled_y[index])
        return network._flat_params.copy()

    timings = _timed_interleaved({"fused": fused, "naive": naive}, rounds)
    fused_s, fused_std, fused_params = timings["fused"]
    naive_s, naive_std, naive_params = timings["naive"]
    if not np.array_equal(fused_params, naive_params):
        raise AssertionError("fused MLP training diverged from the naive loop")
    record(results, "mlp_fit_fused", fused_s, rounds, std_s=fused_std, commit=commit)
    record(results, "mlp_fit_naive", naive_s, rounds, std_s=naive_std, commit=commit)
    notes.append(
        f"fused MLP fit: {naive_s / max(fused_s, 1e-9):.2f}x over naive loop "
        "(parameters bit-identical)"
    )


def dqn_bench_workloads(quick: bool = True) -> dict:
    """Name → zero-arg callable for the single-process DQN kernel benches.

    Shared by ``repro bench`` (:func:`_bench_dqn`) and the pytest perf
    suite (``benchmarks/perf/test_perf_dqn.py``) so both record under the
    same ``BENCH_perf.json`` keys. The agent is built once with its
    replay buffer filled past warmup, so every timed gradient step
    actually trains; workload sizes are chosen to land above the
    regression gate's micro-bench floor.
    """
    from repro.rl.dqn import DQNAgent, DQNConfig
    from repro.rl.env import AllocationEnv
    from repro.tatim.generators import random_instance

    problem = random_instance(24 if quick else 50, 3, seed=11)
    env = AllocationEnv(problem)
    config = DQNConfig(hidden_sizes=(128, 64), batch_size=32, warmup_transitions=64)
    agent = DQNAgent(env.state_dim, env.n_actions, config, seed=5)
    while len(agent.buffer) < 512:
        agent.train_episode(env)
    rollout_rng = np.random.default_rng(17)

    def train_steps():
        loss = None
        for _ in range(200):
            loss = agent.train_step()
        return loss

    def train_episodes():
        return [agent.train_episode(env) for _ in range(10)]

    def greedy_solves():
        return [agent.solve(env) for _ in range(20)]

    def env_rollouts():
        steps = 0
        for _ in range(50):
            env.reset()
            while not env.done:
                feasible = env.feasible_actions()
                env.step(int(rollout_rng.choice(feasible)))
                steps += 1
        env.reset()
        return steps

    return {
        "dqn_train_step_x200": train_steps,
        "dqn_train_episode_x10": train_episodes,
        "dqn_solve_greedy_x20": greedy_solves,
        "env_random_rollout_x50": env_rollouts,
    }


def _bench_dqn(results, rounds, commit, quick) -> None:
    """Single-process DQN kernel hot paths (the in-process speed lever)."""
    for name, fn in dqn_bench_workloads(quick).items():
        mean_s, std_s, _ = _timed(fn, rounds)
        record(results, name, mean_s, rounds, std_s=std_s, commit=commit)


def _bench_importance(results, rounds, commit, quick, jobs, notes) -> None:
    """Leave-one-out + Shapley evaluators at jobs=1 vs jobs=N.

    Fresh evaluators are built inside each timed call so the cross-call
    coalition caches never leak warmth between rounds; byte-identity of
    the jobs=1 and jobs=N outputs is asserted before recording.
    """
    from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset
    from repro.importance.importance import ImportanceEvaluator
    from repro.importance.shapley import ShapleyImportanceEvaluator
    from repro.transfer.registry import make_strategy

    dataset = BuildingOperationDataset(
        BuildingOperationConfig(n_days=12 if quick else 30, n_buildings=2, seed=3)
    ).generate()
    model_set = make_strategy("clustered", "ridge", seed=0).fit(dataset.tasks)
    days = np.arange(8 if quick else 20)
    n_permutations = 8 if quick else 16

    def loo(n_jobs: int):
        return ImportanceEvaluator(dataset, model_set, jobs=n_jobs).importance_matrix(days)

    def shapley(n_jobs: int):
        return ShapleyImportanceEvaluator(
            dataset, model_set, n_permutations=n_permutations, seed=5, jobs=n_jobs
        ).importance_for_day(1)

    if jobs > 1:
        timings = _timed_interleaved(
            {
                "loo1": lambda: loo(1),
                "looN": lambda: loo(jobs),
                "shap1": lambda: shapley(1),
                "shapN": lambda: shapley(jobs),
            },
            rounds,
        )
        loo1_s, loo1_std, loo1 = timings["loo1"]
        loon_s, loon_std, loon = timings["looN"]
        shap1_s, shap1_std, shap1 = timings["shap1"]
        shapn_s, shapn_std, shapn = timings["shapN"]
        record(results, "loo_importance_jobs1", loo1_s, rounds, std_s=loo1_std, commit=commit)
        record(
            results, "shapley_importance_jobs1", shap1_s, rounds, std_s=shap1_std, commit=commit
        )
        record(
            results, f"loo_importance_jobs{jobs}", loon_s, rounds, std_s=loon_std, commit=commit
        )
        record(
            results,
            f"shapley_importance_jobs{jobs}",
            shapn_s,
            rounds,
            std_s=shapn_std,
            commit=commit,
        )
        if not np.array_equal(loo1, loon) or not np.array_equal(shap1, shapn):
            raise AssertionError("importance at jobs=N diverged from jobs=1")
        notes.append(
            f"importance speedup at jobs={jobs}: "
            f"LOO {loo1_s / max(loon_s, 1e-9):.2f}x, "
            f"Shapley {shap1_s / max(shapn_s, 1e-9):.2f}x (byte-identical)"
        )
    else:
        loo1_s, loo1_std, _ = _timed(lambda: loo(1), rounds)
        record(results, "loo_importance_jobs1", loo1_s, rounds, std_s=loo1_std, commit=commit)
        shap1_s, shap1_std, _ = _timed(lambda: shapley(1), rounds)
        record(
            results, "shapley_importance_jobs1", shap1_s, rounds, std_s=shap1_std, commit=commit
        )


def _bench_edgesim(results, rounds, commit, quick) -> None:
    """EdgeSimulator epoch runs, with and without mid-run node failures."""
    from repro.edgesim.simulator import EdgeSimulator

    scenario = _train_scenario(quick)
    nodes, network = scaled_testbed(6)
    allocators = build_allocators(
        scenario, nodes, crl_episodes=10 if quick else 40, crl_clusters=3, seed=0
    )
    dcta = allocators["DCTA"]
    epoch = scenario.eval_epochs[0]
    workload = scenario.workload_for(epoch)
    context = EpochContext(sensing=epoch.sensing, features=epoch.features, day=epoch.day)
    plan = dcta.plan(workload, nodes, context)
    simulator = EdgeSimulator(nodes, network)
    # Knock out a third of the nodes mid-run so the re-dispatch path is
    # part of the tracked cost.
    failures = {node.node_id: 5.0 for node in list(nodes)[:: 3]}

    mean_s, std_s, _ = _timed(lambda: simulator.run(workload, plan), rounds)
    record(results, "edgesim_epoch_run", mean_s, rounds, std_s=std_s, commit=commit)
    mean_s, std_s, _ = _timed(
        lambda: simulator.run(workload, plan, failures=failures), rounds
    )
    record(results, "edgesim_epoch_run_failures", mean_s, rounds, std_s=std_s, commit=commit)


def _bench_fleet(results, rounds, commit, quick, notes) -> None:
    """Vectorized fleet engine: epoch-kernel speedup plus 10k/100k scale runs.

    The kernel entry interleaves ``FleetSimulator.run`` against the
    reference ``EdgeSimulator.run`` on the same testbed workload and
    asserts the results are identical before recording. The scale entries
    run the open-loop fleet at 10k and 100k nodes (regions and arrival
    rate scaled together so the access radio sits at the same ~60%
    utilization as the defaults) and record events/sec and process
    peak-RSS as informational extras.
    """
    from repro.edgesim.fleet import FleetConfig, FleetSimulator
    from repro.edgesim.simulator import EdgeSimulator, ExecutionPlan
    from repro.edgesim.workload import WorkloadGenerator

    nodes, network = scaled_testbed(6)
    workload = WorkloadGenerator(n_tasks=24 if quick else 50, seed=11).draw()
    ordered = sorted(workload, key=lambda t: t.true_importance, reverse=True)
    plan = ExecutionPlan(
        assignments=tuple(
            (task.task_id, i % len(nodes)) for i, task in enumerate(ordered)
        ),
        label="bench-fleet",
    )
    fast = FleetSimulator(nodes, network)
    reference = EdgeSimulator(nodes, network)
    timings = _timed_interleaved(
        {
            "fleet": lambda: fast.run(workload, plan),
            "reference": lambda: reference.run(workload, plan),
        },
        rounds,
    )
    fleet_s, fleet_std, fleet_result = timings["fleet"]
    ref_s, _, ref_result = timings["reference"]
    if fleet_result != ref_result:
        raise AssertionError("fleet epoch kernel diverged from EdgeSimulator")
    speedup = ref_s / max(fleet_s, 1e-9)
    record(
        results,
        "edgesim_fleet_epoch_kernel",
        fleet_s,
        rounds,
        std_s=fleet_std,
        commit=commit,
        extra={"speedup_vs_reference": round(speedup, 3)},
    )
    notes.append(
        f"fleet epoch kernel: {speedup:.2f}x over EdgeSimulator (results identical)"
    )

    # Scale tier: regions sized so each hosts ~125 nodes; arrival rate
    # keeps the per-region radio at the same utilization as the defaults
    # (30 arrivals/s over 8 regions).
    for label, n_nodes in (("edgesim_fleet_10k", 10_000), ("edgesim_fleet_100k", 100_000)):
        n_regions = n_nodes // 125
        config = FleetConfig(
            n_nodes=n_nodes,
            n_regions=n_regions,
            duration_s=5.0 if quick else 20.0,
            arrival_rate_hz=30.0 * (n_regions / 8),
            churn_rate_hz=2.0,
            seed=0,
        )
        simulator = FleetSimulator.build(config)
        # One round per scale point: the run is seconds long and the
        # extras (events/sec, RSS) matter more than timing variance.
        scale_rounds = 1
        mean_s, std_s, fleet_run = _timed(simulator.run_fleet, scale_rounds)
        rss_mib = peak_rss_mib()
        record(
            results,
            label,
            mean_s,
            scale_rounds,
            std_s=std_s,
            commit=commit,
            extra={
                "nodes": n_nodes,
                "events": fleet_run.events,
                "events_per_sec": round(fleet_run.events / max(mean_s, 1e-9), 1),
                "completed": fleet_run.completed,
                "peak_rss_mib": round(rss_mib, 1),
            },
        )
        notes.append(
            f"{label}: {fleet_run.events / max(mean_s, 1e-9):,.0f} events/s "
            f"({fleet_run.completed} tasks, peak RSS {rss_mib:.0f} MiB)"
        )


def _bench_fleet_sharded(results, rounds, commit, quick, notes) -> None:
    """Region-sharded multiprocess fleet runs, up to the 1M-node regime.

    Before anything is recorded, the ``shards=1 == shards=N`` contract is
    asserted on a small config with worker processes forced, so the
    digest equality covers the real multiprocess path even on machines
    where the pool would otherwise decline to fan out. The scale entries
    then run the sharded engine at 100k and 1M nodes (same region/arrival
    scaling rule as ``_bench_fleet``) and record events/sec, peak RSS
    (MiB), shard/group counts and barrier crossings as extras. On >= 4
    cores the 100k entry also times the single-process ``shards=1`` run
    and asserts the sharded engine clears 2x its events/s.
    """
    import os

    from repro.edgesim.fleet import FleetConfig
    from repro.edgesim.shard import result_digest, run_fleet_sharded

    cpus = os.cpu_count() or 1
    shards = max(2, min(cpus, 8))

    identity = FleetConfig(
        n_nodes=20_000,
        n_regions=160,
        duration_s=3.0,
        arrival_rate_hz=30.0 * (160 / 8),
        churn_rate_hz=2.0,
        seed=0,
    )
    single = run_fleet_sharded(identity, shards=1)
    multi = run_fleet_sharded(identity, shards=shards, force=True)
    digest = result_digest(single.result)
    if result_digest(multi.result) != digest:
        raise AssertionError("sharded fleet run diverged from shards=1")
    notes.append(
        f"sharded fleet identity: shards=1 == shards={multi.shards} "
        f"(digest {digest})"
    )

    scale_rounds = 1
    for label, n_nodes, duration in (
        ("edgesim_fleet_sharded_100k", 100_000, 5.0 if quick else 20.0),
        ("edgesim_fleet_sharded_1m", 1_000_000, 2.0 if quick else 10.0),
    ):
        n_regions = n_nodes // 125
        config = FleetConfig(
            n_nodes=n_nodes,
            n_regions=n_regions,
            duration_s=duration,
            arrival_rate_hz=30.0 * (n_regions / 8),
            churn_rate_hz=2.0,
            seed=0,
        )
        mean_s, std_s, run = _timed(
            lambda config=config: run_fleet_sharded(config, shards=shards),
            scale_rounds,
        )
        events_per_sec = run.result.events / max(mean_s, 1e-9)
        rss_mib = peak_rss_mib()
        extra = {
            "nodes": n_nodes,
            "events": run.result.events,
            "events_per_sec": round(events_per_sec, 1),
            "completed": run.result.completed,
            "shards": run.shards,
            "groups": run.groups,
            "barrier_crossings": run.barrier_crossings,
            "peak_rss_mib": round(rss_mib, 1),
        }
        if label == "edgesim_fleet_sharded_100k" and cpus >= 4 and run.shards > 1:
            serial_s, _, serial_run = _timed(
                lambda: run_fleet_sharded(config, shards=1), scale_rounds
            )
            serial_eps = serial_run.result.events / max(serial_s, 1e-9)
            speedup = events_per_sec / max(serial_eps, 1e-9)
            extra["speedup_vs_1shard"] = round(speedup, 2)
            if speedup < 2.0:
                raise AssertionError(
                    f"sharded fleet at {run.shards} shards only reached "
                    f"{speedup:.2f}x over shards=1 on {cpus} cores (< 2x)"
                )
            notes.append(
                f"sharded fleet 100k: {speedup:.2f}x events/s over shards=1 "
                f"at {run.shards} shards"
            )
        record(
            results, label, mean_s, scale_rounds, std_s=std_s, commit=commit,
            extra=extra,
        )
        notes.append(
            f"{label}: {events_per_sec:,.0f} events/s at {run.shards} shard(s) "
            f"x {run.groups} groups ({run.result.completed} tasks, "
            f"peak RSS {rss_mib:.0f} MiB)"
        )


def _bench_plan_cache(results, rounds, commit, quick, notes, registry) -> None:
    """Cold vs warm cache planning over near-identical repeat queries.

    All three variants are timed over ``rounds`` rounds so the recorded
    entries carry a real ``std_s`` for the regression gate's noise
    allowance (they used to be single samples). Cold rounds each build a
    fresh :class:`AllocationCache` so every timed pass really is cold;
    warm rounds run against a cache primed by one untimed pass.
    Rollout counts are averaged per round.
    """
    scenario = _train_scenario(quick)
    nodes, _ = scaled_testbed(6)
    allocators = build_allocators(
        scenario, nodes, crl_episodes=10 if quick else 40, crl_clusters=3, seed=0
    )
    crl = allocators["CRL"]
    epoch = scenario.eval_epochs[0]
    workload = scenario.workload_for(epoch)
    # Repeat queries with sub-quantization jitter: the drift regime where
    # consecutive epochs quantize to the same environment.
    jitter_rng = np.random.default_rng(0)
    contexts = [
        EpochContext(
            sensing=epoch.sensing + jitter_rng.normal(0.0, 1e-9, size=epoch.sensing.shape),
            features=epoch.features,
            day=epoch.day,
        )
        for _ in range(10)
    ]

    def plan_all():
        return [crl.plan(workload, nodes, context) for context in contexts]

    def rollouts() -> float:
        return _family_total(registry, "repro_rl_crl_rollouts_total")

    before = rollouts()
    uncached_s, uncached_std, uncached_plans = _timed(plan_all, rounds)
    uncached_rollouts = (rollouts() - before) / rounds
    record(
        results, "plan_10x_uncached", uncached_s, rounds, std_s=uncached_std, commit=commit
    )

    def cold_pass():
        with use_allocation_cache(AllocationCache()):
            return plan_all()

    before = rollouts()
    cold_s, cold_std, cold_plans = _timed(cold_pass, rounds)
    cold_rollouts = (rollouts() - before) / rounds
    record(results, "plan_10x_cold_cache", cold_s, rounds, std_s=cold_std, commit=commit)

    cache = AllocationCache()
    with use_allocation_cache(cache):
        plan_all()  # prime once, untimed, so every timed pass is warm
        before = rollouts()
        warm_s, warm_std, warm_plans = _timed(plan_all, rounds)
        warm_rollouts = (rollouts() - before) / rounds
    record(results, "plan_10x_warm_cache", warm_s, rounds, std_s=warm_std, commit=commit)

    identical = all(
        a.assignments == b.assignments == c.assignments
        for a, b, c in zip(uncached_plans, cold_plans, warm_plans)
    )
    reduction = uncached_rollouts / max(cold_rollouts, 1.0)
    notes.append(
        f"cache: {int(uncached_rollouts)} rollouts/10 plans uncached vs "
        f"{int(cold_rollouts)} cold + {int(warm_rollouts)} warm "
        f"(hit ratio {cache.hit_ratio:.2f}); allocations byte-identical: {identical}"
    )
    if not identical:
        raise AssertionError("cached allocations diverged from uncached run")
    notes.append(
        f"cached-plan solver-invocation reduction: {reduction:.1f}x fewer rollouts"
    )


def _serve_extras(summary: dict) -> dict:
    """KPI extras merged into a serve bench entry (ms for readability)."""
    return {
        "throughput_rps": round(float(summary.get("throughput_rps", 0.0)), 1),
        "latency_p50_ms": round(float(summary.get("latency_p50_s", 0.0)) * 1e3, 4),
        "latency_p95_ms": round(float(summary.get("latency_p95_s", 0.0)) * 1e3, 4),
        "latency_p99_ms": round(float(summary.get("latency_p99_s", 0.0)) * 1e3, 4),
        "requests": int(summary.get("requests", 0)),
        "rejected": int(summary.get("rejected", 0)),
        "max_queue_depth": int(summary.get("max_queue_depth", 0)),
    }


def _bench_serve(results, rounds, commit, quick, jobs, notes) -> None:
    """Allocation-as-a-service benches: replay capacity, paced load, shedding.

    - ``serve_replay_cold`` / ``serve_replay_warm`` — unpaced trace drains
      (fresh vs primed :class:`~repro.tatim.cache.AllocationCache`); their
      ``mean_s`` is the gated service-capacity number, with throughput and
      latency percentiles recorded as informational extras.
    - ``serve_sustained_load_warm`` — wall-clock paced open-loop run at the
      offered rate; ``mean_s`` pins to the trace duration by construction,
      so the KPIs in the extras (p50/p95/p99, throughput, rejections) are
      the payload.
    - ``serve_saturation_shed`` — a deliberately slow solver against a tiny
      bounded queue; validates shed-don't-drown (nonzero rejections, queue
      depth capped) under overload.

    A ``jobs=1`` vs ``jobs=N`` replay identity check guards the
    dispatcher's determinism contract before anything is recorded.
    """
    import dataclasses
    import time as _time

    from repro.serve import Dispatcher, ServeConfig, generate_trace
    from repro.serve import dispatcher as dispatcher_module

    config = ServeConfig(
        arrival_rate_hz=2000.0,
        duration_s=1.0 if quick else 3.0,
        queue_depth=512,
        batch_max=64,
        jobs=jobs,
        seed=0,
    )
    geometry, requests = generate_trace(config)

    if jobs > 1:
        with Dispatcher(geometry, config) as parallel_dispatcher:
            parallel_ids = parallel_dispatcher.replay(requests).identities()
        with Dispatcher(geometry, dataclasses.replace(config, jobs=1)) as serial_dispatcher:
            serial_ids = serial_dispatcher.replay(requests).identities()
        if parallel_ids != serial_ids:
            raise AssertionError("dispatcher at jobs=N diverged from jobs=1")
        notes.append(
            f"dispatcher determinism: jobs=1 == jobs={jobs} over "
            f"{len(requests)} requests"
        )

    def replay_cold():
        with Dispatcher(geometry, config) as dispatcher:
            return dispatcher.replay(requests)

    mean_s, std_s, report = _timed(replay_cold, rounds)
    record(
        results, "serve_replay_cold", mean_s, rounds, std_s=std_s, commit=commit,
        extra=_serve_extras(report.summary),
    )

    with Dispatcher(geometry, config) as dispatcher:
        dispatcher.replay(requests)  # prime the cache, untimed
        mean_s, std_s, report = _timed(lambda: dispatcher.replay(requests), rounds)
        record(
            results, "serve_replay_warm", mean_s, rounds, std_s=std_s, commit=commit,
            extra=_serve_extras(report.summary),
        )
        mean_s, std_s, report = _timed(lambda: dispatcher.run(requests), rounds)
        record(
            results,
            "serve_sustained_load_warm",
            mean_s,
            rounds,
            std_s=std_s,
            commit=commit,
            extra=_serve_extras(report.summary),
        )
        notes.append(
            f"sustained load: {report.throughput_rps:.0f} req/s served at "
            f"{config.arrival_rate_hz:.0f}/s offered, "
            f"p99 {report.summary.get('latency_p99_s', 0.0) * 1e3:.2f} ms, "
            f"{report.rejected} rejected"
        )

    # Saturation: a solver slow enough that the offered rate is far beyond
    # capacity, a queue too small to absorb it, and no cache to hide behind.
    # jobs=1 keeps the registered solver visible (the registry is extended
    # in this process only; persistent workers have their own copy).
    slow_s = 0.005

    def bench_slow_solver(problem):
        _time.sleep(slow_s)
        return dispatcher_module.SOLVERS["density_greedy"](problem)

    saturation_config = ServeConfig(
        arrival_rate_hz=2000.0,
        duration_s=0.5 if quick else 1.0,
        queue_depth=16,
        batch_max=8,
        jobs=1,
        solver="bench_slow",
        cache=False,
        drift_sigma=1e-6,
        seed=1,
    )
    dispatcher_module.SOLVERS["bench_slow"] = bench_slow_solver
    try:
        sat_geometry, sat_requests = generate_trace(saturation_config)
        with Dispatcher(sat_geometry, saturation_config) as dispatcher:
            mean_s, std_s, report = _timed(lambda: dispatcher.run(sat_requests), rounds)
    finally:
        del dispatcher_module.SOLVERS["bench_slow"]
    if report.rejected == 0:
        raise AssertionError("saturation bench shed nothing; overload not reached")
    max_depth = int(report.summary.get("max_queue_depth", 0))
    if max_depth > saturation_config.queue_depth:
        raise AssertionError(
            f"queue depth {max_depth} exceeded bound {saturation_config.queue_depth}"
        )
    record(
        results,
        "serve_saturation_shed",
        mean_s,
        rounds,
        std_s=std_s,
        commit=commit,
        extra=_serve_extras(report.summary),
    )
    notes.append(
        f"saturation: {report.rejected}/{len(sat_requests)} shed, "
        f"max queue depth {max_depth} (bound {saturation_config.queue_depth})"
    )
