"""Capacity planning: invert the processing-time experiments.

Figures 9-11 answer "what PT does a given testbed deliver?"; a deployment
engineer asks the inverse: "how many devices / how much bandwidth do I
need to hit a PT target?" These helpers answer by sweeping or bisecting
the simulator with any allocator (defaults to the oracle, giving the
*capability* of the hardware; pass a trained DCTA for the achievable
figure).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext
from repro.allocation.oracle import OracleAllocator
from repro.core.scenario import SyntheticScenario
from repro.edgesim.fleet import FleetSimulator
from repro.edgesim.testbed import scaled_testbed
from repro.errors import ConfigurationError, DataError


def _mean_pt(
    scenario: SyntheticScenario,
    allocator: Allocator,
    n_processors: int,
    bandwidth_mbps: float,
    quality_threshold: float,
) -> float:
    nodes, network = scaled_testbed(n_processors, bandwidth_mbps=bandwidth_mbps)
    simulator = FleetSimulator(nodes, network, quality_threshold=quality_threshold)
    times = []
    for epoch in scenario.eval_epochs:
        workload = scenario.workload_for(epoch)
        context = EpochContext(sensing=epoch.sensing, features=epoch.features)
        plan = allocator.plan(workload, nodes, context)
        times.append(simulator.run(workload, plan).processing_time)
    return float(np.mean(times))


def processors_needed(
    scenario: SyntheticScenario,
    target_pt_s: float,
    *,
    allocator: Allocator | None = None,
    bandwidth_mbps: float = 50.0,
    quality_threshold: float = 0.9,
    max_processors: int = 10,
) -> int | None:
    """Smallest device count meeting the PT target, or None if unreachable.

    PT is not strictly monotone in device count (placement effects), so the
    scan checks every size rather than bisecting.
    """
    if target_pt_s <= 0:
        raise ConfigurationError(f"target_pt_s must be > 0, got {target_pt_s}")
    if not 1 <= max_processors <= 10:
        raise ConfigurationError(f"max_processors must be in [1, 10], got {max_processors}")
    policy = allocator if allocator is not None else OracleAllocator()
    for count in range(1, max_processors + 1):
        if _mean_pt(scenario, policy, count, bandwidth_mbps, quality_threshold) <= target_pt_s:
            return count
    return None


def bandwidth_needed(
    scenario: SyntheticScenario,
    target_pt_s: float,
    *,
    allocator: Allocator | None = None,
    n_processors: int = 10,
    quality_threshold: float = 0.9,
    low_mbps: float = 1.0,
    high_mbps: float = 1000.0,
    tolerance_mbps: float = 1.0,
) -> float | None:
    """Minimum bandwidth meeting the PT target, by bisection.

    PT is monotone non-increasing in bandwidth (transfers only get
    faster), so bisection is sound. Returns None when even ``high_mbps``
    misses the target (compute-bound regime).
    """
    if target_pt_s <= 0:
        raise ConfigurationError(f"target_pt_s must be > 0, got {target_pt_s}")
    if not 0 < low_mbps < high_mbps:
        raise ConfigurationError("need 0 < low_mbps < high_mbps")
    if tolerance_mbps <= 0:
        raise ConfigurationError(f"tolerance_mbps must be > 0, got {tolerance_mbps}")
    policy = allocator if allocator is not None else OracleAllocator()

    def meets(bandwidth: float) -> bool:
        return (
            _mean_pt(scenario, policy, n_processors, bandwidth, quality_threshold)
            <= target_pt_s
        )

    if not meets(high_mbps):
        return None
    if meets(low_mbps):
        return float(low_mbps)
    low, high = low_mbps, high_mbps
    while high - low > tolerance_mbps:
        mid = (low + high) / 2.0
        if meets(mid):
            high = mid
        else:
            low = mid
    return float(high)


def capacity_table(
    scenario: SyntheticScenario,
    targets_s: Sequence[float],
    *,
    allocator: Allocator | None = None,
) -> list[tuple[float, int | None, float | None]]:
    """(target PT, processors needed at 50 Mbps, bandwidth needed at 10 devices)."""
    if not targets_s:
        raise DataError("targets_s must not be empty")
    rows = []
    for target in targets_s:
        rows.append(
            (
                float(target),
                processors_needed(scenario, target, allocator=allocator),
                bandwidth_needed(scenario, target, allocator=allocator),
            )
        )
    return rows
