"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model was used for prediction before being fitted."""


class DataError(ReproError):
    """Input data is malformed (wrong shape, empty, NaNs where forbidden)."""


class InfeasibleProblemError(ReproError):
    """A TATIM / knapsack instance admits no feasible solution."""


class InfeasibleAllocationError(ReproError):
    """A proposed allocation violates the TATIM constraints (Eqs. 2-4)."""


class SimulationError(ReproError):
    """The edge discrete-event simulation reached an inconsistent state."""


class TrainingError(ReproError):
    """A learning procedure failed to make progress (diverged, empty data)."""
