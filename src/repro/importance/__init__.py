"""Task importance (Definition 1) and its distributional analyses."""

from repro.importance.importance import (
    ImportanceEvaluator,
    importance_profile,
)
from repro.importance.longtail import LongTailStats, long_tail_stats
from repro.importance.dynamics import ImportanceDynamics, importance_dynamics
from repro.importance.shapley import ShapleyImportanceEvaluator, compare_importance_metrics

__all__ = [
    "ShapleyImportanceEvaluator",
    "compare_importance_metrics",
    "ImportanceEvaluator",
    "importance_profile",
    "LongTailStats",
    "long_tail_stats",
    "ImportanceDynamics",
    "importance_dynamics",
]
