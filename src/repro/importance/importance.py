"""Leave-one-out task importance — the paper's Definition 1.

    I_j = H(J; θ) − H(J \\ {j}; θ \\ {θ_j})

Importance is evaluated per decision epoch (day): the decision function is
scored with the full task set and again with task j excluded (its COP
predictions fall back to the nameplate estimate). Since H averages
per-building scores and a task only informs its own building's sequencing,
dropping task j can only change that building's term; the evaluator exploits
this to avoid recomputing unaffected buildings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.building.dataset import BuildingOperationDataset
from repro.errors import ConfigurationError, DataError
from repro.parallel import (
    ParallelTrainer,
    get_shared_store,
    get_worker_pool,
    resolve_shared,
)
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.task import TaskModelSet

#: Rough serial cost of one leave-one-out day evaluation (reference bench
#: machine); feeds the pool's work-vs-overhead fan-out decision.
EST_LOO_S_PER_DAY = 0.05


@dataclass(frozen=True)
class _DayShard:
    """Picklable payload: evaluate a contiguous chunk of days in a worker.

    ``dataset``/``model_set`` are usually
    :class:`~repro.parallel.shm.SharedBlobRef` handles — the pipeline
    objects are pickled once into shared memory, not once per shard.
    """

    dataset: object
    model_set: object
    days: tuple[int, ...]
    clip_negative: bool


def _evaluate_day_shard(shard: _DayShard) -> list[np.ndarray]:
    """Leave-one-out importance for each day in the shard (worker fn)."""
    evaluator = ImportanceEvaluator(
        resolve_shared(shard.dataset),
        resolve_shared(shard.model_set),
        clip_negative=shard.clip_negative,
    )
    return [evaluator.importance_for_day(int(day)) for day in shard.days]


class ImportanceEvaluator:
    """Computes per-task importance for one or many decision epochs.

    Parameters
    ----------
    dataset:
        Generated building dataset.
    model_set:
        The fitted θ over the full task set J.
    clip_negative:
        The raw difference can be slightly negative when a noisy task
        actively hurts decisions; the paper treats importance as a
        non-negative profit (knapsack item value), so negatives are clipped
        to zero by default. Pass ``False`` to study negative transfer.
    jobs:
        Worker processes for :meth:`importance_matrix`: days are
        independent, so they shard across the persistent pool (the
        dataset/model set travel via shared memory). Any ``jobs`` value
        produces a byte-identical matrix — each day's vector is computed
        identically and reassembled in day order.
    """

    def __init__(
        self,
        dataset: BuildingOperationDataset,
        model_set: TaskModelSet,
        *,
        clip_negative: bool = True,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.dataset = dataset
        self.model_set = model_set
        self.clip_negative = bool(clip_negative)
        self.jobs = int(jobs)
        self._full_model = MTLDecisionModel(dataset, model_set)

    # ------------------------------------------------------------------
    def _building_scores(self, day: int, model: MTLDecisionModel) -> np.ndarray:
        scores = []
        for building_id in range(len(self.dataset.plants)):
            scenarios = self.dataset.scenarios_for_day(building_id, day)
            if not scenarios:
                raise DataError(f"no scenarios for building {building_id} on day {day}")
            scores.append(model.building_performance(building_id, scenarios))
        return np.asarray(scores)

    def importance_for_day(self, day: int) -> np.ndarray:
        """I_j for every task id in ``model_set.task_ids``, for one day."""
        full_scores = self._building_scores(day, self._full_model)
        n_buildings = full_scores.size
        importances = np.zeros(len(self.model_set))
        for position, task_id in enumerate(self.model_set.task_ids):
            task = self.model_set.get(task_id)
            building = task.data.building_id
            reduced = self._full_model.with_model_set(self.model_set.without(task_id))
            scenarios = self.dataset.scenarios_for_day(building, day)
            reduced_score = reduced.building_performance(building, scenarios)
            # Only the task's own building term changes in the H average.
            delta = (full_scores[building] - reduced_score) / n_buildings
            importances[position] = max(delta, 0.0) if self.clip_negative else delta
        return importances

    def importance_matrix(self, days, *, jobs: int | None = None) -> np.ndarray:
        """(n_days, n_tasks) importance — task importance over operations.

        With ``jobs > 1`` the days shard across worker processes; each
        shard recomputes its days exactly as the serial loop would, and
        rows are reassembled in day order, so the matrix is byte-identical
        for every ``jobs`` value.
        """
        days = np.asarray(days, dtype=int).ravel()
        if days.size == 0:
            raise DataError("days must not be empty")
        jobs = self.jobs if jobs is None else int(jobs)
        # Pre-check with the pool so degraded runs (single core, small
        # work) skip the shard/share machinery entirely.
        estimated_s = EST_LOO_S_PER_DAY * days.size
        if jobs > 1 and days.size > 1:
            jobs = get_worker_pool().effective_jobs(
                jobs, int(days.size), estimated_cost_s=estimated_s
            )
        if jobs > 1 and days.size > 1:
            shared = get_shared_store()
            dataset_ref = shared.share(f"loo.dataset:{id(self.dataset)}", self.dataset)
            model_ref = shared.share(f"loo.model_set:{id(self.model_set)}", self.model_set)
            shards = [
                _DayShard(
                    dataset=dataset_ref,
                    model_set=model_ref,
                    days=tuple(int(day) for day in chunk),
                    clip_negative=self.clip_negative,
                )
                for chunk in np.array_split(days, min(jobs, days.size))
                if chunk.size
            ]
            trainer = ParallelTrainer(
                _evaluate_day_shard,
                jobs=jobs,
                label="importance.loo",
                estimated_cost_s=estimated_s,
            )
            rows: list[np.ndarray] = []
            for shard_rows in trainer.map(shards):
                rows.extend(shard_rows)
            return np.vstack(rows)
        return np.vstack([self.importance_for_day(int(day)) for day in days])


def importance_profile(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    days,
    *,
    clip_negative: bool = True,
    jobs: int = 1,
) -> np.ndarray:
    """Mean per-task importance over a set of days (the Fig. 2 profile)."""
    evaluator = ImportanceEvaluator(
        dataset, model_set, clip_negative=clip_negative, jobs=jobs
    )
    return evaluator.importance_matrix(days).mean(axis=0)
