"""Leave-one-out task importance — the paper's Definition 1.

    I_j = H(J; θ) − H(J \\ {j}; θ \\ {θ_j})

Importance is evaluated per decision epoch (day): the decision function is
scored with the full task set and again with task j excluded (its COP
predictions fall back to the nameplate estimate). Since H averages
per-building scores and a task only informs its own building's sequencing,
dropping task j can only change that building's term; the evaluator exploits
this to avoid recomputing unaffected buildings.
"""

from __future__ import annotations

import numpy as np

from repro.building.dataset import BuildingOperationDataset
from repro.errors import DataError
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.task import TaskModelSet


class ImportanceEvaluator:
    """Computes per-task importance for one or many decision epochs.

    Parameters
    ----------
    dataset:
        Generated building dataset.
    model_set:
        The fitted θ over the full task set J.
    clip_negative:
        The raw difference can be slightly negative when a noisy task
        actively hurts decisions; the paper treats importance as a
        non-negative profit (knapsack item value), so negatives are clipped
        to zero by default. Pass ``False`` to study negative transfer.
    """

    def __init__(
        self,
        dataset: BuildingOperationDataset,
        model_set: TaskModelSet,
        *,
        clip_negative: bool = True,
    ) -> None:
        self.dataset = dataset
        self.model_set = model_set
        self.clip_negative = bool(clip_negative)
        self._full_model = MTLDecisionModel(dataset, model_set)

    # ------------------------------------------------------------------
    def _building_scores(self, day: int, model: MTLDecisionModel) -> np.ndarray:
        scores = []
        for building_id in range(len(self.dataset.plants)):
            scenarios = self.dataset.scenarios_for_day(building_id, day)
            if not scenarios:
                raise DataError(f"no scenarios for building {building_id} on day {day}")
            scores.append(model.building_performance(building_id, scenarios))
        return np.asarray(scores)

    def importance_for_day(self, day: int) -> np.ndarray:
        """I_j for every task id in ``model_set.task_ids``, for one day."""
        full_scores = self._building_scores(day, self._full_model)
        n_buildings = full_scores.size
        importances = np.zeros(len(self.model_set))
        for position, task_id in enumerate(self.model_set.task_ids):
            task = self.model_set.get(task_id)
            building = task.data.building_id
            reduced = self._full_model.with_model_set(self.model_set.without(task_id))
            scenarios = self.dataset.scenarios_for_day(building, day)
            reduced_score = reduced.building_performance(building, scenarios)
            # Only the task's own building term changes in the H average.
            delta = (full_scores[building] - reduced_score) / n_buildings
            importances[position] = max(delta, 0.0) if self.clip_negative else delta
        return importances

    def importance_matrix(self, days) -> np.ndarray:
        """(n_days, n_tasks) importance — task importance over operations."""
        days = np.asarray(days, dtype=int).ravel()
        if days.size == 0:
            raise DataError("days must not be empty")
        return np.vstack([self.importance_for_day(int(day)) for day in days])


def importance_profile(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    days,
    *,
    clip_negative: bool = True,
) -> np.ndarray:
    """Mean per-task importance over a set of days (the Fig. 2 profile)."""
    evaluator = ImportanceEvaluator(dataset, model_set, clip_negative=clip_negative)
    return evaluator.importance_matrix(days).mean(axis=0)
