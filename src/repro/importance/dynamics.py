"""Importance dynamics over machines and operations (Observation 3, Figs. 4-5).

The paper plots, per machine (chiller) and operation (load band), the mean
and the variance of task importance across time, observing that machines
operate in a small portion of operations and that importance fluctuates
markedly even within one operation. Given an importance matrix
(days × tasks), this module reduces it to those per-(machine, operation)
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.transfer.task import TaskModelSet


@dataclass(frozen=True)
class ImportanceDynamics:
    """Per-(machine, operation) importance statistics.

    ``mean`` and ``variance`` are (n_machines, n_operations) arrays indexed
    by position in ``machine_ids`` / ``operation_ids``; cells for
    (machine, operation) pairs with no task are NaN.
    """

    machine_ids: tuple[int, ...]
    operation_ids: tuple[int, ...]
    mean: np.ndarray
    variance: np.ndarray

    def machine_row(self, chiller_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(means, variances) across operations for one machine."""
        try:
            row = self.machine_ids.index(chiller_id)
        except ValueError:
            raise DataError(f"chiller {chiller_id} has no tasks") from None
        return self.mean[row], self.variance[row]

    def temporal_fluctuation(self) -> float:
        """Mean coefficient of variation across populated cells.

        A single scalar capturing Observation 3: large values mean
        importance cannot be treated as static.
        """
        populated = ~np.isnan(self.mean)
        means = self.mean[populated]
        stds = np.sqrt(self.variance[populated])
        nonzero = means > 1e-12
        if not np.any(nonzero):
            return 0.0
        return float(np.mean(stds[nonzero] / means[nonzero]))


def importance_dynamics(
    model_set: TaskModelSet, importance_matrix: np.ndarray
) -> ImportanceDynamics:
    """Reduce a (days × tasks) importance matrix to Fig. 4/5 statistics."""
    matrix = np.asarray(importance_matrix, dtype=float)
    if matrix.ndim != 2:
        raise DataError(f"importance_matrix must be 2-D, got shape {matrix.shape}")
    task_ids = model_set.task_ids
    if matrix.shape[1] != len(task_ids):
        raise DataError(
            f"importance_matrix has {matrix.shape[1]} columns but the model set "
            f"has {len(task_ids)} tasks"
        )
    machines = sorted({model_set.get(i).data.chiller_id for i in task_ids})
    operations = sorted({model_set.get(i).data.band_index for i in task_ids})
    mean = np.full((len(machines), len(operations)), np.nan)
    variance = np.full((len(machines), len(operations)), np.nan)
    machine_index = {m: i for i, m in enumerate(machines)}
    operation_index = {o: i for i, o in enumerate(operations)}
    for column, task_id in enumerate(task_ids):
        data = model_set.get(task_id).data
        row = machine_index[data.chiller_id]
        col = operation_index[data.band_index]
        series = matrix[:, column]
        mean[row, col] = float(series.mean())
        variance[row, col] = float(series.var())
    return ImportanceDynamics(
        machine_ids=tuple(machines),
        operation_ids=tuple(operations),
        mean=mean,
        variance=variance,
    )
