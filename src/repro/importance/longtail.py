"""Long-tail analysis of task importance (Observation 1, Fig. 2).

The paper reports that "merely 12.72% of tasks have a high contribution of
over 80% to the final operation decision performance". This module computes
the statistics needed to verify the same shape on the synthetic dataset:
the cumulative contribution curve, the smallest task fraction reaching a
target share, and the Gini coefficient of the importance distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import contribution_curve, gini_coefficient, top_share


@dataclass(frozen=True)
class LongTailStats:
    """Summary of an importance distribution's concentration.

    Attributes
    ----------
    n_tasks:
        Number of tasks.
    curve:
        Cumulative contribution by rank (descending importance).
    fraction_for_80pct:
        Smallest fraction of tasks whose summed importance reaches 80% of
        the total (the paper's ~12.72%).
    share_of_top_12_72pct:
        Contribution of the top 12.72% of tasks (the converse statistic).
    gini:
        Gini coefficient of the importance values.
    """

    n_tasks: int
    curve: np.ndarray
    fraction_for_80pct: float
    share_of_top_12_72pct: float
    gini: float

    def is_long_tailed(self, *, fraction_threshold: float = 0.5) -> bool:
        """True when under ``fraction_threshold`` of tasks carry 80% of the mass."""
        return self.fraction_for_80pct < fraction_threshold


def fraction_for_share(values, share: float) -> float:
    """Smallest fraction of items whose cumulative contribution >= ``share``."""
    if not 0.0 < share <= 1.0:
        raise ValueError(f"share must be in (0, 1], got {share}")
    curve = contribution_curve(values)
    reached = np.flatnonzero(curve >= share - 1e-12)
    if reached.size == 0:
        return 1.0
    return float((reached[0] + 1) / curve.size)


def long_tail_stats(importances) -> LongTailStats:
    """Compute the full long-tail summary for an importance vector."""
    values = np.asarray(importances, dtype=float).ravel()
    return LongTailStats(
        n_tasks=int(values.size),
        curve=contribution_curve(values),
        fraction_for_80pct=fraction_for_share(values, 0.80),
        share_of_top_12_72pct=top_share(values, 0.1272) if values.size >= 8 else float("nan"),
        gini=gini_coefficient(values),
    )
