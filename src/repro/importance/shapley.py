"""Shapley-value task importance — a principled extension of Definition 1.

The paper's importance is the leave-one-out marginal against the *full*
task set. When tasks overlap (two tasks covering adjacent PLR bands of the
same chiller partially substitute for each other), leave-one-out can
under-credit both. The Shapley value averages a task's marginal
contribution over random coalitions, splitting shared credit fairly; it is
the metric Taskonomy-style task-transfer analyses converge on.

Exact Shapley needs 2^N evaluations; :class:`ShapleyImportanceEvaluator`
uses permutation sampling (Castro et al. 2009): draw random orderings,
walk each ordering accumulating tasks, and credit each task with the
performance delta it causes on arrival. Unbiased, with variance shrinking
as 1/sqrt(n_permutations).

Permutations are independent given their orderings, so with ``jobs > 1``
they shard across the persistent worker pool: all orderings are drawn up
front in the parent (one rng, fixed order — the
:func:`~repro.utils.rng.derive_seeds` discipline), each shard walks its
orderings with a local coalition-value cache, and the parent reassembles
per-permutation marginal rows in draw order before reducing. Coalition
values are deterministic, and the reduction order is fixed, so ``jobs=1``
and ``jobs=N`` produce byte-identical importance vectors. A
cross-permutation (and cross-call, per day) coalition-value cache removes
the repeated H evaluations that make the estimator expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.building.dataset import BuildingOperationDataset
from repro.errors import ConfigurationError, DataError
from repro.parallel import (
    ParallelTrainer,
    get_shared_store,
    get_worker_pool,
    resolve_shared,
)
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.task import TaskModelSet
from repro.utils.rng import as_rng

#: Rough serial cost of one sampled permutation (n_tasks coalition
#: evaluations); feeds the pool's work-vs-overhead fan-out decision.
EST_SHAPLEY_S_PER_PERMUTATION = 0.1


def _coalition_value(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    task_ids: list[int],
    day: int,
    cache: dict,
) -> float:
    """H of the coalition (empty coalition = all-nameplate sequencing)."""
    key = frozenset(task_ids)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if task_ids:
        restricted = model_set.restricted_to(task_ids)
        # Include unfitted placeholders for the remaining tasks so the
        # lookup falls back to nameplate for them.
        value = MTLDecisionModel(dataset, restricted).overall_performance(day)
    else:
        from repro.transfer.task import LearningTask

        bare = TaskModelSet([LearningTask(data=t.data, model=None) for t in model_set])
        value = MTLDecisionModel(dataset, bare).overall_performance(day)
    cache[key] = value
    return value


def _permutation_marginals(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    orders: list[np.ndarray],
    day: int,
    cache: dict,
) -> np.ndarray:
    """(len(orders), n_tasks) marginal-contribution rows, one per ordering."""
    task_ids = model_set.task_ids
    rows = np.zeros((len(orders), len(task_ids)))
    for row, order in enumerate(orders):
        coalition: list[int] = []
        previous = _coalition_value(dataset, model_set, coalition, day, cache)
        for position in order:
            coalition = coalition + [task_ids[position]]
            current = _coalition_value(dataset, model_set, coalition, day, cache)
            rows[row, position] = current - previous
            previous = current
    return rows


@dataclass(frozen=True)
class _PermutationShard:
    """Picklable payload: walk a chunk of sampled orderings in a worker.

    ``dataset``/``model_set`` are usually
    :class:`~repro.parallel.shm.SharedBlobRef` handles (pickled once into
    shared memory); ``orders`` are the parent-drawn orderings, so workers
    perform no random draws at all.
    """

    dataset: object
    model_set: object
    day: int
    orders: tuple[tuple[int, ...], ...]


def _evaluate_permutation_shard(shard: _PermutationShard) -> np.ndarray:
    """Marginal rows for the shard's orderings (worker fn, local cache)."""
    return _permutation_marginals(
        resolve_shared(shard.dataset),
        resolve_shared(shard.model_set),
        [np.asarray(order, dtype=int) for order in shard.orders],
        shard.day,
        {},
    )


class ShapleyImportanceEvaluator:
    """Permutation-sampled Shapley importance over the decision function.

    Parameters
    ----------
    dataset, model_set:
        The generated pipeline objects (as for
        :class:`~repro.importance.importance.ImportanceEvaluator`).
    n_permutations:
        Sampled orderings; the estimator averages marginals over them.
    seed:
        Permutation sampling seed.
    jobs:
        Worker processes for :meth:`importance_for_day`. Orderings are
        drawn up front in the parent, so the rng stream — and the result,
        byte-for-byte — is independent of ``jobs``.
    """

    def __init__(
        self,
        dataset: BuildingOperationDataset,
        model_set: TaskModelSet,
        *,
        n_permutations: int = 8,
        seed=None,
        jobs: int = 1,
    ) -> None:
        if n_permutations < 1:
            raise ConfigurationError(f"n_permutations must be >= 1, got {n_permutations}")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.dataset = dataset
        self.model_set = model_set
        self.n_permutations = int(n_permutations)
        self.jobs = int(jobs)
        self._rng = as_rng(seed)
        #: Cross-permutation, cross-call coalition-value memo, per day.
        self._value_caches: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def _coalition_value(self, task_ids: list[int], day: int, cache: dict) -> float:
        """H of the coalition — kept public-ish for the efficiency-axiom tests."""
        return _coalition_value(self.dataset, self.model_set, list(task_ids), day, cache)

    def _cache_for(self, day: int) -> dict:
        if len(self._value_caches) > 64:  # bound cross-call growth
            self._value_caches.clear()
        return self._value_caches.setdefault(int(day), {})

    def importance_for_day(self, day: int, *, jobs: int | None = None) -> np.ndarray:
        """Shapley importance per task id (order of ``model_set.task_ids``)."""
        n_tasks = len(self.model_set.task_ids)
        orders = [self._rng.permutation(n_tasks) for _ in range(self.n_permutations)]
        jobs = self.jobs if jobs is None else int(jobs)
        # Ask the pool up front whether fan-out will actually happen: a
        # degraded run (single core, small work) must take the unified
        # serial path so permutations keep sharing one coalition cache —
        # shard-local caches would make a serialised "parallel" run slower.
        estimated_s = EST_SHAPLEY_S_PER_PERMUTATION * len(orders)
        if jobs > 1 and len(orders) > 1:
            jobs = get_worker_pool().effective_jobs(
                jobs, len(orders), estimated_cost_s=estimated_s
            )
        if jobs > 1 and len(orders) > 1:
            shared = get_shared_store()
            dataset_ref = shared.share(f"shapley.dataset:{id(self.dataset)}", self.dataset)
            model_ref = shared.share(
                f"shapley.model_set:{id(self.model_set)}", self.model_set
            )
            chunks = [
                chunk
                for chunk in np.array_split(np.arange(len(orders)), min(jobs, len(orders)))
                if chunk.size
            ]
            shards = [
                _PermutationShard(
                    dataset=dataset_ref,
                    model_set=model_ref,
                    day=int(day),
                    orders=tuple(
                        tuple(int(i) for i in orders[index]) for index in chunk
                    ),
                )
                for chunk in chunks
            ]
            trainer = ParallelTrainer(
                _evaluate_permutation_shard,
                jobs=jobs,
                label="importance.shapley",
                estimated_cost_s=estimated_s,
            )
            marginals = np.vstack(trainer.map(shards))
        else:
            marginals = _permutation_marginals(
                self.dataset, self.model_set, orders, int(day), self._cache_for(day)
            )
        return marginals.sum(axis=0) / self.n_permutations


def compare_importance_metrics(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    day: int,
    *,
    n_permutations: int = 6,
    seed=None,
    jobs: int = 1,
) -> dict[str, np.ndarray]:
    """Leave-one-out (Definition 1) vs Shapley importance for one day."""
    from repro.importance.importance import ImportanceEvaluator

    loo = ImportanceEvaluator(dataset, model_set).importance_for_day(day)
    shapley = ShapleyImportanceEvaluator(
        dataset, model_set, n_permutations=n_permutations, seed=seed, jobs=jobs
    ).importance_for_day(day)
    return {"leave_one_out": loo, "shapley": shapley}
