"""Shapley-value task importance — a principled extension of Definition 1.

The paper's importance is the leave-one-out marginal against the *full*
task set. When tasks overlap (two tasks covering adjacent PLR bands of the
same chiller partially substitute for each other), leave-one-out can
under-credit both. The Shapley value averages a task's marginal
contribution over random coalitions, splitting shared credit fairly; it is
the metric Taskonomy-style task-transfer analyses converge on.

Exact Shapley needs 2^N evaluations; :class:`ShapleyImportanceEvaluator`
uses permutation sampling (Castro et al. 2009): draw random orderings,
walk each ordering accumulating tasks, and credit each task with the
performance delta it causes on arrival. Unbiased, with variance shrinking
as 1/sqrt(n_permutations).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.building.dataset import BuildingOperationDataset
from repro.errors import ConfigurationError, DataError
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.task import TaskModelSet
from repro.utils.rng import as_rng


class ShapleyImportanceEvaluator:
    """Permutation-sampled Shapley importance over the decision function.

    Parameters
    ----------
    dataset, model_set:
        The generated pipeline objects (as for
        :class:`~repro.importance.importance.ImportanceEvaluator`).
    n_permutations:
        Sampled orderings; the estimator averages marginals over them.
    seed:
        Permutation sampling seed.
    """

    def __init__(
        self,
        dataset: BuildingOperationDataset,
        model_set: TaskModelSet,
        *,
        n_permutations: int = 8,
        seed=None,
    ) -> None:
        if n_permutations < 1:
            raise ConfigurationError(f"n_permutations must be >= 1, got {n_permutations}")
        self.dataset = dataset
        self.model_set = model_set
        self.n_permutations = int(n_permutations)
        self._rng = as_rng(seed)

    # ------------------------------------------------------------------
    def _coalition_value(self, task_ids: list[int], day: int, cache: dict) -> float:
        """H of the coalition (empty coalition = all-nameplate sequencing)."""
        key = frozenset(task_ids)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if task_ids:
            model_set = self.model_set.restricted_to(task_ids)
            # Include unfitted placeholders for the remaining tasks so the
            # lookup falls back to nameplate for them.
            value = MTLDecisionModel(self.dataset, model_set).overall_performance(day)
        else:
            from repro.transfer.task import LearningTask

            bare = TaskModelSet(
                [LearningTask(data=t.data, model=None) for t in self.model_set]
            )
            value = MTLDecisionModel(self.dataset, bare).overall_performance(day)
        cache[key] = value
        return value

    def importance_for_day(self, day: int) -> np.ndarray:
        """Shapley importance per task id (order of ``model_set.task_ids``)."""
        task_ids = self.model_set.task_ids
        totals = np.zeros(len(task_ids))
        cache: dict = {}
        for _ in range(self.n_permutations):
            order = self._rng.permutation(len(task_ids))
            coalition: list[int] = []
            previous = self._coalition_value(coalition, day, cache)
            for position in order:
                coalition = coalition + [task_ids[position]]
                current = self._coalition_value(coalition, day, cache)
                totals[position] += current - previous
                previous = current
        return totals / self.n_permutations


def compare_importance_metrics(
    dataset: BuildingOperationDataset,
    model_set: TaskModelSet,
    day: int,
    *,
    n_permutations: int = 6,
    seed=None,
) -> dict[str, np.ndarray]:
    """Leave-one-out (Definition 1) vs Shapley importance for one day."""
    from repro.importance.importance import ImportanceEvaluator

    loo = ImportanceEvaluator(dataset, model_set).importance_for_day(day)
    shapley = ShapleyImportanceEvaluator(
        dataset, model_set, n_permutations=n_permutations, seed=seed
    ).importance_for_day(day)
    return {"leave_one_out": loo, "shapley": shapley}
