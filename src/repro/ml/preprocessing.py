"""Feature preprocessing: scalers and categorical encoding."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.ml.base import BaseEstimator, as_2d
from repro.utils.validation import check_fitted


class StandardScaler(BaseEstimator):
    """Zero-mean unit-variance scaling per feature.

    Constant features get a unit scale so transforming them is a no-op
    (centered at zero) rather than a division by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        array = as_2d(X)
        self.mean_ = array.mean(axis=0)
        scale = array.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        array = as_2d(X)
        if array.shape[1] != self.mean_.shape[0]:
            raise DataError(
                f"expected {self.mean_.shape[0]} features, got {array.shape[1]}"
            )
        return (array - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        return as_2d(X) * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to a target range (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if not low < high:
            raise DataError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(low), float(high))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        array = as_2d(X)
        self.data_min_ = array.min(axis=0)
        self.data_max_ = array.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "data_min_")
        array = as_2d(X)
        if array.shape[1] != self.data_min_.shape[0]:
            raise DataError(
                f"expected {self.data_min_.shape[0]} features, got {array.shape[1]}"
            )
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        low, high = self.feature_range
        unit = (array - self.data_min_) / span
        return unit * (high - low) + low

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, "data_min_")
        low, high = self.feature_range
        unit = (as_2d(X) - low) / (high - low)
        span = self.data_max_ - self.data_min_
        return unit * span + self.data_min_


class OneHotEncoder(BaseEstimator):
    """One-hot encoding of a single categorical column.

    Unseen categories at transform time map to the all-zeros row (the
    behaviour needed for streaming building telemetry where a new chiller
    model type may appear after training).
    """

    def __init__(self) -> None:
        self.categories_: list | None = None
        self._index: dict | None = None

    def fit(self, values) -> "OneHotEncoder":
        flat = list(np.asarray(values, dtype=object).ravel())
        if not flat:
            raise DataError("OneHotEncoder requires at least one value")
        self.categories_ = sorted(set(flat), key=str)
        self._index = {category: i for i, category in enumerate(self.categories_)}
        return self

    def transform(self, values) -> np.ndarray:
        check_fitted(self, "categories_")
        flat = np.asarray(values, dtype=object).ravel()
        out = np.zeros((flat.size, len(self.categories_)))
        for row, value in enumerate(flat):
            column = self._index.get(value)
            if column is not None:
                out[row, column] = 1.0
        return out

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)
