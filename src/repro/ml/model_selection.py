"""Train/test splitting, K-fold cross validation, and grid search."""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.ml.base import BaseEstimator, as_2d, clone
from repro.utils.rng import as_rng


def train_test_split(X, y, *, test_size: float = 0.25, seed: int | None = 0):
    """Shuffle and split into train/test; returns (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_size < 1.0:
        raise ConfigurationError(f"test_size must be in (0, 1), got {test_size}")
    features = as_2d(X)
    targets = np.asarray(y)
    if features.shape[0] != targets.shape[0]:
        raise DataError("X and y must have the same number of rows")
    n = features.shape[0]
    n_test = max(1, int(round(test_size * n)))
    if n_test >= n:
        raise DataError(f"test_size={test_size} leaves no training data for n={n}")
    order = as_rng(seed).permutation(n)
    test_index = order[:n_test]
    train_index = order[n_test:]
    return (
        features[train_index],
        features[test_index],
        targets[train_index],
        targets[test_index],
    )


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ConfigurationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs covering all samples."""
        if n_samples < self.n_splits:
            raise DataError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = as_rng(self.seed).permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    n_splits: int = 5,
    scorer: Callable | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Per-fold scores of a cloned estimator (default scorer: ``estimator.score``)."""
    features = as_2d(X)
    targets = np.asarray(y)
    scores = []
    for train_index, test_index in KFold(n_splits=n_splits, seed=seed).split(features.shape[0]):
        model = clone(estimator)
        model.fit(features[train_index], targets[train_index])
        if scorer is None:
            scores.append(model.score(features[test_index], targets[test_index]))
        else:
            scores.append(scorer(targets[test_index], model.predict(features[test_index])))
    return np.asarray(scores, dtype=float)


class GridSearch:
    """Exhaustive hyper-parameter search with K-fold validation.

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every candidate.
    param_grid:
        Mapping from parameter name to the values to try.
    n_splits:
        Folds per candidate.
    scorer:
        Optional ``scorer(y_true, y_pred) -> float`` (higher is better); the
        default uses the estimator's own ``score``.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Mapping[str, Sequence],
        *,
        n_splits: int = 3,
        scorer: Callable | None = None,
        seed: int | None = 0,
    ) -> None:
        if not param_grid:
            raise ConfigurationError("param_grid must not be empty")
        self.estimator = estimator
        self.param_grid = dict(param_grid)
        self.n_splits = n_splits
        self.scorer = scorer
        self.seed = seed
        self.best_params_: dict | None = None
        self.best_score_: float | None = None
        self.best_estimator_: BaseEstimator | None = None
        self.results_: list[dict] | None = None

    def fit(self, X, y) -> "GridSearch":
        names = list(self.param_grid)
        results = []
        best_score = -np.inf
        for values in product(*(self.param_grid[name] for name in names)):
            params = dict(zip(names, values))
            candidate = clone(self.estimator).set_params(**params)
            scores = cross_val_score(
                candidate, X, y, n_splits=self.n_splits, scorer=self.scorer, seed=self.seed
            )
            mean_score = float(scores.mean())
            results.append({"params": params, "mean_score": mean_score, "scores": scores})
            if mean_score > best_score:
                best_score = mean_score
                self.best_params_ = params
                self.best_score_ = mean_score
        self.results_ = results
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self
