"""Random forests: bagged CART trees with per-node feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, as_2d
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_fitted, check_positive, check_same_length


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = 8,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = int(check_positive(n_estimators, name="n_estimators"))
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.estimators_: list | None = None

    def _fit_trees(self, features: np.ndarray, targets: np.ndarray, tree_class) -> None:
        rngs = spawn_rngs(self.seed, self.n_estimators)
        estimators = []
        n = features.shape[0]
        for rng in rngs:
            index = rng.integers(0, n, size=n)
            tree = tree_class(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[index], targets[index])
            estimators.append(tree)
        self.estimators_ = estimators


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Ensemble mean of bootstrap-trained regression trees."""

    def fit(self, X, y) -> "RandomForestRegressor":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        self._fit_trees(features, targets, DecisionTreeRegressor)
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        predictions = np.vstack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Soft-voting ensemble of bootstrap-trained classification trees."""

    def fit(self, X, y) -> "RandomForestClassifier":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_ = np.unique(labels)
        self._fit_trees(features, labels, DecisionTreeClassifier)
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        n_rows = as_2d(X).shape[0]
        total = np.zeros((n_rows, self.classes_.size))
        for tree in self.estimators_:
            # Trees may have seen a subset of classes in their bootstrap
            # sample; align their probability columns onto the full set.
            probabilities = tree.predict_proba(X)
            column_map = np.searchsorted(self.classes_, tree.classes_)
            total[:, column_map] += probabilities
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
