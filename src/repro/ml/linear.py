"""Linear models: ordinary least squares and ridge regression.

These are the workhorse task models for COP prediction in the synthetic
green-building dataset, and also the final-stage combiner inside the
cooperative DCTA model when its weights are fit from validation data.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, as_2d
from repro.utils.validation import check_fitted, check_positive, check_same_length


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via `numpy.linalg.lstsq` (rank-robust)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, X, y) -> "LinearRegression":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        design = features
        if self.fit_intercept:
            design = np.hstack([features, np.ones((features.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        return as_2d(X) @ self.coef_ + self.intercept_


class RidgeRegression(BaseEstimator, RegressorMixin):
    """L2-regularized least squares solved in closed form.

    The intercept is never penalized: features are centered before solving
    so the intercept absorbs the target mean.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = check_positive(alpha, name="alpha", strict=False)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, X, y) -> "RidgeRegression":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        if self.fit_intercept:
            feature_mean = features.mean(axis=0)
            target_mean = targets.mean()
            centered_x = features - feature_mean
            centered_y = targets - target_mean
        else:
            feature_mean = np.zeros(features.shape[1])
            target_mean = 0.0
            centered_x = features
            centered_y = targets
        gram = centered_x.T @ centered_x + self.alpha * np.eye(features.shape[1])
        self.coef_ = np.linalg.solve(gram, centered_x.T @ centered_y)
        self.intercept_ = float(target_mean - feature_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        return as_2d(X) @ self.coef_ + self.intercept_
