"""k-nearest-neighbour models.

Beyond the usual classifier/regressor, the kNN machinery here backs the
paper's *environment definition* step (Section III-C): the CRL model finds
the historical environment most similar to current sensing data with
``e = kNN(E, Z)``. :class:`repro.rl.crl.EnvironmentStore` reuses
:func:`nearest_indices`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, as_2d
from repro.utils.validation import check_fitted, check_positive, check_same_length


def pairwise_distances(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of shape (n_queries, n_references)."""
    queries = as_2d(queries)
    references = as_2d(references)
    if queries.shape[1] != references.shape[1]:
        raise DataError(
            f"dimensionality mismatch: queries have {queries.shape[1]} features, "
            f"references have {references.shape[1]}"
        )
    squared = (
        np.sum(queries**2, axis=1)[:, None]
        + np.sum(references**2, axis=1)[None, :]
        - 2.0 * queries @ references.T
    )
    return np.sqrt(np.maximum(squared, 0.0))


def nearest_indices(queries: np.ndarray, references: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` nearest references per query, nearest first."""
    if k < 1:
        raise DataError(f"k must be >= 1, got {k}")
    distances = pairwise_distances(queries, references)
    k = min(k, references.shape[0] if references.ndim > 1 else len(references))
    partition = np.argpartition(distances, k - 1, axis=1)[:, :k]
    rows = np.arange(distances.shape[0])[:, None]
    order = np.argsort(distances[rows, partition], axis=1, kind="stable")
    return partition[rows, order]


class _BaseKNN(BaseEstimator):
    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        self.n_neighbors = int(check_positive(n_neighbors, name="n_neighbors"))
        if weights not in ("uniform", "distance"):
            raise DataError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.weights = weights
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def _neighbor_weights(self, X) -> tuple[np.ndarray, np.ndarray]:
        check_fitted(self, "X_")
        queries = as_2d(X)
        k = min(self.n_neighbors, self.X_.shape[0])
        index = nearest_indices(queries, self.X_, k)
        if self.weights == "uniform":
            weight = np.ones_like(index, dtype=float)
        else:
            distances = pairwise_distances(queries, self.X_)
            rows = np.arange(queries.shape[0])[:, None]
            weight = 1.0 / (distances[rows, index] + 1e-12)
        return index, weight


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Weighted-mean kNN regression."""

    def fit(self, X, y) -> "KNeighborsRegressor":
        self.X_ = as_2d(X)
        self.y_ = np.asarray(y, dtype=float).ravel()
        check_same_length(self.X_, self.y_)
        return self

    def predict(self, X) -> np.ndarray:
        index, weight = self._neighbor_weights(X)
        values = self.y_[index]
        return np.sum(values * weight, axis=1) / np.sum(weight, axis=1)


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Weighted-vote kNN classification."""

    def fit(self, X, y) -> "KNeighborsClassifier":
        self.X_ = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(self.X_, labels)
        self.classes_, self.y_ = np.unique(labels, return_inverse=True)
        return self

    def predict_proba(self, X) -> np.ndarray:
        index, weight = self._neighbor_weights(X)
        votes = np.zeros((index.shape[0], self.classes_.size))
        for row in range(index.shape[0]):
            np.add.at(votes[row], self.y_[index[row]], weight[row])
        return votes / votes.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
