"""CART decision trees (regression and classification).

The trees are the base learners for :mod:`repro.ml.forest` and
:mod:`repro.ml.adaboost`. Splits are exact: for every feature the sorted
unique midpoints are scanned with an incremental impurity update, so fitting
is O(n_features * n log n) per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, as_2d
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive, check_same_length


@dataclass
class _Node:
    """A tree node: either a split (feature/threshold) or a leaf (value)."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_mse(features: np.ndarray, targets: np.ndarray, columns: np.ndarray, min_leaf: int):
    """Best (feature, threshold) minimizing weighted child MSE, or None."""
    n = targets.size
    best = None
    best_score = np.inf
    total_sum = targets.sum()
    total_sq = float(targets @ targets)
    parent_score = total_sq - total_sum**2 / n
    for column in columns:
        order = np.argsort(features[:, column], kind="stable")
        sorted_x = features[order, column]
        sorted_y = targets[order]
        prefix_sum = np.cumsum(sorted_y)
        prefix_sq = np.cumsum(sorted_y**2)
        for i in range(min_leaf, n - min_leaf + 1):
            if i < 1 or i >= n or sorted_x[i] == sorted_x[i - 1]:
                continue
            left_sum, left_sq = prefix_sum[i - 1], prefix_sq[i - 1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            score = (left_sq - left_sum**2 / i) + (right_sq - right_sum**2 / (n - i))
            if score < best_score - 1e-12:
                best_score = score
                best = (int(column), float((sorted_x[i] + sorted_x[i - 1]) / 2.0))
    # Zero-gain splits are allowed on impure nodes (the XOR case: no single
    # split helps, but the children become separable); pure nodes stop.
    if best is None or parent_score <= 1e-12:
        return None
    return best


def _best_split_gini(features: np.ndarray, labels: np.ndarray, n_classes: int, columns: np.ndarray, min_leaf: int):
    """Best (feature, threshold) minimizing weighted Gini impurity, or None."""
    n = labels.size
    total_counts = np.bincount(labels, minlength=n_classes).astype(float)
    parent_gini = 1.0 - np.sum((total_counts / n) ** 2)
    best = None
    best_score = np.inf
    for column in columns:
        order = np.argsort(features[:, column], kind="stable")
        sorted_x = features[order, column]
        sorted_y = labels[order]
        left_counts = np.zeros(n_classes)
        for i in range(1, n):
            left_counts[sorted_y[i - 1]] += 1.0
            if i < min_leaf or n - i < min_leaf or sorted_x[i] == sorted_x[i - 1]:
                continue
            right_counts = total_counts - left_counts
            gini_left = 1.0 - np.sum((left_counts / i) ** 2)
            gini_right = 1.0 - np.sum((right_counts / (n - i)) ** 2)
            score = (i * gini_left + (n - i) * gini_right) / n
            if score < best_score - 1e-12:
                best_score = score
                best = (int(column), float((sorted_x[i] + sorted_x[i - 1]) / 2.0))
    if best is None or parent_gini <= 1e-12:
        return None
    return best


class _BaseTree(BaseEstimator):
    """Shared recursive construction and traversal for both tree types."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | None = 0,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = int(check_positive(min_samples_leaf, name="min_samples_leaf"))
        self.max_features = max_features
        self.seed = seed
        self.root_: _Node | None = None
        self.n_features_: int | None = None

    def _feature_subset_size(self, n_features: int) -> int:
        spec = self.max_features
        if spec is None:
            return n_features
        if spec == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if spec == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if isinstance(spec, float):
            return max(1, min(n_features, int(round(spec * n_features))))
        return max(1, min(n_features, int(spec)))

    def _grow(self, features, targets, depth, rng) -> _Node:
        node = _Node(value=self._leaf_value(targets))
        if self.max_depth is not None and depth >= self.max_depth:
            return node
        if targets.size < 2 * self.min_samples_leaf:
            return node
        k = self._feature_subset_size(features.shape[1])
        if k < features.shape[1]:
            columns = rng.choice(features.shape[1], size=k, replace=False)
        else:
            columns = np.arange(features.shape[1])
        split = self._best_split(features, targets, columns)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1, rng)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1, rng)
        return node

    def _apply(self, X) -> list[_Node]:
        check_fitted(self, "root_")
        array = as_2d(X)
        leaves = []
        for row in array:
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            leaves.append(node)
        return leaves

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (0 for a stump that never split)."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    # Subclass hooks -----------------------------------------------------
    def _leaf_value(self, targets):
        raise NotImplementedError

    def _best_split(self, features, targets, columns):
        raise NotImplementedError


class DecisionTreeRegressor(_BaseTree, RegressorMixin):
    """CART regression tree minimizing squared error."""

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        if sample_weight is not None:
            # Weighted fitting is approximated by weighted resampling, which
            # keeps the exact-split routines unweighted and fast. Used by
            # AdaBoost.R2.
            weights = np.asarray(sample_weight, dtype=float)
            weights = weights / weights.sum()
            rng = as_rng(self.seed)
            index = rng.choice(targets.size, size=targets.size, p=weights)
            features, targets = features[index], targets[index]
        self.n_features_ = features.shape[1]
        self.root_ = self._grow(features, targets, 0, as_rng(self.seed))
        return self

    def predict(self, X) -> np.ndarray:
        return np.array([leaf.value for leaf in self._apply(X)])

    def _leaf_value(self, targets) -> float:
        return float(targets.mean())

    def _best_split(self, features, targets, columns):
        return _best_split_mse(features, targets, columns, self.min_samples_leaf)


class DecisionTreeClassifier(_BaseTree, ClassifierMixin):
    """CART classification tree minimizing Gini impurity."""

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=float)
            weights = weights / weights.sum()
            rng = as_rng(self.seed)
            index = rng.choice(encoded.size, size=encoded.size, p=weights)
            features, encoded = features[index], encoded[index]
        self.n_features_ = features.shape[1]
        self._n_classes = self.classes_.size
        self.root_ = self._grow(features, encoded, 0, as_rng(self.seed))
        return self

    def predict_proba(self, X) -> np.ndarray:
        return np.vstack([leaf.value for leaf in self._apply(X)])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def _leaf_value(self, targets) -> np.ndarray:
        counts = np.bincount(targets, minlength=self._n_classes).astype(float)
        return counts / counts.sum()

    def _best_split(self, features, targets, columns):
        return _best_split_gini(features, targets, self._n_classes, columns, self.min_samples_leaf)
