"""Logistic regression and a one-vs-rest multiclass wrapper.

Logistic regression is a natural fourth candidate for the paper's local
process (Section IV-B compares SVM/AdaBoost/RF); the one-vs-rest wrapper
lifts any binary classifier in the substrate (including the Eq. 8 SVM) to
multiclass problems.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.ml.base import BaseEstimator, ClassifierMixin, as_2d, clone
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive, check_same_length


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression trained by mini-batch SGD.

    Parameters
    ----------
    C:
        Inverse L2 regularization strength.
    epochs, batch_size, seed:
        SGD schedule parameters (step size decays harmonically).
    """

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 80,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        self.C = check_positive(C, name="C")
        self.epochs = int(check_positive(epochs, name="epochs"))
        self.batch_size = int(check_positive(batch_size, name="batch_size"))
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LogisticRegression":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_ = np.unique(labels)
        if self.classes_.size == 1:
            self.coef_ = np.zeros(features.shape[1])
            self.intercept_ = 0.0
            self._single_class = self.classes_[0]
            return self
        if self.classes_.size != 2:
            raise DataError(
                f"LogisticRegression is binary; got {self.classes_.size} classes "
                "(wrap in OneVsRestClassifier for multiclass)"
            )
        self._single_class = None
        targets = (labels == self.classes_[1]).astype(float)
        rng = as_rng(self.seed)
        weights = np.zeros(features.shape[1])
        bias = 0.0
        n = features.shape[0]
        step = 0
        regularization = 1.0 / (self.C * n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                step += 1
                learning_rate = 1.0 / (1.0 + 0.01 * step)
                logits = np.clip(features[batch] @ weights + bias, -35.0, 35.0)
                probabilities = 1.0 / (1.0 + np.exp(-logits))
                error = probabilities - targets[batch]
                gradient_w = features[batch].T @ error / batch.size
                gradient_b = float(error.mean())
                # Multiplicative weight decay, clamped so a strong
                # regularizer (small C) shrinks instead of oscillating.
                weights *= max(0.0, 1.0 - learning_rate * regularization)
                weights -= learning_rate * gradient_w
                bias -= learning_rate * gradient_b
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        return as_2d(X) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        scores = np.clip(self.decision_function(X), -35.0, 35.0)
        if getattr(self, "_single_class", None) is not None:
            return np.ones((scores.size, 1))
        positive = 1.0 / (1.0 + np.exp(-scores))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        if getattr(self, "_single_class", None) is not None:
            return np.full(as_2d(X).shape[0], self._single_class)
        return np.where(self.decision_function(X) >= 0.0, self.classes_[1], self.classes_[0])


class OneVsRestClassifier(BaseEstimator, ClassifierMixin):
    """Multiclass lift of any binary classifier with a decision function."""

    def __init__(self, base_estimator: BaseEstimator | None = None) -> None:
        self.base_estimator = (
            base_estimator if base_estimator is not None else LogisticRegression()
        )
        self.classes_: np.ndarray | None = None
        self.estimators_: list[BaseEstimator] | None = None

    def fit(self, X, y) -> "OneVsRestClassifier":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_ = np.unique(labels)
        estimators = []
        for klass in self.classes_:
            binary = (labels == klass).astype(int)
            model = clone(self.base_estimator)
            model.fit(features, binary)
            estimators.append(model)
        self.estimators_ = estimators
        return self

    def decision_matrix(self, X) -> np.ndarray:
        """(n_samples, n_classes) per-class scores."""
        check_fitted(self, "estimators_")
        columns = []
        for model in self.estimators_:
            if hasattr(model, "decision_function"):
                columns.append(np.asarray(model.decision_function(X), dtype=float))
            elif hasattr(model, "predict_proba"):
                probabilities = model.predict_proba(X)
                positive_column = probabilities.shape[1] - 1
                columns.append(probabilities[:, positive_column])
            else:
                columns.append(np.asarray(model.predict(X), dtype=float))
        return np.column_stack(columns)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_matrix(X), axis=1)]
