"""AdaBoost: discrete AdaBoost.M1 for classification, AdaBoost.R2 for regression.

These are the paper's alternative local-process models (Section IV-B
compares SVM / AdaBoost / Random Forest and selects SVM); we implement them
so the comparison itself can be reproduced as a benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, as_2d
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_fitted, check_positive, check_same_length


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """Discrete AdaBoost.M1 over depth-limited CART stumps."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 2,
        learning_rate: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = int(check_positive(n_estimators, name="n_estimators"))
        self.max_depth = int(check_positive(max_depth, name="max_depth"))
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] | None = None
        self.estimator_weights_: list[float] | None = None

    def fit(self, X, y) -> "AdaBoostClassifier":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_ = np.unique(labels)
        n = labels.size
        weights = np.full(n, 1.0 / n)
        estimators: list[DecisionTreeClassifier] = []
        alphas: list[float] = []
        rngs = spawn_rngs(self.seed, self.n_estimators)
        for rng in rngs:
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(features, labels, sample_weight=weights)
            predictions = tree.predict(features)
            missed = predictions != labels
            error = float(weights[missed].sum())
            if error >= 1.0 - 1.0 / self.classes_.size:
                # Worse than chance: resampling gave a bad draw; skip round.
                continue
            error = max(error, 1e-10)
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(self.classes_.size - 1.0)
            )
            weights *= np.exp(alpha * missed)
            weights /= weights.sum()
            estimators.append(tree)
            alphas.append(alpha)
            if error <= 1e-10:
                break
        if not estimators:
            raise TrainingError("AdaBoost made no progress: every round was worse than chance")
        self.estimators_ = estimators
        self.estimator_weights_ = alphas
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        n_rows = as_2d(X).shape[0]
        votes = np.zeros((n_rows, self.classes_.size))
        for alpha, tree in zip(self.estimator_weights_, self.estimators_):
            predictions = tree.predict(X)
            for column, klass in enumerate(self.classes_):
                votes[:, column] += alpha * (predictions == klass)
        return self.classes_[np.argmax(votes, axis=1)]


class AdaBoostRegressor(BaseEstimator, RegressorMixin):
    """AdaBoost.R2 (Drucker 1997) with linear loss over CART trees."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 3,
        learning_rate: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = int(check_positive(n_estimators, name="n_estimators"))
        self.max_depth = int(check_positive(max_depth, name="max_depth"))
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.seed = seed
        self.estimators_: list[DecisionTreeRegressor] | None = None
        self.estimator_weights_: list[float] | None = None

    def fit(self, X, y) -> "AdaBoostRegressor":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        n = targets.size
        weights = np.full(n, 1.0 / n)
        estimators: list[DecisionTreeRegressor] = []
        betas: list[float] = []
        rngs = spawn_rngs(self.seed, self.n_estimators)
        for rng in rngs:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, seed=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(features, targets, sample_weight=weights)
            errors = np.abs(tree.predict(features) - targets)
            max_error = errors.max()
            if max_error == 0.0:
                estimators.append(tree)
                betas.append(1e-10)
                break
            relative = errors / max_error
            average_loss = float(np.sum(weights * relative))
            if average_loss >= 0.5:
                continue
            beta = average_loss / (1.0 - average_loss)
            weights *= np.power(beta, self.learning_rate * (1.0 - relative))
            weights /= weights.sum()
            estimators.append(tree)
            betas.append(beta)
        if not estimators:
            raise TrainingError("AdaBoost.R2 made no progress: every round had loss >= 0.5")
        self.estimators_ = estimators
        self.estimator_weights_ = [np.log(1.0 / max(beta, 1e-10)) for beta in betas]
        return self

    def predict(self, X) -> np.ndarray:
        """Weighted-median combination, as in the original AdaBoost.R2."""
        check_fitted(self, "estimators_")
        predictions = np.vstack([tree.predict(X) for tree in self.estimators_])
        alphas = np.asarray(self.estimator_weights_, dtype=float)
        out = np.empty(predictions.shape[1])
        half = alphas.sum() / 2.0
        for column in range(predictions.shape[1]):
            order = np.argsort(predictions[:, column])
            cumulative = np.cumsum(alphas[order])
            pick = int(np.searchsorted(cumulative, half))
            pick = min(pick, order.size - 1)
            out[column] = predictions[order[pick], column]
        return out
