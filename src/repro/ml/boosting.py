"""Gradient boosting over CART regression trees.

A stronger ensemble regressor for the MTL task models: fits shallow trees
to the residuals of the running prediction with shrinkage. Used as an
optional base model in the transfer registry and as another local-process
candidate.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, as_2d
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_fitted, check_positive, check_same_length


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares gradient boosting with shrinkage and subsampling.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of the weak learners.
    subsample:
        Fraction of rows used per round (stochastic gradient boosting).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = int(check_positive(n_estimators, name="n_estimators"))
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.max_depth = int(check_positive(max_depth, name="max_depth"))
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.subsample = float(subsample)
        self.seed = seed
        self.initial_: float | None = None
        self.estimators_: list[DecisionTreeRegressor] | None = None

    def fit(self, X, y) -> "GradientBoostingRegressor":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        self.initial_ = float(targets.mean())
        prediction = np.full(targets.size, self.initial_)
        estimators = []
        rngs = spawn_rngs(self.seed, self.n_estimators)
        n = targets.size
        sample_size = max(1, int(round(self.subsample * n)))
        for rng in rngs:
            residual = targets - prediction
            if self.subsample < 1.0:
                rows = rng.choice(n, size=sample_size, replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, seed=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(features[rows], residual[rows])
            prediction += self.learning_rate * tree.predict(features)
            estimators.append(tree)
        self.estimators_ = estimators
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        out = np.full(as_2d(X).shape[0], self.initial_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting round (for early stopping)."""
        check_fitted(self, "estimators_")
        out = np.full(as_2d(X).shape[0], self.initial_)
        for tree in self.estimators_:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()
