"""Estimator base classes and the `clone` helper.

The interface intentionally mirrors the familiar sklearn surface so that the
MTL strategies in :mod:`repro.transfer` can swap SVM / AdaBoost / Random
Forest models without special cases.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from repro.ml.metrics import accuracy_score, r2_score


class BaseEstimator:
    """Base class providing parameter introspection for all models.

    Subclasses must accept all hyper-parameters as keyword arguments in
    ``__init__`` and store them under the same attribute names; fitted state
    must use a trailing underscore (``coef_``) so :func:`clone` can produce
    an unfitted copy.
    """

    def get_params(self) -> dict[str, Any]:
        """Return the constructor hyper-parameters as a dict."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters by name; unknown names raise ``ValueError``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"unknown parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical hyper-parameters."""
    params = {key: copy.deepcopy(value) for key, value in estimator.get_params().items()}
    return type(estimator)(**params)


class RegressorMixin:
    """Adds an R^2 ``score`` method to regressors."""

    def score(self, X, y) -> float:
        return r2_score(y, self.predict(X))


class ClassifierMixin:
    """Adds an accuracy ``score`` method to classifiers."""

    def score(self, X, y) -> float:
        return accuracy_score(y, self.predict(X))


def as_2d(X) -> np.ndarray:
    """Coerce a feature matrix to 2-D float ndarray (1-D becomes one column)."""
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {array.shape}")
    return array
