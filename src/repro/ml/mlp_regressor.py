"""Estimator-interface wrapper around the raw MLP, with warm starting.

Used by the parameter-transfer MTL strategy: a global network is trained
on pooled task data and each task then *fine-tunes* a copy on its own
scarce samples — transfer through parameters instead of instances, the
other classic regime the paper's Fig. 1(b) sketches.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, as_2d
from repro.ml.neural import MLP, Adam
from repro.ml.preprocessing import StandardScaler
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive, check_same_length


class MLPRegressor(BaseEstimator, RegressorMixin):
    """Small fully-connected regressor with mini-batch Adam training.

    Parameters
    ----------
    hidden_sizes:
        Hidden-layer widths.
    epochs, batch_size, learning_rate:
        Training schedule.
    warm_start:
        If True, subsequent ``fit`` calls continue from the current
        parameters (and keep the original input scaler) instead of
        reinitializing — the fine-tuning mode.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32,),
        epochs: int = 150,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        warm_start: bool = False,
        seed: int | None = 0,
    ) -> None:
        self.hidden_sizes = tuple(int(s) for s in hidden_sizes)
        self.epochs = int(check_positive(epochs, name="epochs"))
        self.batch_size = int(check_positive(batch_size, name="batch_size"))
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.warm_start = bool(warm_start)
        self.seed = seed
        self.network_: MLP | None = None
        self._scaler: StandardScaler | None = None
        self._target_mean: float | None = None
        self._target_scale: float | None = None

    def fit(self, X, y) -> "MLPRegressor":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        fresh = self.network_ is None or not self.warm_start
        if fresh:
            self._scaler = StandardScaler().fit(features)
            self._target_mean = float(targets.mean())
            self._target_scale = float(targets.std()) or 1.0
            self.network_ = MLP(
                (features.shape[1], *self.hidden_sizes, 1),
                optimizer=Adam(self.learning_rate),
                seed=self.seed,
            )
        scaled_x = self._scaler.transform(features)
        scaled_y = ((targets - self._target_mean) / self._target_scale).reshape(-1, 1)
        # Fused-cache epoch driver: same permutations, same minibatch
        # arithmetic as the naive train_batch loop, without re-allocating
        # forward/backward buffers every step (byte-identical parameters).
        self.network_.train_epochs(
            scaled_x,
            scaled_y,
            epochs=self.epochs,
            batch_size=self.batch_size,
            rng=as_rng(self.seed),
        )
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "network_")
        scaled = self._scaler.transform(as_2d(X))
        out = self.network_.forward(scaled).ravel()
        return out * self._target_scale + self._target_mean

    def clone_for_finetuning(self) -> "MLPRegressor":
        """A warm-start copy sharing this model's learned parameters.

        The copy fine-tunes independently: updating it never mutates the
        source network.
        """
        check_fitted(self, "network_")
        copy = MLPRegressor(
            hidden_sizes=self.hidden_sizes,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            warm_start=True,
            seed=self.seed,
        )
        copy.network_ = MLP(
            (self.network_.layer_sizes[0], *self.hidden_sizes, 1),
            optimizer=Adam(self.learning_rate),
            seed=self.seed,
        )
        copy.network_.copy_from(self.network_)
        copy._scaler = self._scaler
        copy._target_mean = self._target_mean
        copy._target_scale = self._target_scale
        return copy
