"""Gaussian Naive Bayes classifier.

A probabilistic baseline for the local process: fast, calibrated-ish
probabilities, no hyper-parameters to tune — useful as the sanity floor
that any learned local model must clear.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, as_2d
from repro.utils.validation import check_fitted, check_positive, check_same_length


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Per-class diagonal-Gaussian likelihoods with smoothed variances.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        (numerical floor for constant features).
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = check_positive(var_smoothing, name="var_smoothing")
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def fit(self, X, y) -> "GaussianNB":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        n_classes = self.classes_.size
        n_features = features.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        counts = np.zeros(n_classes)
        for klass in range(n_classes):
            rows = features[encoded == klass]
            counts[klass] = rows.shape[0]
            self.theta_[klass] = rows.mean(axis=0)
            self.var_[klass] = rows.var(axis=0)
        epsilon = self.var_smoothing * float(features.var(axis=0).max() or 1.0)
        self.var_ += epsilon
        self.class_prior_ = counts / counts.sum()
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        check_fitted(self, "theta_")
        features = as_2d(X)
        out = np.zeros((features.shape[0], self.classes_.size))
        for klass in range(self.classes_.size):
            log_prior = np.log(self.class_prior_[klass])
            diff = features - self.theta_[klass]
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[klass]) + diff**2 / self.var_[klass],
                axis=1,
            )
            out[:, klass] = log_prior + log_likelihood
        return out

    def predict_proba(self, X) -> np.ndarray:
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]
