"""Evaluation metrics for the ML substrate."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true, dtype=float).ravel()
    pred = np.asarray(y_pred, dtype=float).ravel()
    if true.size == 0:
        raise DataError("metric inputs must not be empty")
    if true.shape != pred.shape:
        raise DataError(f"y_true and y_pred differ in shape: {true.shape} vs {pred.shape}")
    return true, pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    true, pred = _pair(y_true, y_pred)
    return float(np.mean((true - pred) ** 2))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    true, pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 0.0 when the target is constant and exact."""
    true, pred = _pair(y_true, y_pred)
    residual = float(np.sum((true - pred) ** 2))
    total = float(np.sum((true - true.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    true = np.asarray(y_true).ravel()
    pred = np.asarray(y_pred).ravel()
    if true.size == 0:
        raise DataError("metric inputs must not be empty")
    if true.shape != pred.shape:
        raise DataError(f"y_true and y_pred differ in shape: {true.shape} vs {pred.shape}")
    return float(np.mean(true == pred))


def f1_score(y_true, y_pred, *, positive=1) -> float:
    """Binary F1 with respect to the ``positive`` label (0 when degenerate)."""
    true = np.asarray(y_true).ravel()
    pred = np.asarray(y_pred).ravel()
    if true.shape != pred.shape:
        raise DataError(f"y_true and y_pred differ in shape: {true.shape} vs {pred.shape}")
    tp = float(np.sum((true == positive) & (pred == positive)))
    fp = float(np.sum((true != positive) & (pred == positive)))
    fn = float(np.sum((true == positive) & (pred != positive)))
    if tp == 0.0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)
