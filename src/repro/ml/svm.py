"""Linear support-vector machines.

:class:`LinearSVC` implements exactly the local-process loss of the paper's
Eq. 8:

    L_k(w) = 1/2 ||w||^2 + 1/2 * max(0, 1 - y_k w^T x_k)^2

i.e. an L2-regularized squared-hinge primal, minimized by mini-batch SGD
with a Pegasos-style decaying step size. Labels are internally mapped to
{-1, +1}. A bias term is modeled by augmenting features with a constant
column (the bias is then lightly regularized, matching the paper's
formulation which regularizes the full ``w``).

:class:`LinearSVR` is the epsilon-insensitive regression analogue used when
a task model must produce a continuous output (COP prediction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, as_2d
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive, check_same_length


def _augment(features: np.ndarray) -> np.ndarray:
    return np.hstack([features, np.ones((features.shape[0], 1))])


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Binary linear SVM with the squared-hinge loss of Eq. 8.

    Parameters
    ----------
    C:
        Inverse regularization weight on the data term. The paper's Eq. 8
        uses an even 1/2-1/2 split, which corresponds to ``C=1``.
    epochs:
        Number of passes over the training set.
    batch_size:
        Mini-batch size for the SGD updates.
    seed:
        Seed controlling shuffling.
    """

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        self.C = check_positive(C, name="C")
        self.epochs = int(check_positive(epochs, name="epochs"))
        self.batch_size = int(check_positive(batch_size, name="batch_size"))
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVC":
        features = as_2d(X)
        labels = np.asarray(y).ravel()
        check_same_length(features, labels)
        self.classes_ = np.unique(labels)
        if self.classes_.size == 1:
            # Degenerate but valid training set: always predict the sole class.
            self.weights_ = np.zeros(features.shape[1] + 1)
            self._single_class = self.classes_[0]
            return self
        if self.classes_.size != 2:
            raise DataError(
                f"LinearSVC is binary; got {self.classes_.size} classes {self.classes_!r}"
            )
        self._single_class = None
        signs = np.where(labels == self.classes_[1], 1.0, -1.0)
        design = _augment(features)
        rng = as_rng(self.seed)
        weights = np.zeros(design.shape[1])
        step_counter = 0
        n = design.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                step_counter += 1
                learning_rate = 1.0 / (1.0 + 0.01 * step_counter)
                margins = signs[batch] * (design[batch] @ weights)
                active = margins < 1.0
                gradient = weights.copy()
                if np.any(active):
                    rows = design[batch][active]
                    residual = (1.0 - margins[active]) * signs[batch][active]
                    gradient -= self.C * (residual @ rows) / batch.size
                weights -= learning_rate * gradient
        self.weights_ = weights
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the separating hyperplane (positive = class 1)."""
        check_fitted(self, "weights_")
        return _augment(as_2d(X)) @ self.weights_

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "weights_")
        if getattr(self, "_single_class", None) is not None:
            return np.full(as_2d(X).shape[0], self._single_class)
        scores = self.decision_function(X)
        return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])

    def predict_proba(self, X) -> np.ndarray:
        """Platt-style sigmoid over the margin; columns follow ``classes_``."""
        scores = self.decision_function(X)
        if getattr(self, "_single_class", None) is not None:
            return np.ones((scores.size, 1))
        positive = 1.0 / (1.0 + np.exp(-scores))
        return np.column_stack([1.0 - positive, positive])


class LinearSVR(BaseEstimator, RegressorMixin):
    """Linear epsilon-insensitive support-vector regression via SGD."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.05,
        epochs: int = 80,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        self.C = check_positive(C, name="C")
        self.epsilon = check_positive(epsilon, name="epsilon", strict=False)
        self.epochs = int(check_positive(epochs, name="epochs"))
        self.batch_size = int(check_positive(batch_size, name="batch_size"))
        self.seed = seed
        self.weights_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVR":
        features = as_2d(X)
        targets = np.asarray(y, dtype=float).ravel()
        check_same_length(features, targets)
        design = _augment(features)
        rng = as_rng(self.seed)
        weights = np.zeros(design.shape[1])
        step_counter = 0
        n = design.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                step_counter += 1
                learning_rate = 0.5 / (1.0 + 0.01 * step_counter)
                predictions = design[batch] @ weights
                residual = predictions - targets[batch]
                outside = np.abs(residual) > self.epsilon
                gradient = 1e-4 * weights
                if np.any(outside):
                    rows = design[batch][outside]
                    signs = np.sign(residual[outside])
                    gradient += self.C * (signs @ rows) / batch.size
                weights -= learning_rate * gradient
        self.weights_ = weights
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "weights_")
        return _augment(as_2d(X)) @ self.weights_
