"""k-means clustering with k-means++ initialization.

Used by the *offline* environment-definition mode discussed in the paper's
Section VII ("divides historical samples into multiple clusters in advance,
e.g., using K-means"), implemented as an alternative to the online kNN mode.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, TrainingError
from repro.ml.base import BaseEstimator, as_2d
from repro.ml.knn import pairwise_distances
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive


class KMeans(BaseEstimator):
    """Lloyd's algorithm with k-means++ seeding and empty-cluster repair."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 4,
        seed: int | None = 0,
    ) -> None:
        self.n_clusters = int(check_positive(n_clusters, name="n_clusters"))
        self.max_iter = int(check_positive(max_iter, name="max_iter"))
        self.tol = check_positive(tol, name="tol", strict=False)
        self.n_init = int(check_positive(n_init, name="n_init"))
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    def _init_centers(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = data.shape[0]
        centers = [data[rng.integers(0, n)]]
        for _ in range(1, self.n_clusters):
            distances = pairwise_distances(data, np.vstack(centers)).min(axis=1) ** 2
            total = distances.sum()
            if total == 0.0:
                centers.append(data[rng.integers(0, n)])
                continue
            centers.append(data[rng.choice(n, p=distances / total)])
        return np.vstack(centers)

    def _run_once(self, data: np.ndarray, rng: np.random.Generator):
        centers = self._init_centers(data, rng)
        labels = np.zeros(data.shape[0], dtype=int)
        for _ in range(self.max_iter):
            distances = pairwise_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = data[labels == cluster]
                if members.shape[0] == 0:
                    # Empty cluster: re-seed at the farthest point.
                    farthest = np.argmax(distances.min(axis=1))
                    new_centers[cluster] = data[farthest]
                else:
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol:
                break
        inertia = float(np.sum((data - centers[labels]) ** 2))
        return centers, labels, inertia

    def fit(self, X) -> "KMeans":
        data = as_2d(X)
        if data.shape[0] < self.n_clusters:
            raise DataError(
                f"need at least n_clusters={self.n_clusters} samples, got {data.shape[0]}"
            )
        rng = as_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia = self._run_once(data, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        if best is None:
            raise TrainingError("k-means failed to produce any clustering")
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "cluster_centers_")
        return np.argmin(pairwise_distances(as_2d(X), self.cluster_centers_), axis=1)

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_
