"""Multilayer perceptron with backpropagation, plus SGD and Adam optimizers.

This is the function approximator behind the Deep Q-network of the paper's
CRL model (Section III-D, Algorithm 1). It is a plain fully-connected net
with ReLU (or tanh) hidden activations and a linear output layer — exactly
what DQN needs to regress Q-values — and a squared-error loss so the
training step matches Algorithm 1 line 4:

    L(s, a | θ) = (r + max_a' Q(s', a'|θ) − Q(s, a|θ))^2

Kernel layout: all weights and biases live in one flat parameter vector
(the per-layer arrays are reshaped views into it), mirrored by one flat
gradient vector, so an optimizer step is a handful of whole-network
vector ops instead of a Python loop over 2·L small arrays. Backprop
writes gradients into preallocated scratch (gradient views plus per-batch
delta buffers), and :meth:`MLP.forward` with ``cache=True`` records the
layer activations so :meth:`MLP.train_from_cache` can run the backward
pass without re-running the forward — the DQN trainer's prediction pass
and its gradient step share one forward. Every fused op preserves the
exact operation order of the naive implementation, so results are
bit-for-bit identical to the unfused code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0.0).astype(float)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
    "linear": (lambda z: z, lambda z: np.ones_like(z)),
}

#: Gradient *factors* for the in-place backward pass: value-identical to
#: the ``_ACTIVATIONS`` derivative but allowed to return a bool array
#: (multiplying a float array by a bool mask gives the same bits as
#: multiplying by its 0.0/1.0 float cast, without the cast).
_ACTIVATION_FACTORS = {
    "relu": lambda z: z > 0.0,
    "tanh": _ACTIVATIONS["tanh"][1],
    "linear": _ACTIVATIONS["linear"][1],
}


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for parameter, gradient, velocity in zip(parameters, gradients, self._velocity):
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity


class Adam:
    """Adam optimizer (Kingma & Ba 2015).

    The update is computed fully in place through preallocated scratch
    buffers — no per-step temporaries — with the operation order of the
    textbook expression preserved exactly, so the parameter trajectory is
    bit-for-bit the same as the allocating formulation.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in parameters]
            self._v = [np.zeros_like(p) for p in parameters]
        if self._scratch is None or len(self._scratch) != len(parameters):
            self._scratch = [
                (np.empty_like(p), np.empty_like(p)) for p in parameters
            ]
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for parameter, gradient, m, v, (s1, s2) in zip(
            parameters, gradients, self._m, self._v, self._scratch
        ):
            # m ← β1·m + (1−β1)·g ; v ← β2·v + (1−β2)·g²
            m *= self.beta1
            np.multiply(gradient, 1.0 - self.beta1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(gradient, gradient, out=s1)
            s1 *= 1.0 - self.beta2
            v += s1
            # θ ← θ − lr·m̂ / (√v̂ + ε), computed as ((lr·m̂) / denom).
            np.divide(m, correction1, out=s1)
            s1 *= self.learning_rate
            np.divide(v, correction2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.epsilon
            s1 /= s2
            parameter -= s1

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_scratch"] = None  # rebuilt lazily; never semantic state
        return state


class MLP:
    """Fully-connected network with a linear output head.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``(state_dim, 64, 64, n_actions)``.
    activation:
        Hidden activation: ``"relu"``, ``"tanh"`` or ``"linear"``.
    optimizer:
        An :class:`SGD` or :class:`Adam` instance (default: Adam).
    seed:
        Seed for He-style weight initialization.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...],
        activation: str = "relu",
        optimizer=None,
        seed: int | None = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ConfigurationError(
                f"layer_sizes needs at least input and output sizes, got {layer_sizes}"
            )
        if any(size < 1 for size in layer_sizes):
            raise ConfigurationError(f"all layer sizes must be >= 1, got {layer_sizes}")
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.activation = activation
        self.optimizer = optimizer if optimizer is not None else Adam()
        self._allocate_storage()
        rng = as_rng(seed)
        for weight, bias in zip(self.weights, self.biases):
            fan_in = weight.shape[0]
            scale = np.sqrt(2.0 / fan_in)
            weight[...] = rng.normal(0.0, scale, size=weight.shape)
            bias[...] = 0.0

    def _param_count(self) -> int:
        """Total scalars in the flat parameter vector (weights then biases)."""
        shapes = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        return sum(fan_in * fan_out for fan_in, fan_out in shapes) + sum(
            fan_out for _, fan_out in shapes
        )

    def _allocate_storage(self) -> None:
        """Flat parameter/gradient vectors with per-layer views into them."""
        total = self._param_count()
        self._bind_storage(np.empty(total, dtype=float), np.empty(total, dtype=float))

    def _bind_storage(self, flat_params: np.ndarray, flat_grads: np.ndarray) -> None:
        """Point this network's parameter/gradient views at the given vectors.

        :class:`StackedNetworks` re-binds each member network to a row of
        one stacked (networks, parameters) matrix; the per-agent and
        cross-agent kernels then operate on the same memory, so the two
        code paths can interleave freely without copies or drift.
        """
        shapes = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        self._flat_params = flat_params
        self._flat_grads = flat_grads
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self._weight_grads: list[np.ndarray] = []
        self._bias_grads: list[np.ndarray] = []
        offset = 0
        for fan_in, fan_out in shapes:
            size = fan_in * fan_out
            self.weights.append(
                self._flat_params[offset : offset + size].reshape(fan_in, fan_out)
            )
            self._weight_grads.append(
                self._flat_grads[offset : offset + size].reshape(fan_in, fan_out)
            )
            offset += size
        for _, fan_out in shapes:
            self.biases.append(self._flat_params[offset : offset + fan_out])
            self._bias_grads.append(self._flat_grads[offset : offset + fan_out])
            offset += fan_out
        self._forward_cache: tuple | None = None
        self._delta_buffers: dict[int, list[np.ndarray]] = getattr(
            self, "_delta_buffers", {}
        )
        self._io_buffers: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {}

    # ------------------------------------------------------------------
    def forward(
        self, X: np.ndarray, *, cache: bool = False, reuse: bool = False
    ) -> np.ndarray:
        """Forward pass; returns the linear outputs (no softmax).

        With ``cache=True`` the layer activations are kept so a following
        :meth:`train_from_cache` can backpropagate without re-running this
        forward. The cache is consumed by that call; do not mutate the
        returned outputs in between.

        With ``reuse=True`` the per-layer pre-activation/activation arrays
        come from preallocated per-batch-size buffers instead of fresh
        allocations (values are bit-for-bit the same). The returned array
        and any cached activations are overwritten by the next
        ``reuse=True`` call of the same batch size, so consume them first
        — the training loops do.
        """
        outputs, pre_activations, activations = self._forward_cached(
            np.asarray(X, dtype=float), reuse=reuse
        )
        if cache:
            self._forward_cache = (outputs, pre_activations, activations)
        return outputs

    def _forward_cached(self, X: np.ndarray, *, reuse: bool = False):
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.layer_sizes[0]:
            raise DataError(
                f"expected input of size {self.layer_sizes[0]}, got {X.shape[1]}"
            )
        act, _ = _ACTIVATIONS[self.activation]
        pre_activations = []
        activations = [X]
        hidden = X
        last = len(self.weights) - 1
        z_buffers, a_buffers = self._io_for(X.shape[0]) if reuse else (None, None)
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            if reuse:
                z = np.matmul(hidden, weight, out=z_buffers[i])
                z += bias
            else:
                z = hidden @ weight + bias
            pre_activations.append(z)
            if i == last:
                hidden = z
            elif reuse and self.activation == "relu":
                hidden = np.maximum(z, 0.0, out=a_buffers[i])
            elif reuse and self.activation == "tanh":
                hidden = np.tanh(z, out=a_buffers[i])
            else:
                hidden = act(z)
            activations.append(hidden)
        return hidden, pre_activations, activations

    def forward_rows(self, X: np.ndarray) -> np.ndarray:
        """A batch of *independent single-row* forwards in one kernel call.

        ``forward`` on a (k, d) matrix runs one GEMM over the whole batch,
        which is **not** bitwise identical per row to k separate (1, d)
        forwards — BLAS blocks the reduction differently. This method runs
        a broadcasted (k, 1, d) @ (d, h) matmul per layer instead: still
        one kernel call, but each row is reduced exactly like its own
        (1, d) forward, so batched greedy rollouts see byte-identical
        Q-values to the serial loop.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.layer_sizes[0]:
            raise DataError(
                f"expected a (rows, {self.layer_sizes[0]}) matrix, got {X.shape}"
            )
        act, _ = _ACTIVATIONS[self.activation]
        hidden = X.reshape(X.shape[0], 1, X.shape[1])
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = np.matmul(hidden, weight)
            z += bias
            hidden = z if i == last else act(z)
        return hidden.reshape(X.shape[0], self.layer_sizes[-1])

    def _deltas_for(self, batch: int) -> list[np.ndarray]:
        """Per-layer backprop scratch for this batch size (reused across steps)."""
        buffers = self._delta_buffers.get(batch)
        if buffers is None:
            buffers = [
                np.empty((batch, width), dtype=float) for width in self.layer_sizes[1:]
            ]
            if len(self._delta_buffers) > 8:  # e.g. a sweep of odd batch sizes
                self._delta_buffers.clear()
            self._delta_buffers[batch] = buffers
        return buffers

    def _io_for(self, batch: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-layer forward scratch (pre-activations, activations) per batch size."""
        buffers = self._io_buffers.get(batch)
        if buffers is None:
            z_buffers = [
                np.empty((batch, width), dtype=float) for width in self.layer_sizes[1:]
            ]
            a_buffers = [
                np.empty((batch, width), dtype=float)
                for width in self.layer_sizes[1:-1]
            ]
            if len(self._io_buffers) > 8:
                self._io_buffers.clear()
            buffers = (z_buffers, a_buffers)
            self._io_buffers[batch] = buffers
        return buffers

    def train_batch(self, X: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step on mean squared error; returns the loss."""
        self.forward(X, cache=True)
        return self.train_from_cache(targets)

    def train_from_cache(self, targets: np.ndarray) -> float:
        """Backward pass + optimizer step reusing the last cached forward.

        Pairs with ``forward(X, cache=True)``: together they are exactly
        :meth:`train_batch`, minus the redundant second forward when the
        caller already needed the predictions (the DQN training step).
        """
        if self._forward_cache is None:
            raise DataError("no cached forward pass; call forward(X, cache=True) first")
        outputs, pre_activations, activations = self._forward_cache
        self._forward_cache = None
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(outputs.shape)
        if targets.shape != outputs.shape:
            raise DataError(
                f"targets shape {targets.shape} does not match outputs {outputs.shape}"
            )
        n = activations[0].shape[0]
        factor = _ACTIVATION_FACTORS[self.activation]
        buffers = self._deltas_for(n)
        delta = buffers[-1]
        np.subtract(outputs, targets, out=delta)
        loss = float(np.mean(delta * delta))
        delta *= 2.0
        delta /= n
        for layer in reversed(range(len(self.weights))):
            np.matmul(activations[layer].T, delta, out=self._weight_grads[layer])
            np.sum(delta, axis=0, out=self._bias_grads[layer])
            if layer > 0:
                previous = buffers[layer - 1]
                np.matmul(delta, self.weights[layer].T, out=previous)
                previous *= factor(pre_activations[layer - 1])
                delta = previous
        self.optimizer.step([self._flat_params], [self._flat_grads])
        return loss

    def train_epochs(
        self, X: np.ndarray, targets: np.ndarray, *, epochs: int, batch_size: int, rng
    ) -> None:
        """Fused mini-batch training: ``epochs`` shuffled passes over (X, y).

        Equivalent to the naive ``for each epoch: for each slice:
        train_batch(X[idx], y[idx])`` loop — RNG consumption (one
        permutation per epoch) and every arithmetic op are identical, so
        the trained parameters are bit-for-bit the same — but the index
        gathers run through ``np.take(..., out=...)`` into preallocated
        batch buffers and the forward reuses its activation scratch,
        removing the per-step allocations that dominate small batches.
        """
        if epochs < 1 or batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        X = np.asarray(X, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if X.ndim != 2 or X.shape[0] != targets.shape[0]:
            raise DataError(
                f"X {X.shape} and targets {targets.shape} must share rows"
            )
        n = X.shape[0]
        gathers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for _ in range(int(epochs)):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                index = order[start : start + batch_size]
                pair = gathers.get(index.size)
                if pair is None:
                    pair = (
                        np.empty((index.size, X.shape[1]), dtype=float),
                        np.empty((index.size, targets.shape[1]), dtype=float),
                    )
                    gathers[index.size] = pair
                batch_x, batch_y = pair
                X.take(index, axis=0, out=batch_x)
                targets.take(index, axis=0, out=batch_y)
                self.forward(batch_x, cache=True, reuse=True)
                self.train_from_cache(batch_y)

    # ------------------------------------------------------------------
    def get_parameters(self) -> list[np.ndarray]:
        """Copies of all weights then biases (for target-network sync)."""
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters`."""
        expected = len(self.weights) + len(self.biases)
        if len(parameters) != expected:
            raise ConfigurationError(
                f"expected {expected} parameter arrays, got {len(parameters)}"
            )
        count = len(self.weights)
        for i in range(count):
            if parameters[i].shape != self.weights[i].shape:
                raise ConfigurationError("weight shape mismatch in set_parameters")
        for i in range(len(self.biases)):
            if parameters[count + i].shape != self.biases[i].shape:
                raise ConfigurationError("bias shape mismatch in set_parameters")
        for i in range(count):
            self.weights[i][...] = parameters[i]
        for i in range(len(self.biases)):
            self.biases[i][...] = parameters[count + i]

    def copy_from(self, other: "MLP") -> None:
        """Hard-sync this network's parameters from another MLP."""
        if self.layer_sizes == other.layer_sizes:
            np.copyto(self._flat_params, other._flat_params)
        else:
            self.set_parameters(other.get_parameters())

    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle layer arrays as plain copies (views don't survive pickling)."""
        return {
            "layer_sizes": self.layer_sizes,
            "activation": self.activation,
            "optimizer": self.optimizer,
            "parameters": self.get_parameters(),
        }

    def __setstate__(self, state) -> None:
        self.layer_sizes = tuple(state["layer_sizes"])
        self.activation = state["activation"]
        self.optimizer = state["optimizer"]
        self._allocate_storage()
        self.set_parameters(state["parameters"])


class StackedNetworks:
    """Cross-network batched kernels over N identically-shaped MLPs.

    Gathers every member's flat parameter/gradient vector into one
    (networks, parameters) matrix and *re-binds* each member's per-layer
    views onto its row. The members keep working individually — same
    memory, same bitwise arithmetic — while this view can run one stacked
    ``(A, batch, d) @ (A, d, h)`` matmul per layer across all of them.
    Every stacked kernel uses a broadcast / per-slice formulation that is
    bit-for-bit identical to the members' own 2-D kernels (numpy's batched
    matmul runs one GEMM per slice), so training A agents through the
    stack produces byte-identical parameters to training them one at a
    time; per-member ops and stacked ops can interleave freely.

    With ``stack_optimizers=True`` the members' Adam state is gathered the
    same way (this requires every member to use :class:`Adam` with
    identical hyper-parameters); members keep their own step counters, so
    bias corrections are applied per row and a stack can be formed or
    released at any point mid-training without perturbing the trajectory.

    Call :meth:`release` when done to detach the members back onto
    private storage (their values are copied out; nothing is lost if you
    don't, but the stacked matrix stays alive as long as any member does).
    """

    def __init__(self, networks, *, stack_optimizers: bool = False) -> None:
        networks = list(networks)
        if not networks:
            raise ConfigurationError("StackedNetworks needs at least one network")
        first = networks[0]
        for network in networks[1:]:
            if (
                network.layer_sizes != first.layer_sizes
                or network.activation != first.activation
            ):
                raise ConfigurationError(
                    "stacked networks must share layer sizes and activation"
                )
        self.networks = networks
        self.layer_sizes = first.layer_sizes
        self.activation = first.activation
        count, total = len(networks), first._param_count()
        params = np.empty((count, total), dtype=float)
        grads = np.empty((count, total), dtype=float)
        for row, network in zip(params, networks):
            np.copyto(row, network._flat_params)
        for network, param_row, grad_row in zip(networks, params, grads):
            network._bind_storage(param_row, grad_row)
        self._params2 = params
        self._grads2 = grads
        shapes = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        self._weights3: list[np.ndarray] = []
        self._weight_grads3: list[np.ndarray] = []
        self._biases3: list[np.ndarray] = []
        self._bias_grads2: list[np.ndarray] = []
        offset = 0
        for fan_in, fan_out in shapes:
            size = fan_in * fan_out
            self._weights3.append(
                params[:, offset : offset + size].reshape(count, fan_in, fan_out)
            )
            self._weight_grads3.append(
                grads[:, offset : offset + size].reshape(count, fan_in, fan_out)
            )
            offset += size
        for _, fan_out in shapes:
            self._biases3.append(
                params[:, offset : offset + fan_out].reshape(count, 1, fan_out)
            )
            self._bias_grads2.append(grads[:, offset : offset + fan_out])
            offset += fan_out
        self._forward_cache: tuple | None = None
        self._delta_buffers: dict[int, list[np.ndarray]] = {}
        self._adam_state: tuple | None = None
        if stack_optimizers:
            self._bind_optimizers()
        self._released = False

    def __len__(self) -> int:
        return len(self.networks)

    # ------------------------------------------------------------------
    def substack(self, start: int, stop: int, *, stack_optimizers: bool = False) -> "StackedNetworks":
        """A stacked view over members ``start:stop`` sharing this storage.

        The sub-stack's parameter/gradient matrices are row slices of this
        stack's, so training through the sub-stack and forwarding through
        the parent interleave freely on the same memory — the basis of the
        joint online+target stack, where one parent ``forward`` serves two
        member groups in a single batched matmul per layer. Release the
        sub-stacks (not the parent) to detach members.
        """
        if not 0 <= start < stop <= len(self.networks):
            raise ConfigurationError(
                f"substack range [{start}, {stop}) outside 0..{len(self.networks)}"
            )
        sub = object.__new__(StackedNetworks)
        sub.networks = self.networks[start:stop]
        sub.layer_sizes = self.layer_sizes
        sub.activation = self.activation
        sub._params2 = self._params2[start:stop]
        sub._grads2 = self._grads2[start:stop]
        sub._weights3 = [w[start:stop] for w in self._weights3]
        sub._weight_grads3 = [g[start:stop] for g in self._weight_grads3]
        sub._biases3 = [b[start:stop] for b in self._biases3]
        sub._bias_grads2 = [g[start:stop] for g in self._bias_grads2]
        sub._forward_cache = None
        sub._delta_buffers = {}
        sub._adam_state = None
        if stack_optimizers:
            sub._bind_optimizers()
        sub._released = False
        return sub

    def adopt_cache(self, parent: "StackedNetworks", start: int, stop: int) -> None:
        """Install row slices ``start:stop`` of the parent's forward cache.

        Lets a sub-stack backpropagate from a cached forward the parent
        ran over all members (``forward(..., cache=True)`` on the parent,
        then ``adopt_cache`` + ``train_from_cache`` on the sub-stack).
        The sliced activations are views; the backward matmuls are
        per-slice, so the result is byte-identical to the sub-stack
        having run its own cached forward on the same rows.
        """
        if parent._forward_cache is None:
            raise DataError("parent has no cached forward pass")
        outputs, pre_activations, activations = parent._forward_cache
        parent._forward_cache = None
        self._forward_cache = (
            outputs[start:stop],
            [z[start:stop] for z in pre_activations],
            [a[start:stop] for a in activations],
        )

    # ------------------------------------------------------------------
    def _bind_optimizers(self) -> None:
        optimizers = [network.optimizer for network in self.networks]
        first = optimizers[0]
        for optimizer in optimizers:
            if not isinstance(optimizer, Adam):
                raise ConfigurationError("optimizer stacking requires Adam members")
            if (
                optimizer.learning_rate,
                optimizer.beta1,
                optimizer.beta2,
                optimizer.epsilon,
            ) != (first.learning_rate, first.beta1, first.beta2, first.epsilon):
                raise ConfigurationError(
                    "optimizer stacking requires identical Adam hyper-parameters"
                )
        count, total = self._params2.shape
        m2 = np.zeros((count, total), dtype=float)
        v2 = np.zeros((count, total), dtype=float)
        s1 = np.empty((count, total), dtype=float)
        s2 = np.empty((count, total), dtype=float)
        for m_row, v_row, s1_row, s2_row, optimizer in zip(m2, v2, s1, s2, optimizers):
            if optimizer._m is not None:
                np.copyto(m_row, optimizer._m[0])
                np.copyto(v_row, optimizer._v[0])
            # Re-bind the member's state to its stacked row, so per-member
            # steps and stacked steps update the same moments.
            optimizer._m = [m_row]
            optimizer._v = [v_row]
            optimizer._scratch = [(s1_row, s2_row)]
        self._adam_state = (m2, v2, s1, s2)

    def _stacked_adam_step(self) -> None:
        """One Adam step for every member, per-row bias corrections.

        Mirrors :meth:`Adam.step` op for op on the stacked matrices; the
        only difference is the (A, 1) correction columns, and dividing by
        a per-row scalar column is bitwise equal to dividing each row by
        its scalar.
        """
        optimizers = [network.optimizer for network in self.networks]
        first = optimizers[0]
        m2, v2, s1, s2 = self._adam_state
        for optimizer in optimizers:
            optimizer._t += 1
        correction1 = np.array(
            [[1.0 - first.beta1**optimizer._t] for optimizer in optimizers]
        )
        correction2 = np.array(
            [[1.0 - first.beta2**optimizer._t] for optimizer in optimizers]
        )
        gradients = self._grads2
        m2 *= first.beta1
        np.multiply(gradients, 1.0 - first.beta1, out=s1)
        m2 += s1
        v2 *= first.beta2
        np.multiply(gradients, gradients, out=s1)
        s1 *= 1.0 - first.beta2
        v2 += s1
        np.divide(m2, correction1, out=s1)
        s1 *= first.learning_rate
        np.divide(v2, correction2, out=s2)
        np.sqrt(s2, out=s2)
        s2 += first.epsilon
        s1 /= s2
        self._params2 -= s1

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray, *, cache: bool = False) -> np.ndarray:
        """(A, batch, in) → (A, batch, out); slice ``a`` is bit-for-bit
        member ``a``'s 2-D ``forward`` on ``X[a]``."""
        X = np.asarray(X, dtype=float)
        if (
            X.ndim != 3
            or X.shape[0] != len(self.networks)
            or X.shape[2] != self.layer_sizes[0]
        ):
            raise DataError(
                f"expected ({len(self.networks)}, batch, {self.layer_sizes[0]}) "
                f"input, got {X.shape}"
            )
        act, _ = _ACTIVATIONS[self.activation]
        pre_activations = []
        activations = [X]
        hidden = X
        last = len(self._weights3) - 1
        for i, (weight3, bias3) in enumerate(zip(self._weights3, self._biases3)):
            z = np.matmul(hidden, weight3)
            z += bias3
            pre_activations.append(z)
            hidden = z if i == last else act(z)
            activations.append(hidden)
        if cache:
            self._forward_cache = (hidden, pre_activations, activations)
        return hidden

    def forward_rows(self, X: np.ndarray) -> np.ndarray:
        """(A, in) → (A, out): each row through its own member network.

        Row ``a`` is bit-for-bit member ``a``'s ``forward(X[a])`` — the
        acting-phase kernel when every agent advances one step in
        lockstep.
        """
        X = np.asarray(X, dtype=float)
        count = len(self.networks)
        return self.forward(X.reshape(count, 1, -1)).reshape(
            count, self.layer_sizes[-1]
        )

    def _deltas_for(self, batch: int) -> list[np.ndarray]:
        buffers = self._delta_buffers.get(batch)
        if buffers is None:
            count = len(self.networks)
            buffers = [
                np.empty((count, batch, width), dtype=float)
                for width in self.layer_sizes[1:]
            ]
            if len(self._delta_buffers) > 8:
                self._delta_buffers.clear()
            self._delta_buffers[batch] = buffers
        return buffers

    def train_from_cache(self, targets: np.ndarray) -> np.ndarray:
        """Backward + optimizer step for every member; per-member losses.

        Pairs with ``forward(X, cache=True)``. Running this once is
        bit-for-bit equal to running each member's own
        ``forward(cache=True)`` / ``train_from_cache`` pair on its slice:
        the stacked matmuls are per-slice GEMMs, the loss reduction runs
        per member, and the optimizer step applies per-row corrections.
        """
        if self._forward_cache is None:
            raise DataError("no cached forward pass; call forward(X, cache=True) first")
        outputs, pre_activations, activations = self._forward_cache
        self._forward_cache = None
        targets = np.asarray(targets, dtype=float)
        if targets.shape != outputs.shape:
            raise DataError(
                f"targets shape {targets.shape} does not match outputs {outputs.shape}"
            )
        n = activations[0].shape[1]
        factor = _ACTIVATION_FACTORS[self.activation]
        buffers = self._deltas_for(n)
        delta = buffers[-1]
        np.subtract(outputs, targets, out=delta)
        losses = np.array(
            [float(np.mean(delta[a] * delta[a])) for a in range(len(self.networks))]
        )
        delta *= 2.0
        delta /= n
        for layer in reversed(range(len(self._weights3))):
            np.matmul(
                activations[layer].transpose(0, 2, 1),
                delta,
                out=self._weight_grads3[layer],
            )
            np.sum(delta, axis=1, out=self._bias_grads2[layer])
            if layer > 0:
                previous = buffers[layer - 1]
                np.matmul(
                    delta, self._weights3[layer].transpose(0, 2, 1), out=previous
                )
                previous *= factor(pre_activations[layer - 1])
                delta = previous
        if self._adam_state is not None:
            self._stacked_adam_step()
        else:
            for network in self.networks:
                network.optimizer.step([network._flat_params], [network._flat_grads])
        return losses

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Detach every member back onto private storage (values copied)."""
        if self._released:
            return
        for network in self.networks:
            params = network._flat_params.copy()
            network._bind_storage(params, np.empty_like(params))
        if self._adam_state is not None:
            for network in self.networks:
                optimizer = network.optimizer
                optimizer._m = [optimizer._m[0].copy()]
                optimizer._v = [optimizer._v[0].copy()]
                optimizer._scratch = None
        self._released = True
