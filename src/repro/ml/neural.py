"""Multilayer perceptron with backpropagation, plus SGD and Adam optimizers.

This is the function approximator behind the Deep Q-network of the paper's
CRL model (Section III-D, Algorithm 1). It is a plain fully-connected net
with ReLU (or tanh) hidden activations and a linear output layer — exactly
what DQN needs to regress Q-values — and a squared-error loss so the
training step matches Algorithm 1 line 4:

    L(s, a | θ) = (r + max_a' Q(s', a'|θ) − Q(s, a|θ))^2
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0.0).astype(float)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
    "linear": (lambda z: z, lambda z: np.ones_like(z)),
}


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for parameter, gradient, velocity in zip(parameters, gradients, self._velocity):
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity


class Adam:
    """Adam optimizer (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in parameters]
            self._v = [np.zeros_like(p) for p in parameters]
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for parameter, gradient, m, v in zip(parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * gradient
            v *= self.beta2
            v += (1.0 - self.beta2) * gradient**2
            m_hat = m / correction1
            v_hat = v / correction2
            parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class MLP:
    """Fully-connected network with a linear output head.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``(state_dim, 64, 64, n_actions)``.
    activation:
        Hidden activation: ``"relu"``, ``"tanh"`` or ``"linear"``.
    optimizer:
        An :class:`SGD` or :class:`Adam` instance (default: Adam).
    seed:
        Seed for He-style weight initialization.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...],
        activation: str = "relu",
        optimizer=None,
        seed: int | None = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ConfigurationError(
                f"layer_sizes needs at least input and output sizes, got {layer_sizes}"
            )
        if any(size < 1 for size in layer_sizes):
            raise ConfigurationError(f"all layer sizes must be >= 1, got {layer_sizes}")
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.activation = activation
        self.optimizer = optimizer if optimizer is not None else Adam()
        rng = as_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray) -> np.ndarray:
        """Forward pass; returns the linear outputs (no softmax)."""
        return self._forward_cached(np.asarray(X, dtype=float))[0]

    def _forward_cached(self, X: np.ndarray):
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.layer_sizes[0]:
            raise DataError(
                f"expected input of size {self.layer_sizes[0]}, got {X.shape[1]}"
            )
        act, _ = _ACTIVATIONS[self.activation]
        pre_activations = []
        activations = [X]
        hidden = X
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = hidden @ weight + bias
            pre_activations.append(z)
            hidden = z if i == last else act(z)
            activations.append(hidden)
        return hidden, pre_activations, activations

    def train_batch(self, X: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step on mean squared error; returns the loss."""
        X = np.asarray(X, dtype=float)
        targets = np.asarray(targets, dtype=float)
        outputs, pre_activations, activations = self._forward_cached(X)
        if targets.ndim == 1:
            targets = targets.reshape(outputs.shape)
        if targets.shape != outputs.shape:
            raise DataError(
                f"targets shape {targets.shape} does not match outputs {outputs.shape}"
            )
        n = X.shape[0] if X.ndim == 2 else 1
        delta = 2.0 * (outputs - targets) / n
        loss = float(np.mean((outputs - targets) ** 2))
        _, act_grad = _ACTIVATIONS[self.activation]
        weight_gradients: list[np.ndarray] = [None] * len(self.weights)
        bias_gradients: list[np.ndarray] = [None] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            weight_gradients[layer] = activations[layer].T @ delta
            bias_gradients[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * act_grad(pre_activations[layer - 1])
        parameters = self.weights + self.biases
        gradients = weight_gradients + bias_gradients
        self.optimizer.step(parameters, gradients)
        return loss

    # ------------------------------------------------------------------
    def get_parameters(self) -> list[np.ndarray]:
        """Copies of all weights then biases (for target-network sync)."""
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters`."""
        expected = len(self.weights) + len(self.biases)
        if len(parameters) != expected:
            raise ConfigurationError(
                f"expected {expected} parameter arrays, got {len(parameters)}"
            )
        count = len(self.weights)
        for i in range(count):
            if parameters[i].shape != self.weights[i].shape:
                raise ConfigurationError("weight shape mismatch in set_parameters")
            self.weights[i] = parameters[i].copy()
        for i in range(len(self.biases)):
            if parameters[count + i].shape != self.biases[i].shape:
                raise ConfigurationError("bias shape mismatch in set_parameters")
            self.biases[i] = parameters[count + i].copy()

    def copy_from(self, other: "MLP") -> None:
        """Hard-sync this network's parameters from another MLP."""
        self.set_parameters(other.get_parameters())
