"""Multilayer perceptron with backpropagation, plus SGD and Adam optimizers.

This is the function approximator behind the Deep Q-network of the paper's
CRL model (Section III-D, Algorithm 1). It is a plain fully-connected net
with ReLU (or tanh) hidden activations and a linear output layer — exactly
what DQN needs to regress Q-values — and a squared-error loss so the
training step matches Algorithm 1 line 4:

    L(s, a | θ) = (r + max_a' Q(s', a'|θ) − Q(s, a|θ))^2

Kernel layout: all weights and biases live in one flat parameter vector
(the per-layer arrays are reshaped views into it), mirrored by one flat
gradient vector, so an optimizer step is a handful of whole-network
vector ops instead of a Python loop over 2·L small arrays. Backprop
writes gradients into preallocated scratch (gradient views plus per-batch
delta buffers), and :meth:`MLP.forward` with ``cache=True`` records the
layer activations so :meth:`MLP.train_from_cache` can run the backward
pass without re-running the forward — the DQN trainer's prediction pass
and its gradient step share one forward. Every fused op preserves the
exact operation order of the naive implementation, so results are
bit-for-bit identical to the unfused code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0.0).astype(float)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
    "linear": (lambda z: z, lambda z: np.ones_like(z)),
}

#: Gradient *factors* for the in-place backward pass: value-identical to
#: the ``_ACTIVATIONS`` derivative but allowed to return a bool array
#: (multiplying a float array by a bool mask gives the same bits as
#: multiplying by its 0.0/1.0 float cast, without the cast).
_ACTIVATION_FACTORS = {
    "relu": lambda z: z > 0.0,
    "tanh": _ACTIVATIONS["tanh"][1],
    "linear": _ACTIVATIONS["linear"][1],
}


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for parameter, gradient, velocity in zip(parameters, gradients, self._velocity):
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity


class Adam:
    """Adam optimizer (Kingma & Ba 2015).

    The update is computed fully in place through preallocated scratch
    buffers — no per-step temporaries — with the operation order of the
    textbook expression preserved exactly, so the parameter trajectory is
    bit-for-bit the same as the allocating formulation.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = check_positive(learning_rate, name="learning_rate")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in parameters]
            self._v = [np.zeros_like(p) for p in parameters]
        if self._scratch is None or len(self._scratch) != len(parameters):
            self._scratch = [
                (np.empty_like(p), np.empty_like(p)) for p in parameters
            ]
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for parameter, gradient, m, v, (s1, s2) in zip(
            parameters, gradients, self._m, self._v, self._scratch
        ):
            # m ← β1·m + (1−β1)·g ; v ← β2·v + (1−β2)·g²
            m *= self.beta1
            np.multiply(gradient, 1.0 - self.beta1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(gradient, gradient, out=s1)
            s1 *= 1.0 - self.beta2
            v += s1
            # θ ← θ − lr·m̂ / (√v̂ + ε), computed as ((lr·m̂) / denom).
            np.divide(m, correction1, out=s1)
            s1 *= self.learning_rate
            np.divide(v, correction2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.epsilon
            s1 /= s2
            parameter -= s1

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_scratch"] = None  # rebuilt lazily; never semantic state
        return state


class MLP:
    """Fully-connected network with a linear output head.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``(state_dim, 64, 64, n_actions)``.
    activation:
        Hidden activation: ``"relu"``, ``"tanh"`` or ``"linear"``.
    optimizer:
        An :class:`SGD` or :class:`Adam` instance (default: Adam).
    seed:
        Seed for He-style weight initialization.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...],
        activation: str = "relu",
        optimizer=None,
        seed: int | None = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ConfigurationError(
                f"layer_sizes needs at least input and output sizes, got {layer_sizes}"
            )
        if any(size < 1 for size in layer_sizes):
            raise ConfigurationError(f"all layer sizes must be >= 1, got {layer_sizes}")
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.activation = activation
        self.optimizer = optimizer if optimizer is not None else Adam()
        self._allocate_storage()
        rng = as_rng(seed)
        for weight, bias in zip(self.weights, self.biases):
            fan_in = weight.shape[0]
            scale = np.sqrt(2.0 / fan_in)
            weight[...] = rng.normal(0.0, scale, size=weight.shape)
            bias[...] = 0.0

    def _allocate_storage(self) -> None:
        """Flat parameter/gradient vectors with per-layer views into them."""
        shapes = list(zip(self.layer_sizes[:-1], self.layer_sizes[1:]))
        total = sum(fan_in * fan_out for fan_in, fan_out in shapes) + sum(
            fan_out for _, fan_out in shapes
        )
        self._flat_params = np.empty(total, dtype=float)
        self._flat_grads = np.empty(total, dtype=float)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self._weight_grads: list[np.ndarray] = []
        self._bias_grads: list[np.ndarray] = []
        offset = 0
        for fan_in, fan_out in shapes:
            size = fan_in * fan_out
            self.weights.append(
                self._flat_params[offset : offset + size].reshape(fan_in, fan_out)
            )
            self._weight_grads.append(
                self._flat_grads[offset : offset + size].reshape(fan_in, fan_out)
            )
            offset += size
        for _, fan_out in shapes:
            self.biases.append(self._flat_params[offset : offset + fan_out])
            self._bias_grads.append(self._flat_grads[offset : offset + fan_out])
            offset += fan_out
        self._forward_cache: tuple | None = None
        self._delta_buffers: dict[int, list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray, *, cache: bool = False) -> np.ndarray:
        """Forward pass; returns the linear outputs (no softmax).

        With ``cache=True`` the layer activations are kept so a following
        :meth:`train_from_cache` can backpropagate without re-running this
        forward. The cache is consumed by that call; do not mutate the
        returned outputs in between.
        """
        outputs, pre_activations, activations = self._forward_cached(
            np.asarray(X, dtype=float)
        )
        if cache:
            self._forward_cache = (outputs, pre_activations, activations)
        return outputs

    def _forward_cached(self, X: np.ndarray):
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.layer_sizes[0]:
            raise DataError(
                f"expected input of size {self.layer_sizes[0]}, got {X.shape[1]}"
            )
        act, _ = _ACTIVATIONS[self.activation]
        pre_activations = []
        activations = [X]
        hidden = X
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = hidden @ weight + bias
            pre_activations.append(z)
            hidden = z if i == last else act(z)
            activations.append(hidden)
        return hidden, pre_activations, activations

    def _deltas_for(self, batch: int) -> list[np.ndarray]:
        """Per-layer backprop scratch for this batch size (reused across steps)."""
        buffers = self._delta_buffers.get(batch)
        if buffers is None:
            buffers = [
                np.empty((batch, width), dtype=float) for width in self.layer_sizes[1:]
            ]
            if len(self._delta_buffers) > 8:  # e.g. a sweep of odd batch sizes
                self._delta_buffers.clear()
            self._delta_buffers[batch] = buffers
        return buffers

    def train_batch(self, X: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step on mean squared error; returns the loss."""
        self.forward(X, cache=True)
        return self.train_from_cache(targets)

    def train_from_cache(self, targets: np.ndarray) -> float:
        """Backward pass + optimizer step reusing the last cached forward.

        Pairs with ``forward(X, cache=True)``: together they are exactly
        :meth:`train_batch`, minus the redundant second forward when the
        caller already needed the predictions (the DQN training step).
        """
        if self._forward_cache is None:
            raise DataError("no cached forward pass; call forward(X, cache=True) first")
        outputs, pre_activations, activations = self._forward_cache
        self._forward_cache = None
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(outputs.shape)
        if targets.shape != outputs.shape:
            raise DataError(
                f"targets shape {targets.shape} does not match outputs {outputs.shape}"
            )
        n = activations[0].shape[0]
        factor = _ACTIVATION_FACTORS[self.activation]
        buffers = self._deltas_for(n)
        delta = buffers[-1]
        np.subtract(outputs, targets, out=delta)
        loss = float(np.mean(delta * delta))
        delta *= 2.0
        delta /= n
        for layer in reversed(range(len(self.weights))):
            np.matmul(activations[layer].T, delta, out=self._weight_grads[layer])
            np.sum(delta, axis=0, out=self._bias_grads[layer])
            if layer > 0:
                previous = buffers[layer - 1]
                np.matmul(delta, self.weights[layer].T, out=previous)
                previous *= factor(pre_activations[layer - 1])
                delta = previous
        self.optimizer.step([self._flat_params], [self._flat_grads])
        return loss

    # ------------------------------------------------------------------
    def get_parameters(self) -> list[np.ndarray]:
        """Copies of all weights then biases (for target-network sync)."""
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters`."""
        expected = len(self.weights) + len(self.biases)
        if len(parameters) != expected:
            raise ConfigurationError(
                f"expected {expected} parameter arrays, got {len(parameters)}"
            )
        count = len(self.weights)
        for i in range(count):
            if parameters[i].shape != self.weights[i].shape:
                raise ConfigurationError("weight shape mismatch in set_parameters")
        for i in range(len(self.biases)):
            if parameters[count + i].shape != self.biases[i].shape:
                raise ConfigurationError("bias shape mismatch in set_parameters")
        for i in range(count):
            self.weights[i][...] = parameters[i]
        for i in range(len(self.biases)):
            self.biases[i][...] = parameters[count + i]

    def copy_from(self, other: "MLP") -> None:
        """Hard-sync this network's parameters from another MLP."""
        if self.layer_sizes == other.layer_sizes:
            np.copyto(self._flat_params, other._flat_params)
        else:
            self.set_parameters(other.get_parameters())

    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle layer arrays as plain copies (views don't survive pickling)."""
        return {
            "layer_sizes": self.layer_sizes,
            "activation": self.activation,
            "optimizer": self.optimizer,
            "parameters": self.get_parameters(),
        }

    def __setstate__(self, state) -> None:
        self.layer_sizes = tuple(state["layer_sizes"])
        self.activation = state["activation"]
        self.optimizer = state["optimizer"]
        self._allocate_storage()
        self.set_parameters(state["parameters"])
