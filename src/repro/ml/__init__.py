"""From-scratch machine-learning substrate (numpy only).

The paper's pipeline uses classical models throughout: linear SVMs with the
squared-hinge loss of Eq. 8 for the local process, AdaBoost and Random
Forest as local-process alternatives, kNN for the CRL environment
definition, k-means for the offline clustering mode, and a multilayer
perceptron as the Deep Q-network function approximator. None of these are
available as dependencies in the build environment, so this subpackage
implements them directly on numpy with a small, sklearn-like interface
(`fit` / `predict` / `get_params`).
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, clone
from repro.ml.preprocessing import MinMaxScaler, OneHotEncoder, StandardScaler
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.svm import LinearSVC, LinearSVR
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.adaboost import AdaBoostClassifier, AdaBoostRegressor
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.kmeans import KMeans
from repro.ml.neural import MLP, Adam, SGD
from repro.ml.logistic import LogisticRegression, OneVsRestClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.mlp_regressor import MLPRegressor
from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    rmse,
)
from repro.ml.model_selection import GridSearch, KFold, train_test_split

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "RegressorMixin",
    "clone",
    "MinMaxScaler",
    "OneHotEncoder",
    "StandardScaler",
    "LinearRegression",
    "RidgeRegression",
    "LinearSVC",
    "LinearSVR",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "AdaBoostClassifier",
    "AdaBoostRegressor",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "KMeans",
    "MLP",
    "Adam",
    "SGD",
    "LogisticRegression",
    "OneVsRestClassifier",
    "GaussianNB",
    "GradientBoostingRegressor",
    "MLPRegressor",
    "accuracy_score",
    "f1_score",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "rmse",
    "GridSearch",
    "KFold",
    "train_test_split",
]
