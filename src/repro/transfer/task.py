"""Learning-task wrappers shared by the MTL strategies.

A :class:`LearningTask` pairs the raw :class:`~repro.building.dataset.TaskData`
with a fitted predictor; a :class:`TaskModelSet` is the θ of the paper — the
collection of per-task model parameters that both the decision function
H(J; θ) and the importance metric operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.building.dataset import TaskData
from repro.errors import DataError, NotFittedError


@dataclass
class LearningTask:
    """One task j: its data plus the fitted model θ_j.

    ``model`` may be any object with ``predict(X) -> array``; ``None`` means
    the task has not been trained (or was deliberately dropped, which is how
    leave-one-out importance evaluation represents J \\ {j}).
    """

    data: TaskData
    model: object | None = None

    @property
    def task_id(self) -> int:
        return self.data.task_id

    @property
    def is_fitted(self) -> bool:
        return self.model is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise NotFittedError(f"task {self.task_id} has no fitted model")
        return np.asarray(self.model.predict(X), dtype=float)


class TaskModelSet:
    """θ = {θ_j}: the fitted models of a task set, indexable by task id."""

    def __init__(self, tasks: Iterable[LearningTask]) -> None:
        self._tasks: dict[int, LearningTask] = {}
        for task in tasks:
            if task.task_id in self._tasks:
                raise DataError(f"duplicate task id {task.task_id}")
            self._tasks[task.task_id] = task
        if not self._tasks:
            raise DataError("TaskModelSet must contain at least one task")

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[LearningTask]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def get(self, task_id: int) -> LearningTask | None:
        return self._tasks.get(task_id)

    @property
    def task_ids(self) -> list[int]:
        return sorted(self._tasks)

    def without(self, task_id: int) -> "TaskModelSet":
        """J \\ {j}: a view lacking one task (for Definition 1)."""
        if task_id not in self._tasks:
            raise DataError(f"task {task_id} not in this set")
        remaining = [t for i, t in self._tasks.items() if i != task_id]
        if not remaining:
            raise DataError("cannot drop the only task in the set")
        return TaskModelSet(remaining)

    def restricted_to(self, task_ids: Iterable[int]) -> "TaskModelSet":
        """Subset view containing only ``task_ids`` (allocation outcomes)."""
        wanted = set(task_ids)
        members = [t for i, t in self._tasks.items() if i in wanted]
        if not members:
            raise DataError("restriction produced an empty task set")
        return TaskModelSet(members)

    def lookup(self, building_id: int, chiller_id: int, plr: float) -> LearningTask | None:
        """The task covering (chiller, PLR band), or None if absent/dropped."""
        for task in self._tasks.values():
            data = task.data
            if (
                data.building_id == building_id
                and data.chiller_id == chiller_id
                and data.band[0] <= plr < data.band[1]
            ):
                return task
        return None
