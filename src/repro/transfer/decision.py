"""The decision function H(J; θ) over chiller sequencing.

Implements the paper's example instantiation

    H(J; θ) = 1 − |D − D(θ)| / D

where ``D`` is the ideal decision performance (the minimum true power the
plant could draw) and ``D(θ)`` is the power realized when sequencing uses
the task models' COP predictions. Tasks that are absent from the model set
(never trained, dropped for leave-one-out importance, or not allocated)
fall back to the machine's nameplate COP estimate — the prediction an
operator would use without any data-driven model — so excluding a task
degrades exactly the decisions that task would have informed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.building.chiller import Chiller
from repro.building.dataset import BuildingOperationDataset
from repro.building.sequencing import decision_performance
from repro.errors import DataError
from repro.transfer.task import TaskModelSet

#: Defaults used to complete a decision-time feature vector: the sequencer
#: knows (plr, temperature) but not yet the hydronic telemetry of the hour.
DEFAULT_HUMIDITY = 0.68
DEFAULT_CONDITION = 1.0
DEFAULT_DELTA_T = 5.5
WATER_SPECIFIC_HEAT = 4.186


def nameplate_cop(chiller: Chiller) -> float:
    """The no-model fallback COP estimate.

    Without a data-driven task, the operator only knows the catalog rating —
    not the machine's age degradation, unit bias, or part-load behaviour —
    so sequencing decisions made from this estimate are systematically off
    for old or off-design-operated machines. That error is what makes a
    dropped task *cost* something, i.e. what gives tasks their importance.
    """
    return chiller.model_type.rated_cop


class MTLDecisionModel:
    """Scores trained task models by the decisions they induce.

    Parameters
    ----------
    dataset:
        The generated building dataset (provides plants and scenarios).
    model_set:
        The fitted θ to evaluate.
    humidity, condition:
        Decision-time context defaults; override with the day's sensed
        values when available.
    """

    def __init__(
        self,
        dataset: BuildingOperationDataset,
        model_set: TaskModelSet,
        *,
        humidity: float = DEFAULT_HUMIDITY,
        condition: float = DEFAULT_CONDITION,
    ) -> None:
        self.dataset = dataset
        self.model_set = model_set
        self.humidity = float(humidity)
        self.condition = float(condition)
        self._cache: dict[tuple[int, int, float, float], float] = {}

    # ------------------------------------------------------------------
    def _feature_row(self, chiller: Chiller, plr: float, outdoor_temp: float) -> np.ndarray:
        """Decision-time feature vector matching TASK_FEATURE_COLUMNS."""
        load_share = plr * chiller.capacity_kw
        flow = load_share / (WATER_SPECIFIC_HEAT * DEFAULT_DELTA_T)
        return np.array(
            [[plr, outdoor_temp, self.humidity, self.condition, flow, DEFAULT_DELTA_T]]
        )

    def predicted_cop(self, chiller: Chiller, plr: float, outdoor_temp: float) -> float:
        """COP prediction used by the sequencer (cached per operating point)."""
        key = (chiller.building_id, chiller.chiller_id, round(plr, 4), round(outdoor_temp, 2))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        task = self.model_set.lookup(chiller.building_id, chiller.chiller_id, plr)
        if task is None or not task.is_fitted:
            value = nameplate_cop(chiller)
        else:
            value = float(task.predict(self._feature_row(chiller, plr, outdoor_temp))[0])
            value = float(np.clip(value, 0.5, 12.0))
        self._cache[key] = value
        return value

    def cop_fn(self):
        """A CopFunction closure for :func:`repro.building.sequencing.sequence_chillers`."""
        return lambda chiller, plr, temp: self.predicted_cop(chiller, plr, temp)

    # ------------------------------------------------------------------
    def building_performance(
        self, building_id: int, scenarios: Sequence[tuple[float, float]]
    ) -> float:
        """H restricted to one building's plant over the given scenarios."""
        if not 0 <= building_id < len(self.dataset.plants):
            raise DataError(f"building_id {building_id} out of range")
        plant = self.dataset.plants[building_id]
        return decision_performance(plant.chillers, scenarios, cop_fn=self.cop_fn())

    def overall_performance(self, day: int) -> float:
        """H(J; θ) across all buildings for decision epoch ``day``."""
        scores = []
        for building_id in range(len(self.dataset.plants)):
            scenarios = self.dataset.scenarios_for_day(building_id, day)
            if scenarios:
                scores.append(self.building_performance(building_id, scenarios))
        if not scores:
            raise DataError(f"no positive-load scenarios on day {day}")
        return float(np.mean(scores))

    def with_model_set(self, model_set: TaskModelSet) -> "MTLDecisionModel":
        """A sibling evaluator with a different θ (cache not shared)."""
        return MTLDecisionModel(
            self.dataset, model_set, humidity=self.humidity, condition=self.condition
        )
