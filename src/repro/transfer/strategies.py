"""MTL training strategies: independent, self-adapted, clustered.

The paper's dataset [22] supports "independent multi-task learning,
self-adapted multi-task learning and clustered multi-task learning based on
SVM, AdaBoost and Random Forest". We implement all three regimes over any
base estimator from :mod:`repro.ml`:

- **IndependentMTL** — every task trains only on its own samples (the
  no-transfer baseline; suffers most from data scarcity).
- **SelfAdaptedMTL** — instance transfer: a task's training set is augmented
  with samples borrowed from its most similar tasks (similarity measured on
  the task descriptor), weighted down by distance via subsampling.
- **ClusteredMTL** — tasks are clustered on their descriptors (k-means) and
  each cluster trains one shared model on the pooled samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.building.dataset import TaskData
from repro.errors import ConfigurationError, DataError
from repro.ml.base import BaseEstimator, clone
from repro.ml.kmeans import KMeans
from repro.ml.knn import pairwise_distances
from repro.transfer.task import LearningTask, TaskModelSet
from repro.utils.rng import as_rng


class MTLStrategy:
    """Base class: turns a list of :class:`TaskData` into a fitted
    :class:`TaskModelSet` using a prototype base estimator."""

    def __init__(self, base_model: BaseEstimator, *, seed: int | None = 0) -> None:
        self.base_model = base_model
        self.seed = seed

    def fit(self, tasks: Sequence[TaskData]) -> TaskModelSet:
        raise NotImplementedError

    def _check_tasks(self, tasks: Sequence[TaskData]) -> None:
        if not tasks:
            raise DataError("fit requires at least one task")


class IndependentMTL(MTLStrategy):
    """Each task trains in isolation on its own (possibly scarce) samples."""

    def fit(self, tasks: Sequence[TaskData]) -> TaskModelSet:
        self._check_tasks(tasks)
        fitted = []
        for task in tasks:
            model = clone(self.base_model)
            model.fit(task.X, task.y)
            fitted.append(LearningTask(data=task, model=model))
        return TaskModelSet(fitted)


class SelfAdaptedMTL(MTLStrategy):
    """Instance transfer from the ``n_donors`` most similar tasks.

    For each target task, donor samples are drawn from similar tasks with a
    per-donor budget that decays with descriptor distance, so close tasks
    contribute more. ``transfer_ratio`` caps the total borrowed mass
    relative to the target's own sample count — the standard guard against
    negative transfer swamping local evidence.
    """

    def __init__(
        self,
        base_model: BaseEstimator,
        *,
        n_donors: int = 3,
        transfer_ratio: float = 2.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__(base_model, seed=seed)
        if n_donors < 1:
            raise ConfigurationError(f"n_donors must be >= 1, got {n_donors}")
        if transfer_ratio <= 0:
            raise ConfigurationError(f"transfer_ratio must be > 0, got {transfer_ratio}")
        self.n_donors = int(n_donors)
        self.transfer_ratio = float(transfer_ratio)

    def fit(self, tasks: Sequence[TaskData]) -> TaskModelSet:
        self._check_tasks(tasks)
        rng = as_rng(self.seed)
        descriptors = np.vstack([task.descriptor for task in tasks])
        distances = pairwise_distances(descriptors, descriptors)
        fitted = []
        for index, task in enumerate(tasks):
            order = np.argsort(distances[index], kind="stable")
            donors = [i for i in order if i != index][: self.n_donors]
            X_parts = [task.X]
            y_parts = [task.y]
            budget = int(self.transfer_ratio * task.n_samples)
            for donor_index in donors:
                donor = tasks[donor_index]
                distance = distances[index, donor_index]
                weight = 1.0 / (1.0 + distance)
                take = min(donor.n_samples, max(1, int(budget * weight / len(donors))))
                picked = rng.choice(donor.n_samples, size=take, replace=False)
                X_parts.append(donor.X[picked])
                y_parts.append(donor.y[picked])
            model = clone(self.base_model)
            model.fit(np.vstack(X_parts), np.concatenate(y_parts))
            fitted.append(LearningTask(data=task, model=model))
        return TaskModelSet(fitted)


class FineTunedMTL(MTLStrategy):
    """Parameter transfer: one global model fine-tuned per task.

    The other classic transfer regime (alongside the instance transfer of
    :class:`SelfAdaptedMTL`): a shared network is pre-trained on the pooled
    samples of every task, then each task fine-tunes a *copy* on its own
    (scarce) data. Requires a base model exposing ``clone_for_finetuning``
    (see :class:`repro.ml.mlp_regressor.MLPRegressor`).

    Parameters
    ----------
    finetune_epochs:
        Training epochs of the per-task fine-tuning pass (kept small so
        scarce tasks do not overfit away the shared representation).
    """

    def __init__(
        self,
        base_model: BaseEstimator,
        *,
        finetune_epochs: int = 30,
        seed: int | None = 0,
    ) -> None:
        super().__init__(base_model, seed=seed)
        if finetune_epochs < 1:
            raise ConfigurationError(f"finetune_epochs must be >= 1, got {finetune_epochs}")
        if not hasattr(base_model, "clone_for_finetuning"):
            raise ConfigurationError(
                "FineTunedMTL needs a base model with clone_for_finetuning() "
                "(e.g. repro.ml.MLPRegressor)"
            )
        self.finetune_epochs = int(finetune_epochs)

    def fit(self, tasks: Sequence[TaskData]) -> TaskModelSet:
        self._check_tasks(tasks)
        pooled_x = np.vstack([task.X for task in tasks])
        pooled_y = np.concatenate([task.y for task in tasks])
        global_model = clone(self.base_model)
        global_model.fit(pooled_x, pooled_y)
        fitted = []
        for task in tasks:
            local = global_model.clone_for_finetuning()
            local.epochs = self.finetune_epochs
            local.fit(task.X, task.y)
            fitted.append(LearningTask(data=task, model=local))
        return TaskModelSet(fitted)


class ClusteredMTL(MTLStrategy):
    """Cluster tasks by descriptor; one shared model per cluster."""

    def __init__(
        self,
        base_model: BaseEstimator,
        *,
        n_clusters: int = 6,
        seed: int | None = 0,
    ) -> None:
        super().__init__(base_model, seed=seed)
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)

    def fit(self, tasks: Sequence[TaskData]) -> TaskModelSet:
        self._check_tasks(tasks)
        descriptors = np.vstack([task.descriptor for task in tasks])
        k = min(self.n_clusters, len(tasks))
        if k == 1:
            labels = np.zeros(len(tasks), dtype=int)
        else:
            labels = KMeans(n_clusters=k, seed=self.seed).fit_predict(descriptors)
        cluster_models: dict[int, object] = {}
        for cluster in np.unique(labels):
            members = [tasks[i] for i in np.flatnonzero(labels == cluster)]
            X = np.vstack([m.X for m in members])
            y = np.concatenate([m.y for m in members])
            model = clone(self.base_model)
            model.fit(X, y)
            cluster_models[int(cluster)] = model
        fitted = [
            LearningTask(data=task, model=cluster_models[int(labels[i])])
            for i, task in enumerate(tasks)
        ]
        return TaskModelSet(fitted)
