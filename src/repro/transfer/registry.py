"""Factory registry for the MTL strategy × base-model grid.

The paper's dataset supports three MTL regimes over three base models
(SVM, AdaBoost, Random Forest). This registry builds any combination by
name so experiments can sweep the grid declaratively.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.mlp_regressor import MLPRegressor
from repro.ml.svm import LinearSVR
from repro.transfer.strategies import (
    ClusteredMTL,
    FineTunedMTL,
    IndependentMTL,
    MTLStrategy,
    SelfAdaptedMTL,
)

_BASE_MODELS = {
    "svm": lambda seed: LinearSVR(seed=seed),
    "adaboost": lambda seed: AdaBoostRegressor(n_estimators=15, max_depth=3, seed=seed),
    "random_forest": lambda seed: RandomForestRegressor(n_estimators=15, max_depth=6, seed=seed),
    "ridge": lambda seed: RidgeRegression(alpha=1.0),
    "gradient_boosting": lambda seed: GradientBoostingRegressor(
        n_estimators=30, max_depth=3, seed=seed
    ),
    "mlp": lambda seed: MLPRegressor(hidden_sizes=(32,), epochs=60, seed=seed),
}

_STRATEGIES = {
    "independent": lambda base, seed: IndependentMTL(base, seed=seed),
    "self_adapted": lambda base, seed: SelfAdaptedMTL(base, seed=seed),
    "clustered": lambda base, seed: ClusteredMTL(base, seed=seed),
    "fine_tuned": lambda base, seed: FineTunedMTL(base, seed=seed),
}


def available_strategies() -> list[str]:
    """Names accepted by :func:`make_strategy` (strategy axis)."""
    return sorted(_STRATEGIES)


def available_base_models() -> list[str]:
    """Names accepted by :func:`make_base_model` (model axis)."""
    return sorted(_BASE_MODELS)


def make_base_model(name: str, *, seed: int | None = 0) -> BaseEstimator:
    """Instantiate a base estimator by registry name."""
    try:
        factory = _BASE_MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown base model {name!r}; choose from {available_base_models()}"
        ) from None
    return factory(seed)


def make_strategy(
    strategy: str, base_model: str = "ridge", *, seed: int | None = 0
) -> MTLStrategy:
    """Instantiate an MTL strategy over a base model, both by name."""
    try:
        factory = _STRATEGIES[strategy]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; choose from {available_strategies()}"
        ) from None
    return factory(make_base_model(base_model, seed=seed), seed)
