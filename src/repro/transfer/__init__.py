"""Multi-task transfer learning (MTL) on the synthetic building tasks.

Implements the three MTL regimes the paper's dataset supports —
independent, self-adapted (instance transfer), and clustered — over any of
the substrate models (SVM / AdaBoost / Random Forest / Ridge), plus the
decision function H(J; θ) that scores a set of trained task models by the
quality of the chiller-sequencing decisions they induce.
"""

from repro.transfer.task import LearningTask, TaskModelSet
from repro.transfer.strategies import (
    ClusteredMTL,
    FineTunedMTL,
    IndependentMTL,
    MTLStrategy,
    SelfAdaptedMTL,
)
from repro.transfer.decision import MTLDecisionModel
from repro.transfer.evaluation import (
    errors_by_scarcity,
    holdout_errors,
    split_tasks_chronological,
)
from repro.transfer.registry import available_strategies, make_base_model, make_strategy

__all__ = [
    "LearningTask",
    "TaskModelSet",
    "MTLStrategy",
    "IndependentMTL",
    "SelfAdaptedMTL",
    "ClusteredMTL",
    "FineTunedMTL",
    "MTLDecisionModel",
    "split_tasks_chronological",
    "holdout_errors",
    "errors_by_scarcity",
    "available_strategies",
    "make_base_model",
    "make_strategy",
]
