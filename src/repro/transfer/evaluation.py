"""Held-out evaluation utilities for MTL task models.

Training-set error always flatters no-transfer baselines (they overfit
their own scarce samples), so credible MTL comparisons need per-task
chronological splits and held-out scoring. These helpers standardize that
protocol — the same one `benchmarks/test_mtl_strategies.py` reports with.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.building.dataset import TaskData
from repro.errors import ConfigurationError, DataError
from repro.transfer.task import TaskModelSet


def split_tasks_chronological(
    tasks: Sequence[TaskData],
    *,
    holdout_fraction: float = 0.3,
    scarce_budget: int | None = None,
) -> tuple[list[TaskData], dict[int, tuple[np.ndarray, np.ndarray]]]:
    """Per-task chronological split: early rows train, late rows test.

    Chronological (not random) splitting matches deployment — models
    trained on the past predict the future. When ``scarce_budget`` is
    given, the scarcest quartile of tasks is additionally capped at that
    many training rows, instantiating the paper's "insufficient training
    samples on the edge" regime.

    Returns (train_tasks, holdouts) where ``holdouts[task_id] = (X, y)``.
    """
    if not tasks:
        raise DataError("split needs at least one task")
    if not 0.0 < holdout_fraction < 1.0:
        raise ConfigurationError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    if scarce_budget is not None and scarce_budget < 1:
        raise ConfigurationError(f"scarce_budget must be >= 1, got {scarce_budget}")
    counts = sorted(task.n_samples for task in tasks)
    threshold = counts[len(counts) // 4]
    train_tasks: list[TaskData] = []
    holdouts: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for task in tasks:
        if task.n_samples < 3:
            raise DataError(
                f"task {task.task_id} has only {task.n_samples} samples; cannot split"
            )
        cut = max(2, int(round((1.0 - holdout_fraction) * task.n_samples)))
        cut = min(cut, task.n_samples - 1)
        if scarce_budget is not None and task.n_samples <= threshold:
            cut = min(cut, scarce_budget)
        train_tasks.append(replace(task, X=task.X[:cut], y=task.y[:cut]))
        holdouts[task.task_id] = (task.X[cut:], task.y[cut:])
    return train_tasks, holdouts


def holdout_errors(
    model_set: TaskModelSet,
    holdouts: dict[int, tuple[np.ndarray, np.ndarray]],
) -> dict[int, float]:
    """Per-task relative MAE on held-out rows."""
    errors: dict[int, float] = {}
    for task in model_set:
        held = holdouts.get(task.task_id)
        if held is None:
            raise DataError(f"no holdout recorded for task {task.task_id}")
        X, y = held
        if y.size == 0:
            raise DataError(f"task {task.task_id} has an empty holdout")
        predictions = task.predict(X)
        errors[task.task_id] = float(np.mean(np.abs(predictions - y) / y))
    return errors


def errors_by_scarcity(
    model_set: TaskModelSet,
    holdouts: dict[int, tuple[np.ndarray, np.ndarray]],
) -> tuple[float, float]:
    """(mean error over scarcest quartile, mean error over the rest)."""
    per_task = holdout_errors(model_set, holdouts)
    counts = sorted(task.data.n_samples for task in model_set)
    threshold = counts[len(counts) // 4]
    scarce, rich = [], []
    for task in model_set:
        bucket = scarce if task.data.n_samples <= threshold else rich
        bucket.append(per_task[task.task_id])
    if not scarce or not rich:
        raise DataError("scarcity split produced an empty bucket")
    return float(np.mean(scarce)), float(np.mean(rich))
