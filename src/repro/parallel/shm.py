"""Shared-memory data plane for worker fan-outs (plasma-store style).

PR 3's fan-out re-pickled the full payload of every task into every
worker, so large read-only inputs — the building dataset's sensing
matrices, :class:`~repro.rl.crl.EnvironmentStore` stacked matrices, the
Table I feature arrays, and the sharded fleet runner's whole-fleet SoA
node columns (:func:`repro.edgesim.shard.fleet_columns`, sliced per
region group inside each worker) — dominated dispatch cost. This module
moves that data onto a zero-copy plane, the shape Ray's plasma store
proved out (Moritz et al., see PAPERS.md):

- :meth:`SharedArrayStore.share` pickles an object **once** with
  protocol 5, spilling every contiguous buffer (numpy array data)
  out-of-band into a single ``multiprocessing.shared_memory`` block.
- The returned :class:`SharedBlobRef` is a tiny picklable handle; workers
  call :meth:`SharedBlobRef.load` to attach the block and rebuild the
  object with its arrays *backed by the shared pages* — no copy, marked
  read-only. Attachments are cached per process, so a long-lived pool
  worker unpickles each published object at most once.
- Blocks are **refcounted** in the publishing process (``share`` acquires,
  :meth:`~SharedArrayStore.release` drops; at zero the segment is
  unlinked) and **versioned**: a ref's token embeds the publisher's
  version, and :func:`share_environment_store` wires republication to the
  existing ``EnvironmentStore.version``/``subscribe`` mutation hooks so a
  stale block can never be attached as current.
- When shared memory is unavailable (no ``/dev/shm``, permissions,
  exhausted space) the store degrades to carrying the pickled payload
  inline in the ref — slower, never wrong — and counts the fallback.

Metrics: ``repro_shm_bytes`` / ``repro_shm_blocks`` gauges,
``repro_shm_blocks_total`` / ``repro_shm_fallbacks_total`` counters.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.telemetry import get_registry

try:  # pragma: no cover - exercised implicitly on every platform we run on
    from multiprocessing import shared_memory

    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - stdlib always has it on CPython >= 3.8
    shared_memory = None
    _SHM_AVAILABLE = False

#: Prefix for every segment this process creates — makes leak checks
#: (`ls /dev/shm | grep repro_shm_`) and test assertions reliable.
SEGMENT_PREFIX = "repro_shm_"

#: Buffer alignment inside a block; keeps numpy views on cache lines.
_ALIGN = 64

_HEADER = struct.Struct("<Q")


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _encode(obj) -> tuple[bytes, list]:
    """Pickle ``obj`` once, spilling contiguous buffers out-of-band."""
    buffers: list = []

    def spill(picklebuffer) -> bool:
        # A falsy return spills the buffer out-of-band (we carry it in the
        # shared block); truthy keeps it in-band (non-contiguous data).
        try:
            raw = picklebuffer.raw()
        except BufferError:
            return True
        buffers.append(raw)
        return False

    payload = pickle.dumps(obj, protocol=5, buffer_callback=spill)
    return payload, buffers


def _block_size(payload: bytes, buffers: list) -> tuple[int, list[int]]:
    lengths = [len(payload)] + [buffer.nbytes for buffer in buffers]
    index = pickle.dumps(lengths)
    offset = _pad(_HEADER.size + len(index))
    for length in lengths:
        offset = _pad(offset + length)
    return offset, lengths


def _write_block(view: memoryview, payload: bytes, buffers: list) -> None:
    lengths = [len(payload)] + [buffer.nbytes for buffer in buffers]
    index = pickle.dumps(lengths)
    view[: _HEADER.size] = _HEADER.pack(len(index))
    view[_HEADER.size : _HEADER.size + len(index)] = index
    offset = _pad(_HEADER.size + len(index))
    for chunk in [payload, *buffers]:
        size = chunk.nbytes if isinstance(chunk, memoryview) else len(chunk)
        view[offset : offset + size] = chunk
        offset = _pad(offset + size)


def _read_block(view: memoryview):
    (index_len,) = _HEADER.unpack_from(view, 0)
    lengths = pickle.loads(bytes(view[_HEADER.size : _HEADER.size + index_len]))
    offset = _pad(_HEADER.size + index_len)
    segments = []
    for length in lengths:
        segments.append(view[offset : offset + length].toreadonly())
        offset = _pad(offset + length)
    payload, buffers = bytes(segments[0]), segments[1:]
    return pickle.loads(payload, buffers=buffers)


# ----------------------------------------------------------------------
#: Per-process attachment cache: token -> (SharedMemory | None, object).
#: Bounded so long-lived pool workers do not accumulate dead objects.
_ATTACHED: OrderedDict[str, tuple] = OrderedDict()
_ATTACH_CACHE_SIZE = 32

#: SharedMemory handles whose mmap could not close because user code
#: still holds zero-copy views into it. Parking them here keeps __del__
#: from re-raising; the pages are reclaimed at process exit (the segment
#: itself is already unlinked by the publisher).
_unclosable: list = []


def _safe_close(shm) -> None:
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:
        _unclosable.append(shm)
    except OSError:  # pragma: no cover - close is best-effort
        pass


def _cache_attachment(token: str, shm, obj) -> None:
    _ATTACHED[token] = (shm, obj)
    _ATTACHED.move_to_end(token)
    while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
        _safe_close(_ATTACHED.popitem(last=False)[1][0])


@dataclass(frozen=True)
class SharedBlobRef:
    """Picklable handle to one published object.

    ``name`` is the shared-memory segment (``None`` means the pickled
    payload travels ``inline`` — the degraded mode). ``token`` is
    ``key@version`` and doubles as the worker-side cache key, so a
    republished object (new version) is never served from a stale
    attachment.
    """

    token: str
    name: str | None
    nbytes: int
    creator_pid: int
    inline: bytes | None = field(default=None, repr=False)

    def load(self):
        """The published object; zero-copy in shared mode, cached per process."""
        cached = _ATTACHED.get(self.token)
        if cached is not None:
            _ATTACHED.move_to_end(self.token)
            return cached[1]
        if self.name is None:
            obj = pickle.loads(self.inline)
            _cache_attachment(self.token, None, obj)
            return obj
        # NOTE on the resource tracker: with the fork start method every
        # process shares one tracker, and SharedMemory registration is a
        # set — worker attaches are idempotent no-ops there, and the
        # creator's unlink() is the single cleanup point. Explicitly
        # unregistering here would race that unlink (KeyError noise in
        # the tracker), so attachments are left registered.
        shm = shared_memory.SharedMemory(name=self.name)
        obj = _read_block(shm.buf)
        _cache_attachment(self.token, shm, obj)
        return obj


def resolve_shared(value):
    """``value.load()`` for refs, ``value`` unchanged otherwise.

    Worker functions call this on payload fields that may travel either
    inline (small objects) or by reference (published ones).
    """
    if isinstance(value, SharedBlobRef):
        return value.load()
    return value


@dataclass
class _Block:
    ref: SharedBlobRef
    shm: object  # SharedMemory | None (inline fallback)
    refs: int


class SharedArrayStore:
    """Publisher-side registry of shared blocks, refcounted and versioned.

    One store lives in the coordinating process (see
    :func:`get_shared_store`); worker processes only ever hold
    :class:`SharedBlobRef` handles. ``share`` is idempotent per
    ``(key, version)`` — re-sharing bumps the refcount and returns the
    existing ref; a *new* version drops the old block (once unreferenced)
    and publishes a fresh one.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, _Block] = {}
        self._counter = 0
        self._pid = os.getpid()
        self._watched: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def total_bytes(self) -> int:
        return sum(block.ref.nbytes for block in self._blocks.values())

    def refcount(self, key: str) -> int:
        block = self._blocks.get(key)
        return block.refs if block is not None else 0

    def ref_for(self, key: str) -> SharedBlobRef | None:
        block = self._blocks.get(key)
        return block.ref if block is not None else None

    def _segment_name(self) -> str:
        self._counter += 1
        return f"{SEGMENT_PREFIX}{self._pid}_{self._counter}"

    def _gauges(self) -> None:
        registry = get_registry()
        registry.gauge(
            "repro_shm_bytes", help="Bytes resident in shared-memory blocks"
        ).set(self.total_bytes)
        registry.gauge(
            "repro_shm_blocks", help="Live shared-memory blocks"
        ).set(len(self._blocks))

    # ------------------------------------------------------------------
    def share(self, key: str, obj, *, version: int = 0) -> SharedBlobRef:
        """Publish ``obj`` under ``key`` (idempotent per version) and acquire it."""
        token = f"{key}@{version}"
        block = self._blocks.get(key)
        if block is not None:
            if block.ref.token == token:
                block.refs += 1
                return block.ref
            self.drop(key)  # stale version: republish below
        payload, buffers = _encode(obj)
        size, _ = _block_size(payload, buffers)
        shm = None
        if _SHM_AVAILABLE:
            for _ in range(8):  # retry past stale same-name segments
                try:
                    shm = shared_memory.SharedMemory(
                        create=True, size=size, name=self._segment_name()
                    )
                    break
                except FileExistsError:
                    continue
                except OSError:
                    shm = None
                    break
        if shm is not None:
            _write_block(shm.buf, payload, buffers)
            ref = SharedBlobRef(
                token=token, name=shm.name, nbytes=size, creator_pid=self._pid
            )
            get_registry().counter(
                "repro_shm_blocks_total", help="Shared-memory blocks published"
            ).inc()
        else:
            ref = SharedBlobRef(
                token=token,
                name=None,
                nbytes=len(payload),
                creator_pid=self._pid,
                inline=pickle.dumps(obj),
            )
            get_registry().counter(
                "repro_shm_fallbacks_total",
                help="Objects published inline because shared memory was unavailable",
            ).inc()
        self._blocks[key] = _Block(ref=ref, shm=shm, refs=1)
        self._gauges()
        return ref

    def release(self, key: str) -> None:
        """Drop one reference; the block is unlinked when none remain."""
        block = self._blocks.get(key)
        if block is None:
            return
        block.refs -= 1
        if block.refs <= 0:
            self.drop(key)

    def drop(self, key: str) -> None:
        """Unlink ``key``'s block regardless of refcount (e.g. stale version)."""
        block = self._blocks.pop(key, None)
        if block is None:
            return
        attached = _ATTACHED.pop(block.ref.token, None)
        if attached is not None:
            _safe_close(attached[0])
        if block.shm is not None:
            try:
                block.shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            _safe_close(block.shm)
        self._gauges()

    def release_all(self) -> None:
        for key in list(self._blocks):
            self.drop(key)

    # ------------------------------------------------------------------
    def watch(self, publisher, key: str) -> None:
        """Drop ``key`` whenever ``publisher`` mutates (idempotent per pair).

        ``publisher`` must expose ``subscribe(callback)`` — e.g.
        :class:`repro.rl.crl.EnvironmentStore`. The next ``share`` for the
        key (at the store's new ``version``) publishes a fresh block.
        """
        if self._watched.get(id(publisher)) == (key,):
            return
        publisher.subscribe(lambda: self.drop(key))
        self._watched[id(publisher)] = (key,)


def share_environment_store(store, *, shared: SharedArrayStore | None = None) -> dict:
    """Publish an ``EnvironmentStore``'s stacked matrices, version-tagged.

    Returns ``{"sensing": ref, "importance": ref}``. The blocks carry the
    store's current ``version``; a mutation (``add``) drops them via the
    ``subscribe`` hook, so the next call republishes fresh stacks and
    workers holding old refs keep attaching the *old immutable* block —
    stale data is impossible to mistake for current because the token
    embeds the version.
    """
    shared = shared if shared is not None else get_shared_store()
    key = f"envstore:{id(store)}"
    shared.watch(store, key)
    ref = shared.share(
        key,
        {"sensing": store.sensing_matrix, "importance": store.importance_matrix},
        version=store.version,
    )
    return {"store": ref}


# ----------------------------------------------------------------------
_shared_store: SharedArrayStore | None = None


def get_shared_store() -> SharedArrayStore:
    """The process-wide publisher store, created lazily."""
    global _shared_store
    if _shared_store is None or _shared_store._pid != os.getpid():
        _shared_store = SharedArrayStore()
    return _shared_store


def release_shared_store() -> None:
    """Unlink every block the ambient store published (idempotent)."""
    global _shared_store
    if _shared_store is not None and _shared_store._pid == os.getpid():
        _shared_store.release_all()


atexit.register(release_shared_store)
