"""Process-parallel fan-out for embarrassingly parallel pipeline stages.

The CRL training phase trains one DQN per cluster/neighbourhood on
disjoint state — the canonical fan-out. :class:`ParallelTrainer` runs a
picklable module-level worker function over a list of picklable payloads
on a :class:`~concurrent.futures.ProcessPoolExecutor`, with three
guarantees the rest of the pipeline relies on:

- **Determinism** — all randomness must come from seeds carried *inside*
  the payloads (see :func:`repro.utils.rng.derive_seeds`), so ``jobs=1``
  and ``jobs=N`` produce byte-identical results regardless of completion
  order (results are returned in submission order).
- **Telemetry round-trip** — each worker runs under a private
  :class:`~repro.telemetry.MetricsRegistry` and :class:`~repro.telemetry.RunTrace`;
  the parent merges worker counters/gauges/histograms into the ambient
  registry and grafts worker spans under a ``parallel.worker`` span in
  the ambient trace (worker spans are re-based onto the parent timeline
  and marked ``clock="worker"``).
- **Graceful serial fallback** — ``jobs=1``, single-item workloads, or
  any pickling/pool failure degrade to an in-process loop (counted by
  ``repro_parallel_fallbacks_total``); the parallel path is an
  optimization, never a requirement.
"""

from __future__ import annotations

import itertools
import os
import pickle
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.parallel.pool import get_worker_pool
from repro.telemetry import (
    MetricsRegistry,
    RunTrace,
    current_run_trace,
    get_registry,
    snapshot,
    span,
    use_registry,
    use_run_trace,
    use_trace_id,
)

#: Parent-side task tokens: unique per submission, so telemetry merges
#: are idempotent even if a result is observed twice (pool reuse, retry).
_token_counter = itertools.count()

#: Tokens whose telemetry has already been merged, bounded LRU.
_merged_tokens: OrderedDict[str, None] = OrderedDict()
_MERGED_TOKEN_CAP = 8192


def _next_token() -> str:
    return f"{os.getpid()}:{next(_token_counter)}"


def mark_merged(token: str | None) -> bool:
    """True exactly once per token — the idempotency latch for merges."""
    if token is None:
        return True
    if token in _merged_tokens:
        return False
    _merged_tokens[token] = None
    while len(_merged_tokens) > _MERGED_TOKEN_CAP:
        _merged_tokens.popitem(last=False)
    return True


def _run_in_worker(
    fn: Callable, payload, token: str | None = None, trace_id: str | None = None
) -> tuple:
    """Execute ``fn(payload)`` under private telemetry sinks.

    Returns ``(value, spans, metrics, token)`` where ``spans`` is the
    worker trace as dicts and ``metrics`` is a registry snapshot — plain
    data, picklable back to the parent. The registry and trace are fresh
    per task (not per worker process), so each result carries exactly the
    deltas this task produced: a long-lived pool worker serving many
    batches can never leak counts across tasks, and ``token`` lets the
    parent merge each result at most once. When the parent propagates a
    ``trace_id``, every span the task opens is stamped with it so the
    merge can re-parent the worker timeline under the originating
    request's span (see :func:`merge_worker_spans`).
    """
    registry = MetricsRegistry()
    trace = RunTrace(label="worker")
    with use_registry(registry), use_run_trace(trace), use_trace_id(trace_id):
        value = fn(payload)
    return value, [record.to_dict() for record in trace.spans], snapshot(registry), token


def merge_worker_metrics(metrics: dict) -> None:
    """Fold a worker registry snapshot into the ambient registry.

    Counters are incremented by the worker's value, gauges adopt the
    worker's last value, histograms merge bucket-by-bucket. Families the
    ambient registry already holds with conflicting kinds/buckets are
    skipped rather than corrupted.
    """
    registry = get_registry()
    for entry in metrics.get("metrics", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        help_text = entry.get("help", "")
        try:
            if entry["kind"] == "counter":
                registry.counter(name, help=help_text, **labels).inc(entry["value"])
            elif entry["kind"] == "gauge":
                registry.gauge(name, help=help_text, **labels).set(entry["value"])
            elif entry["kind"] == "histogram":
                _merge_histogram(registry, entry, help_text)
        except ConfigurationError:
            continue


def _merge_histogram(registry, entry: dict, help_text: str) -> None:
    buckets = entry.get("buckets", {})
    edges = tuple(float(edge) for edge in buckets if edge != "+Inf")
    if not edges:
        return
    histogram = registry.histogram(
        entry["name"], buckets=edges, help=help_text, **entry.get("labels", {})
    )
    if not hasattr(histogram, "bucket_counts"):  # null instrument: telemetry off
        return
    cumulative = [int(buckets[edge]) for edge in buckets if edge != "+Inf"]
    previous = 0
    for index, count in enumerate(cumulative):
        histogram.bucket_counts[index] += count - previous
        previous = count
    histogram.overflow += int(entry["count"]) - previous
    histogram.sum += float(entry["sum"])
    histogram.count += int(entry["count"])


def merge_worker_spans(spans: Sequence[dict], *, worker: int) -> None:
    """Graft a worker's span list into the ambient trace, if any.

    The worker timeline is re-based to start at the parent trace's
    current end; a synthetic ``parallel.worker`` span wraps it so flame
    views attribute the time correctly. Root worker spans stamped with a
    ``trace_id`` the parent trace has anchored (a request span minted by
    the dispatcher) re-parent under that anchor instead — cross-process
    request tracing: the worker-side solve lands under the originating
    request, not under the generic worker wrapper.
    """
    trace = current_run_trace()
    if trace is None or not spans:
        return
    base = trace.duration
    worker_end = max((s["end"] for s in spans if s.get("end") is not None), default=0.0)
    parent = trace.add_span(
        "parallel.worker",
        base,
        base + worker_end,
        attrs={"worker": worker, "clock": "worker"},
    )
    index_map: dict[int, int] = {}
    for original_index, record in enumerate(spans):
        end = record["end"] if record.get("end") is not None else record["start"]
        attrs = dict(record.get("attrs", {}))
        attrs.setdefault("clock", "worker")
        if record.get("parent") is not None:
            mapped_parent = index_map.get(record["parent"], parent)
        else:
            anchor = trace.anchors.get(str(attrs.get("trace_id", "")))
            mapped_parent = anchor if anchor is not None else parent
        index_map[original_index] = trace.add_span(
            record["name"],
            base + record["start"],
            base + end,
            attrs=attrs,
            parent=mapped_parent,
        )


class ParallelTrainer:
    """Runs ``fn`` over payloads across worker processes, in order.

    Fan-outs execute on the process-wide persistent
    :class:`~repro.parallel.pool.WorkerPool` — the executor is built once
    and reused, so repeated maps (per-epoch evaluator reruns, per-point
    allocator rebuilds) stop repaying spin-up. The pool may decline to
    parallelize (single core, workload smaller than the overhead, forked
    child); the map then runs serially in-process, which is always
    result-identical by the determinism contract.

    Parameters
    ----------
    fn:
        A module-level (hence picklable-by-reference) function of one
        picklable payload. All randomness must derive from the payload.
    jobs:
        Worker process count. ``1`` (the default) runs serially in the
        parent process — telemetry then flows into the ambient sinks
        directly instead of through the merge path.
    label:
        Span label for the fan-out (``parallel.map`` attr).
    estimated_cost_s:
        Caller's estimate of the workload's total *serial* seconds; lets
        the pool skip fan-outs whose parallel saving would not cover the
        dispatch/spin-up overhead. ``None`` trusts the caller's ``jobs``.
    force:
        Bypass the pool's adaptive checks (tests use this to exercise the
        multi-process path on small machines).
    """

    def __init__(
        self,
        fn: Callable,
        *,
        jobs: int = 1,
        label: str = "train",
        estimated_cost_s: float | None = None,
        force: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.fn = fn
        self.jobs = int(jobs)
        self.label = label
        self.estimated_cost_s = estimated_cost_s
        self.force = bool(force)

    # ------------------------------------------------------------------
    def _map_serial(self, payloads: Sequence, trace_ids: Sequence[str | None]) -> list:
        with span("parallel.map", label=self.label, jobs=1, tasks=len(payloads)):
            values = []
            for payload, trace_id in zip(payloads, trace_ids):
                with use_trace_id(trace_id):
                    values.append(self.fn(payload))
            return values

    def _map_parallel(
        self, payloads: Sequence, workers: int, trace_ids: Sequence[str | None]
    ) -> list:
        pool = get_worker_pool()
        with span("parallel.map", label=self.label, jobs=workers, tasks=len(payloads)):
            executor = pool.executor(workers)
            futures = [
                executor.submit(_run_in_worker, self.fn, payload, _next_token(), trace_id)
                for payload, trace_id in zip(payloads, trace_ids)
            ]
            outcomes = [future.result() for future in futures]
        values = []
        for worker, (value, spans, metrics, token) in enumerate(outcomes):
            if mark_merged(token):
                merge_worker_metrics(metrics)
                merge_worker_spans(spans, worker=worker)
            values.append(value)
        pool.count_tasks(len(payloads), label=self.label)
        get_registry().counter(
            "repro_parallel_tasks_total",
            help="Payloads executed by ParallelTrainer worker processes",
            label=self.label,
        ).inc(len(payloads))
        return values

    def map(self, payloads: Sequence, *, trace_ids: Sequence[str | None] | None = None) -> list:
        """``[fn(p) for p in payloads]``, fanned out when it pays off.

        ``trace_ids`` optionally aligns one request trace id per payload
        (``None`` entries allowed); each task then runs with that id as
        its ambient trace id, on both the serial and parallel paths.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if trace_ids is None:
            trace_ids = [None] * len(payloads)
        else:
            trace_ids = list(trace_ids)
            if len(trace_ids) != len(payloads):
                raise ConfigurationError(
                    f"trace_ids must align with payloads: {len(trace_ids)} != {len(payloads)}"
                )
        workers = get_worker_pool().effective_jobs(
            self.jobs,
            len(payloads),
            estimated_cost_s=self.estimated_cost_s,
            force=self.force,
        )
        if workers == 1:
            return self._map_serial(payloads, trace_ids)
        try:
            return self._map_parallel(payloads, workers, trace_ids)
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool, OSError) as exc:
            if isinstance(exc, BrokenProcessPool):
                get_worker_pool().reset()
            get_registry().counter(
                "repro_parallel_fallbacks_total",
                help="Parallel fan-outs degraded to the serial path",
                label=self.label,
            ).inc()
            with span("parallel.fallback", label=self.label, error=type(exc).__name__):
                return self._map_serial(payloads, trace_ids)
