"""Process-parallel fan-out for embarrassingly parallel pipeline stages.

The CRL training phase trains one DQN per cluster/neighbourhood on
disjoint state — the canonical fan-out. :class:`ParallelTrainer` runs a
picklable module-level worker function over a list of picklable payloads
on a :class:`~concurrent.futures.ProcessPoolExecutor`, with three
guarantees the rest of the pipeline relies on:

- **Determinism** — all randomness must come from seeds carried *inside*
  the payloads (see :func:`repro.utils.rng.derive_seeds`), so ``jobs=1``
  and ``jobs=N`` produce byte-identical results regardless of completion
  order (results are returned in submission order).
- **Telemetry round-trip** — each worker runs under a private
  :class:`~repro.telemetry.MetricsRegistry` and :class:`~repro.telemetry.RunTrace`;
  the parent merges worker counters/gauges/histograms into the ambient
  registry and grafts worker spans under a ``parallel.worker`` span in
  the ambient trace (worker spans are re-based onto the parent timeline
  and marked ``clock="worker"``).
- **Graceful serial fallback** — ``jobs=1``, single-item workloads, or
  any pickling/pool failure degrade to an in-process loop (counted by
  ``repro_parallel_fallbacks_total``); the parallel path is an
  optimization, never a requirement.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    RunTrace,
    current_run_trace,
    get_registry,
    snapshot,
    span,
    use_registry,
    use_run_trace,
)


def _run_in_worker(fn: Callable, payload) -> tuple:
    """Execute ``fn(payload)`` under private telemetry sinks.

    Returns ``(value, spans, metrics)`` where ``spans`` is the worker
    trace as dicts and ``metrics`` is a registry snapshot — both plain
    data, picklable back to the parent.
    """
    registry = MetricsRegistry()
    trace = RunTrace(label="worker")
    with use_registry(registry), use_run_trace(trace):
        value = fn(payload)
    return value, [record.to_dict() for record in trace.spans], snapshot(registry)


def merge_worker_metrics(metrics: dict) -> None:
    """Fold a worker registry snapshot into the ambient registry.

    Counters are incremented by the worker's value, gauges adopt the
    worker's last value, histograms merge bucket-by-bucket. Families the
    ambient registry already holds with conflicting kinds/buckets are
    skipped rather than corrupted.
    """
    registry = get_registry()
    for entry in metrics.get("metrics", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        help_text = entry.get("help", "")
        try:
            if entry["kind"] == "counter":
                registry.counter(name, help=help_text, **labels).inc(entry["value"])
            elif entry["kind"] == "gauge":
                registry.gauge(name, help=help_text, **labels).set(entry["value"])
            elif entry["kind"] == "histogram":
                _merge_histogram(registry, entry, help_text)
        except ConfigurationError:
            continue


def _merge_histogram(registry, entry: dict, help_text: str) -> None:
    buckets = entry.get("buckets", {})
    edges = tuple(float(edge) for edge in buckets if edge != "+Inf")
    if not edges:
        return
    histogram = registry.histogram(
        entry["name"], buckets=edges, help=help_text, **entry.get("labels", {})
    )
    if not hasattr(histogram, "bucket_counts"):  # null instrument: telemetry off
        return
    cumulative = [int(buckets[edge]) for edge in buckets if edge != "+Inf"]
    previous = 0
    for index, count in enumerate(cumulative):
        histogram.bucket_counts[index] += count - previous
        previous = count
    histogram.overflow += int(entry["count"]) - previous
    histogram.sum += float(entry["sum"])
    histogram.count += int(entry["count"])


def merge_worker_spans(spans: Sequence[dict], *, worker: int) -> None:
    """Graft a worker's span list into the ambient trace, if any.

    The worker timeline is re-based to start at the parent trace's
    current end; a synthetic ``parallel.worker`` span wraps it so flame
    views attribute the time correctly.
    """
    trace = current_run_trace()
    if trace is None or not spans:
        return
    base = trace.duration
    worker_end = max((s["end"] for s in spans if s.get("end") is not None), default=0.0)
    parent = trace.add_span(
        "parallel.worker",
        base,
        base + worker_end,
        attrs={"worker": worker, "clock": "worker"},
    )
    index_map: dict[int, int] = {}
    for original_index, record in enumerate(spans):
        end = record["end"] if record.get("end") is not None else record["start"]
        mapped_parent = (
            index_map.get(record["parent"], parent)
            if record.get("parent") is not None
            else parent
        )
        attrs = dict(record.get("attrs", {}))
        attrs.setdefault("clock", "worker")
        index_map[original_index] = trace.add_span(
            record["name"],
            base + record["start"],
            base + end,
            attrs=attrs,
            parent=mapped_parent,
        )


class ParallelTrainer:
    """Runs ``fn`` over payloads across worker processes, in order.

    Parameters
    ----------
    fn:
        A module-level (hence picklable-by-reference) function of one
        picklable payload. All randomness must derive from the payload.
    jobs:
        Worker process count. ``1`` (the default) runs serially in the
        parent process — telemetry then flows into the ambient sinks
        directly instead of through the merge path.
    label:
        Span label for the fan-out (``parallel.map`` attr).
    """

    def __init__(self, fn: Callable, *, jobs: int = 1, label: str = "train") -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.fn = fn
        self.jobs = int(jobs)
        self.label = label

    # ------------------------------------------------------------------
    def _map_serial(self, payloads: Sequence) -> list:
        with span("parallel.map", label=self.label, jobs=1, tasks=len(payloads)):
            return [self.fn(payload) for payload in payloads]

    def _map_parallel(self, payloads: Sequence) -> list:
        workers = min(self.jobs, len(payloads))
        with span("parallel.map", label=self.label, jobs=workers, tasks=len(payloads)):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_in_worker, self.fn, payload) for payload in payloads
                ]
                outcomes = [future.result() for future in futures]
        values = []
        for worker, (value, spans, metrics) in enumerate(outcomes):
            merge_worker_metrics(metrics)
            merge_worker_spans(spans, worker=worker)
            values.append(value)
        get_registry().counter(
            "repro_parallel_tasks_total",
            help="Payloads executed by ParallelTrainer worker processes",
            label=self.label,
        ).inc(len(payloads))
        return values

    def map(self, payloads: Sequence) -> list:
        """``[fn(p) for p in payloads]``, fanned out when it pays off."""
        payloads = list(payloads)
        if not payloads:
            return []
        if self.jobs == 1 or len(payloads) == 1:
            return self._map_serial(payloads)
        try:
            return self._map_parallel(payloads)
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool, OSError) as exc:
            get_registry().counter(
                "repro_parallel_fallbacks_total",
                help="Parallel fan-outs degraded to the serial path",
                label=self.label,
            ).inc()
            with span("parallel.fallback", label=self.label, error=type(exc).__name__):
                return self._map_serial(payloads)
