"""Process-parallel execution for embarrassingly parallel pipeline stages.

Three layers:

- :class:`WorkerPool` — a lazily created, persistent, fork-safe process
  pool singleton with adaptive serial fallback (``pool.py``).
- :class:`SharedArrayStore` / :class:`SharedBlobRef` — a plasma-style
  shared-memory data plane: publish large read-only inputs once, attach
  zero-copy in every worker (``shm.py``).
- :class:`ParallelTrainer` — ordered, deterministic fan-out of picklable
  payloads over the pool, with worker telemetry merged back idempotently
  (``trainer.py``).

Used by per-cluster CRL training (:meth:`repro.rl.crl.CRLModel.fit`),
the sharded importance evaluators (:mod:`repro.importance`), the Fig. 9
per-point sweep (:class:`repro.core.experiment.PTExperiment`), and the
multi-seed runner (:func:`repro.core.experiment.run_multiseed`).
"""

from repro.parallel.pool import WorkerPool, get_worker_pool, shutdown_worker_pool
from repro.parallel.shm import (
    SharedArrayStore,
    SharedBlobRef,
    get_shared_store,
    release_shared_store,
    resolve_shared,
    share_environment_store,
)
from repro.parallel.trainer import (
    ParallelTrainer,
    merge_worker_metrics,
    merge_worker_spans,
)

__all__ = [
    "ParallelTrainer",
    "SharedArrayStore",
    "SharedBlobRef",
    "WorkerPool",
    "get_shared_store",
    "get_worker_pool",
    "merge_worker_metrics",
    "merge_worker_spans",
    "release_shared_store",
    "resolve_shared",
    "share_environment_store",
    "shutdown_worker_pool",
]
