"""Process-parallel execution for embarrassingly parallel pipeline stages.

:class:`ParallelTrainer` fans a picklable worker function out over a
process pool with deterministic, submission-ordered results, telemetry
merged back into the parent's registry/trace, and a graceful serial
fallback. Used by per-cluster CRL training
(:meth:`repro.rl.crl.CRLModel.fit` with ``jobs > 1``) and the multi-seed
sweep runner (:func:`repro.core.experiment.run_multiseed`).
"""

from repro.parallel.trainer import (
    ParallelTrainer,
    merge_worker_metrics,
    merge_worker_spans,
)

__all__ = ["ParallelTrainer", "merge_worker_metrics", "merge_worker_spans"]
