"""Persistent, fork-safe worker pool with adaptive serial fallback.

PR 3 created a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
per fan-out, so every call repaid worker spin-up — ``BENCH_perf.json``
showed ``jobs=4`` CRL training *losing* to serial. :class:`WorkerPool`
amortizes that cost:

- **Lazily created, reusable** — one process-wide executor, spun up on
  the first parallel map and reused by every later one (growing only
  when a call asks for more workers than it holds). Warm dispatch costs
  milliseconds instead of a pool build.
- **Fork-safe** — the pool remembers its creating pid. Code running in a
  forked child (including our own workers, so nested fan-outs inside a
  sharded evaluation degrade cleanly) sees :meth:`effective_jobs` return
  1 and never touches the inherited executor.
- **Adaptive serial fallback** — when the estimated serial cost of the
  workload is below the spin-up + dispatch overhead it would pay, or the
  machine has a single core, the pool declines to parallelize (counted
  by ``repro_pool_adaptive_serial_total{reason=...}``). Parallelism is a
  wall-clock optimization; it must never *cost* wall-clock.
- **Explicit shutdown** — :func:`shutdown_worker_pool` tears down the
  executor and (by default) unlinks every shared-memory block the
  ambient :class:`~repro.parallel.shm.SharedArrayStore` published, so a
  clean exit leaves nothing in ``/dev/shm``.

Set ``REPRO_POOL_FORCE_PARALLEL=1`` to bypass the adaptive checks —
tests use it to exercise the real multi-process path on small machines.

Metrics: ``repro_pool_tasks_total{label}``, ``repro_pool_spinups_total``,
``repro_pool_adaptive_serial_total{reason}``, ``repro_pool_workers``.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from repro.telemetry import get_registry

#: Estimated one-time cost of spinning up one worker process (fork +
#: interpreter state). Overridable for unusual machines/tests.
SPINUP_PER_WORKER_S = float(os.environ.get("REPRO_POOL_SPINUP_S", "0.08"))

#: Estimated per-task dispatch overhead on a warm pool (pickle + IPC).
#: Recalibrated upward from 0.003: BENCH_perf.json showed sub-second
#: fan-outs (crl_train_4cluster jobs=2/4, shapley_importance jobs=4)
#: losing to serial, so the old figure under-priced real dispatch.
DISPATCH_PER_TASK_S = 0.01

#: Fraction of the ideal (1 - 1/workers) saving a small fan-out actually
#: realizes — workers never split perfectly, the parent blocks on the
#: slowest, and numpy loses core affinity. Applied to the projected
#: saving before comparing against overhead.
PARALLEL_EFFICIENCY = 0.65

#: With at most this many cores, parallel workers fight the parent (and
#: each other) for cycles, so the break-even point moves far right:
#: require each worker's serial chunk to be at least
#: ``SCARCE_MIN_CHUNK_S`` before fanning out.
SCARCE_CPU_THRESHOLD = 2
SCARCE_MIN_CHUNK_S = 1.0


def _force_parallel() -> bool:
    return os.environ.get("REPRO_POOL_FORCE_PARALLEL", "") not in ("", "0")


class WorkerPool:
    """A reusable process pool; see the module docstring for guarantees."""

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._size = 0
        self._pid: int | None = None
        self.spinups = 0

    # ------------------------------------------------------------------
    @property
    def warm(self) -> bool:
        return self._executor is not None and self._pid == os.getpid()

    @property
    def size(self) -> int:
        return self._size if self.warm else 0

    def _adaptive_serial(self, reason: str) -> int:
        get_registry().counter(
            "repro_pool_adaptive_serial_total",
            help="Fan-outs the pool declined to parallelize",
            reason=reason,
        ).inc()
        return 1

    def overhead_s(self, workers: int, tasks: int) -> float:
        """Estimated extra wall-clock a parallel map of ``tasks`` pays."""
        cost = DISPATCH_PER_TASK_S * tasks
        if not self.warm or self._size < workers:
            cost += SPINUP_PER_WORKER_S * workers
        return cost

    def effective_jobs(
        self,
        jobs: int,
        tasks: int,
        *,
        estimated_cost_s: float | None = None,
        force: bool = False,
    ) -> int:
        """Worker count a fan-out should actually use (1 = run serial).

        ``estimated_cost_s`` is the caller's estimate of the *total
        serial* cost of the workload; when given, the pool parallelizes
        only if the projected wall-clock saving beats the overhead.
        """
        if jobs <= 1 or tasks < 2:
            return 1
        workers = min(jobs, tasks)
        if self._pid is not None and self._pid != os.getpid():
            return self._adaptive_serial("forked_child")
        if force or _force_parallel():
            return workers
        cpus = os.cpu_count() or 1
        if cpus < 2:
            return self._adaptive_serial("single_core")
        workers = min(workers, cpus)
        if estimated_cost_s is not None:
            if (
                cpus <= SCARCE_CPU_THRESHOLD
                and estimated_cost_s / workers < SCARCE_MIN_CHUNK_S
            ):
                return self._adaptive_serial("scarce_cores")
            saving = estimated_cost_s * (1.0 - 1.0 / workers) * PARALLEL_EFFICIENCY
            if saving <= self.overhead_s(workers, tasks):
                return self._adaptive_serial("small_work")
        return workers

    # ------------------------------------------------------------------
    def executor(self, workers: int) -> ProcessPoolExecutor:
        """The shared executor, (re)built to hold at least ``workers``."""
        if self._pid is not None and self._pid != os.getpid():
            # Inherited across a fork: the parent's executor is unusable
            # here; forget it without touching its processes.
            self._executor = None
            self._size = 0
        if self._executor is None or self._size < workers:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._size = workers
            self._pid = os.getpid()
            self.spinups += 1
            registry = get_registry()
            registry.counter(
                "repro_pool_spinups_total", help="Worker-pool executor builds"
            ).inc()
            registry.gauge(
                "repro_pool_workers", help="Worker processes the pool holds"
            ).set(workers)
        return self._executor

    def count_tasks(self, n: int, *, label: str) -> None:
        get_registry().counter(
            "repro_pool_tasks_total",
            help="Payloads executed on the persistent worker pool",
            label=label,
        ).inc(n)

    def reset(self) -> None:
        """Discard a broken executor so the next fan-out rebuilds it."""
        executor, self._executor, self._size = self._executor, None, 0
        if executor is not None and self._pid == os.getpid():
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Stop the workers (idempotent); the pool can be reused after."""
        executor, self._executor, self._size = self._executor, None, 0
        if executor is not None and self._pid == os.getpid():
            executor.shutdown(wait=True)
        get_registry().gauge(
            "repro_pool_workers", help="Worker processes the pool holds"
        ).set(0)


# ----------------------------------------------------------------------
_pool: WorkerPool | None = None


def get_worker_pool() -> WorkerPool:
    """The process-wide pool singleton, created lazily (never in a fork)."""
    global _pool
    if _pool is None:
        _pool = WorkerPool()
    return _pool


def shutdown_worker_pool(*, release_shared: bool = True) -> None:
    """Tear down the ambient pool and, by default, the shared-memory plane."""
    if _pool is not None:
        _pool.shutdown()
    if release_shared:
        from repro.parallel.shm import release_shared_store

        release_shared_store()


atexit.register(shutdown_worker_pool)
