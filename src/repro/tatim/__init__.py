"""TATIM: Task Allocation with Task Importance for MTL (Definition 4).

A 0-1 multiply-constrained multiple-knapsack problem (Theorem 1): maximize
the total importance of allocated tasks subject to a per-processor
execution-time budget and resource capacity, each task on at most one
processor. The subpackage provides the problem/solution datatypes, an exact
branch-and-bound solver for small instances, density-greedy heuristics, a
single-knapsack dynamic program, and random instance generators.
"""

from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.tatim.cache import (
    AllocationCache,
    get_allocation_cache,
    set_allocation_cache,
    use_allocation_cache,
)
from repro.tatim.greedy import best_fit_greedy, density_greedy, importance_greedy
from repro.tatim.exact import branch_and_bound, single_knapsack_dp
from repro.tatim.local_search import improve_allocation
from repro.tatim.lagrangian import LagrangianResult, lagrangian_bound
from repro.tatim.generators import random_instance, longtail_instance

__all__ = [
    "TATIMProblem",
    "Allocation",
    "AllocationCache",
    "get_allocation_cache",
    "set_allocation_cache",
    "use_allocation_cache",
    "density_greedy",
    "importance_greedy",
    "best_fit_greedy",
    "branch_and_bound",
    "single_knapsack_dp",
    "improve_allocation",
    "LagrangianResult",
    "lagrangian_bound",
    "random_instance",
    "longtail_instance",
]
