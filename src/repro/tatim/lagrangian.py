"""Lagrangian relaxation of TATIM: tighter bounds and a primal heuristic.

Dualize the per-processor *time* constraints (Eq. 3) with multipliers
λ_p ≥ 0. The relaxed problem separates: each task j chooses the processor
minimizing its penalized cost and is taken iff its reduced profit
I_j − λ_p·t_j is positive *and* it respects the remaining (undualized)
resource constraint — which we keep exactly, so the inner problem is a set
of independent single-constraint knapsacks solved greedily-fractionally
for a valid bound.

Subgradient ascent on λ tightens the bound; at each iterate a primal
repair (place tasks by reduced profit, honoring both constraints) yields a
feasible allocation, and the best one is returned together with the bound.
The gap (bound − primal) certifies solution quality on instances too large
for branch and bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.tatim.observe import instrumented_solver
from repro.tatim.problem import TATIMProblem, _fractional_bound
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry


@dataclass(frozen=True)
class LagrangianResult:
    """Outcome of the subgradient procedure."""

    upper_bound: float
    best_allocation: Allocation
    best_value: float
    multipliers: np.ndarray
    iterations: int

    @property
    def gap(self) -> float:
        """Relative optimality gap certified by the bound."""
        if self.upper_bound <= 0:
            return 0.0
        return max(0.0, (self.upper_bound - self.best_value) / self.upper_bound)


def _dual_value(problem: TATIMProblem, multipliers: np.ndarray) -> float:
    """Upper bound for the given λ: relaxed objective + λ·budgets.

    Each task takes its best processor's reduced profit when positive; the
    per-processor resource constraints are relaxed to the aggregate
    capacity via a fractional knapsack on reduced profits (still a valid
    relaxation — constraints only get looser).
    """
    limits = problem.processor_time_limits()
    reduced = problem.importance[:, None] - multipliers[None, :] * problem.times[:, None]
    best_reduced = reduced.max(axis=1)
    positive = np.maximum(best_reduced, 0.0)
    value = _fractional_bound(positive, problem.resources, float(problem.capacities.sum()))
    return float(value + multipliers @ limits)


def _primal_repair(problem: TATIMProblem, multipliers: np.ndarray) -> Allocation:
    """Feasible allocation guided by the current reduced profits."""
    limits = problem.processor_time_limits()
    reduced = problem.importance[:, None] - multipliers[None, :] * problem.times[:, None]
    order = np.argsort(-reduced.max(axis=1), kind="stable")
    remaining_time = limits.astype(float).copy()
    remaining_capacity = problem.capacities.astype(float).copy()
    matrix = np.zeros((problem.n_tasks, problem.n_processors), dtype=int)
    for task in order:
        if problem.importance[task] <= 0:
            continue
        candidates = np.argsort(-reduced[task], kind="stable")
        for processor in candidates:
            if (
                problem.times[task] <= remaining_time[processor] + 1e-12
                and problem.resources[task] <= remaining_capacity[processor] + 1e-12
            ):
                matrix[task, processor] = 1
                remaining_time[processor] -= problem.times[task]
                remaining_capacity[processor] -= problem.resources[task]
                break
    return Allocation(matrix)


@instrumented_solver("lagrangian")
def lagrangian_bound(
    problem: TATIMProblem,
    *,
    iterations: int = 40,
    step_scale: float = 1.0,
) -> LagrangianResult:
    """Subgradient ascent on the time-constraint multipliers.

    Returns the tightest dual bound found, the best primal allocation, and
    the certified gap. The bound is never worse than
    ``problem.upper_bound()`` by more than floating noise (it is computed
    within the same relaxation family and λ=0 reproduces it).
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    if step_scale <= 0:
        raise ConfigurationError(f"step_scale must be > 0, got {step_scale}")
    limits = problem.processor_time_limits()
    multipliers = np.zeros(problem.n_processors)
    best_bound = _dual_value(problem, multipliers)
    best_allocation = _primal_repair(problem, multipliers)
    best_value = best_allocation.objective(problem)
    scale = float(problem.importance.max()) or 1.0
    for iteration in range(1, iterations + 1):
        allocation = _primal_repair(problem, multipliers)
        value = allocation.objective(problem)
        if value > best_value:
            best_value = value
            best_allocation = allocation
        # Subgradient of the dual: budget minus relaxed usage. Use the
        # repair's usage as a surrogate (standard practice).
        usage = problem.times @ allocation.matrix
        subgradient = usage - limits
        step = step_scale * scale / (iteration * (np.linalg.norm(subgradient) + 1e-9))
        multipliers = np.maximum(0.0, multipliers + step * subgradient)
        bound = _dual_value(problem, multipliers)
        best_bound = min(best_bound, bound)
    best_bound = min(best_bound, problem.upper_bound())
    get_registry().counter(
        "repro_tatim_lagrangian_iterations_total",
        help="Subgradient-ascent iterations executed",
    ).inc(iterations)
    return LagrangianResult(
        upper_bound=float(max(best_bound, best_value)),
        best_allocation=best_allocation,
        best_value=float(best_value),
        multipliers=multipliers,
        iterations=iterations,
    )
