"""Allocation matrices u = [u_{j,p}] and their feasibility checks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError, InfeasibleAllocationError
from repro.tatim.problem import TATIMProblem


@dataclass(frozen=True)
class Allocation:
    """A binary task-to-processor assignment.

    ``matrix[j, p] == 1`` iff task j runs on processor p. Unallocated tasks
    have an all-zero row (the knapsack "left out" state).
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix)
        if matrix.ndim != 2:
            raise DataError(f"allocation matrix must be 2-D, got shape {matrix.shape}")
        if not np.all(np.isin(matrix, (0, 1))):
            raise DataError("allocation matrix entries must be 0 or 1")
        object.__setattr__(self, "matrix", matrix.astype(int))

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_tasks: int, n_processors: int) -> "Allocation":
        return cls(np.zeros((n_tasks, n_processors), dtype=int))

    @classmethod
    def from_assignment(cls, assignment: dict[int, int], n_tasks: int, n_processors: int) -> "Allocation":
        """Build from a {task: processor} mapping (unlisted tasks stay out)."""
        matrix = np.zeros((n_tasks, n_processors), dtype=int)
        for task, processor in assignment.items():
            if not 0 <= task < n_tasks:
                raise DataError(f"task index {task} out of range")
            if not 0 <= processor < n_processors:
                raise DataError(f"processor index {processor} out of range")
            matrix[task, processor] = 1
        return cls(matrix)

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_processors(self) -> int:
        return int(self.matrix.shape[1])

    def assigned_tasks(self) -> np.ndarray:
        """Sorted indices of tasks that were allocated anywhere."""
        return np.flatnonzero(self.matrix.sum(axis=1) > 0)

    def processor_of(self, task: int) -> int | None:
        """Processor hosting ``task``, or None if unallocated."""
        row = self.matrix[task]
        hits = np.flatnonzero(row)
        return int(hits[0]) if hits.size else None

    def tasks_on(self, processor: int) -> np.ndarray:
        """Sorted indices of tasks placed on ``processor``."""
        return np.flatnonzero(self.matrix[:, processor] > 0)

    def as_assignment(self) -> dict[int, int]:
        """The {task: processor} mapping of allocated tasks."""
        return {int(j): int(self.processor_of(j)) for j in self.assigned_tasks()}

    # ------------------------------------------------------------------
    def objective(self, problem: TATIMProblem) -> float:
        """Σ_j Σ_p I_j · u_{j,p} — the TATIM objective."""
        self._check_shape(problem)
        return float(self.matrix.sum(axis=1) @ problem.importance)

    def violations(self, problem: TATIMProblem) -> list[str]:
        """Human-readable list of violated constraints (empty = feasible)."""
        self._check_shape(problem)
        problems: list[str] = []
        per_task = self.matrix.sum(axis=1)
        multi = np.flatnonzero(per_task > 1)
        for task in multi:
            problems.append(f"task {task} assigned to {per_task[task]} processors (Eq. 2)")
        time_use = problem.times @ self.matrix
        limits = problem.processor_time_limits()
        over_time = np.flatnonzero(time_use > limits + 1e-9)
        for processor in over_time:
            problems.append(
                f"processor {processor} time {time_use[processor]:.4g} > "
                f"T={limits[processor]:.4g} (Eq. 3)"
            )
        resource_use = problem.resources @ self.matrix
        over_capacity = np.flatnonzero(resource_use > problem.capacities + 1e-9)
        for processor in over_capacity:
            problems.append(
                f"processor {processor} resource {resource_use[processor]:.4g} > "
                f"V={problem.capacities[processor]:.4g} (Eq. 4)"
            )
        return problems

    def is_feasible(self, problem: TATIMProblem) -> bool:
        return not self.violations(problem)

    def validate(self, problem: TATIMProblem) -> "Allocation":
        """Raise :class:`InfeasibleAllocationError` unless feasible."""
        violated = self.violations(problem)
        if violated:
            raise InfeasibleAllocationError("; ".join(violated))
        return self

    def _check_shape(self, problem: TATIMProblem) -> None:
        if self.matrix.shape != (problem.n_tasks, problem.n_processors):
            raise DataError(
                f"allocation shape {self.matrix.shape} does not match problem "
                f"({problem.n_tasks} tasks, {problem.n_processors} processors)"
            )
