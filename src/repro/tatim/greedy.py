"""Greedy TATIM heuristics.

Three orderings are provided; all place tasks one at a time onto the
feasible processor chosen by a *best-fit* rule (tightest remaining resource
capacity that still fits), which empirically keeps large processors free
for large tasks:

- :func:`density_greedy` — tasks by profit density (importance per
  normalized size), the classic knapsack heuristic with a (1/2)-style
  guarantee on single knapsacks.
- :func:`importance_greedy` — tasks by raw importance, matching the
  paper's intuition "more important tasks go to more powerful devices
  first".
- :func:`best_fit_greedy` — tasks by size descending, an importance-blind
  packing baseline.
"""

from __future__ import annotations

import numpy as np

from repro.tatim.observe import instrumented_solver
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry


def _place(problem: TATIMProblem, order: np.ndarray, *, prefer_powerful: bool = False) -> Allocation:
    remaining_time = problem.processor_time_limits().astype(float).copy()
    remaining_capacity = problem.capacities.astype(float).copy()
    matrix = np.zeros((problem.n_tasks, problem.n_processors), dtype=int)
    placements_tried = 0
    for task in order:
        time_needed = problem.times[task]
        resource_needed = problem.resources[task]
        fits = (remaining_time >= time_needed - 1e-12) & (
            remaining_capacity >= resource_needed - 1e-12
        )
        candidates = np.flatnonzero(fits)
        placements_tried += 1
        if candidates.size == 0:
            continue
        if prefer_powerful:
            # "More important tasks to more powerful edge devices": among
            # feasible hosts pick the one with the largest total capacity.
            chosen = candidates[np.argmax(problem.capacities[candidates])]
        else:
            # Best fit: the feasible host left with the least slack.
            slack = remaining_capacity[candidates] - resource_needed
            chosen = candidates[np.argmin(slack)]
        matrix[task, chosen] = 1
        remaining_time[chosen] -= time_needed
        remaining_capacity[chosen] -= resource_needed
    get_registry().counter(
        "repro_tatim_placements_tried_total",
        help="Greedy placement attempts (tasks offered to the best-fit rule)",
    ).inc(placements_tried)
    return Allocation(matrix)


@instrumented_solver("density_greedy")
def density_greedy(problem: TATIMProblem) -> Allocation:
    """Greedy by importance density with best-fit placement."""
    order = np.argsort(problem.density(), kind="stable")[::-1]
    return _place(problem, order)


@instrumented_solver("importance_greedy")
def importance_greedy(problem: TATIMProblem) -> Allocation:
    """Greedy by raw importance, placing onto the most powerful feasible host."""
    order = np.argsort(problem.importance, kind="stable")[::-1]
    return _place(problem, order, prefer_powerful=True)


@instrumented_solver("best_fit_greedy")
def best_fit_greedy(problem: TATIMProblem) -> Allocation:
    """Importance-blind packing: largest tasks first, best-fit placement."""
    size = problem.times / problem.time_limit + problem.resources / problem.capacities.mean()
    order = np.argsort(size, kind="stable")[::-1]
    return _place(problem, order)
