"""The TATIM problem datatype (paper Definition 4).

Given tasks j with importance I_j, execution time t_j, and resource demand
v_j, and processors p with a common time limit T and per-processor resource
capacity V_p, maximize Σ_j Σ_p I_j · u_{j,p} subject to

    Σ_p u_{j,p} ≤ 1            for every task j          (Eq. 2)
    Σ_j t_j · u_{j,p} ≤ T      for every processor p     (Eq. 3)
    Σ_j v_j · u_{j,p} ≤ V_p    for every processor p     (Eq. 4)

Note on Eq. 2: the paper writes it with equality, but under finite
capacities an equality version is generally infeasible and would make the
objective a constant; Theorem 1's reduction to the multiple knapsack
problem (where each item is packed *at most* once) confirms the intended
reading, which is what we implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.validation import check_array


def _fractional_bound(importance: np.ndarray, weights: np.ndarray, budget: float) -> float:
    """Fractional single-constraint knapsack value: a valid LP upper bound."""
    order = np.argsort(importance / np.maximum(weights, 1e-12), kind="stable")[::-1]
    total = 0.0
    remaining = budget
    for task in order:
        if remaining <= 0:
            break
        fraction = min(1.0, remaining / weights[task])
        total += fraction * importance[task]
        remaining -= fraction * weights[task]
    return total


@dataclass(frozen=True)
class TATIMProblem:
    """One TATIM instance.

    Attributes
    ----------
    importance:
        I_j >= 0, one per task (the knapsack profits).
    times:
        t_j > 0, execution time per task.
    resources:
        v_j > 0, resource demand per task.
    time_limit:
        T > 0, the shared per-processor execution-time budget.
    capacities:
        V_p > 0, one per processor.
    """

    importance: np.ndarray
    times: np.ndarray
    resources: np.ndarray
    time_limit: float
    capacities: np.ndarray
    #: Optional per-processor time budgets overriding the shared ``time_limit``
    #: (the Section VII extension: "changing the budget constraints" to model
    #: heterogeneously powerful edge nodes). ``None`` means every processor
    #: uses ``time_limit``.
    time_limits: np.ndarray | None = None

    def __post_init__(self) -> None:
        importance = check_array(self.importance, name="importance", ndim=1)
        times = check_array(self.times, name="times", ndim=1)
        resources = check_array(self.resources, name="resources", ndim=1)
        capacities = check_array(self.capacities, name="capacities", ndim=1)
        if not importance.size == times.size == resources.size:
            raise DataError(
                "importance, times and resources must agree in length, got "
                f"{importance.size}, {times.size}, {resources.size}"
            )
        if np.any(importance < 0):
            raise DataError("importance values must be non-negative")
        if np.any(times <= 0) or np.any(resources <= 0):
            raise DataError("task times and resources must be strictly positive")
        if self.time_limit <= 0:
            raise ConfigurationError(f"time_limit must be > 0, got {self.time_limit}")
        if np.any(capacities <= 0):
            raise DataError("processor capacities must be strictly positive")
        object.__setattr__(self, "importance", importance)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "resources", resources)
        object.__setattr__(self, "capacities", capacities)
        object.__setattr__(self, "time_limit", float(self.time_limit))
        if self.time_limits is not None:
            limits = check_array(self.time_limits, name="time_limits", ndim=1)
            if limits.size != capacities.size:
                raise DataError(
                    f"time_limits has {limits.size} entries for {capacities.size} processors"
                )
            if np.any(limits <= 0):
                raise DataError("per-processor time limits must be strictly positive")
            object.__setattr__(self, "time_limits", limits)

    @property
    def n_tasks(self) -> int:
        return int(self.importance.size)

    @property
    def n_processors(self) -> int:
        return int(self.capacities.size)

    def processor_time_limits(self) -> np.ndarray:
        """The effective per-processor time budgets (length n_processors)."""
        if self.time_limits is not None:
            return self.time_limits
        return np.full(self.n_processors, self.time_limit)

    def task_fits(self, task: int, processor: int) -> bool:
        """Whether the task alone fits on an empty processor."""
        return (
            self.times[task] <= self.processor_time_limits()[processor]
            and self.resources[task] <= self.capacities[processor]
        )

    def density(self) -> np.ndarray:
        """Profit density I_j / (t_j/T + v_j/mean(V)) used by greedy orders.

        Both constraint dimensions are normalized by their budgets so that
        neither time nor resource dominates the ordering by scale alone.
        """
        mean_capacity = float(self.capacities.mean())
        mean_limit = float(self.processor_time_limits().mean())
        weight = self.times / mean_limit + self.resources / mean_capacity
        return self.importance / np.maximum(weight, 1e-12)

    def upper_bound(self) -> float:
        """A fast valid upper bound on the optimum.

        Minimum of two single-constraint fractional-knapsack relaxations:
        one dropping the resource constraints (aggregate time budget M·T),
        one dropping the time constraints (aggregate capacity ΣV_p). Each
        relaxation only removes constraints, so each is a valid upper
        bound; their minimum is the tighter of the two. (Filling a single
        greedy pass against *both* budgets at once is NOT a valid bound —
        the two-constraint LP optimum can exceed it.)
        """
        time_bound = _fractional_bound(
            self.importance, self.times, float(self.processor_time_limits().sum())
        )
        resource_bound = _fractional_bound(
            self.importance, self.resources, float(self.capacities.sum())
        )
        return float(min(time_bound, resource_bound))

    def scaled(self, *, importance: np.ndarray | None = None) -> "TATIMProblem":
        """A sibling instance with substituted importance (same geometry).

        Used when the environment's importance estimate changes between
        decision epochs while the task/processor geometry is fixed.
        """
        return TATIMProblem(
            importance=importance if importance is not None else self.importance,
            times=self.times,
            resources=self.resources,
            time_limit=self.time_limit,
            capacities=self.capacities,
            time_limits=self.time_limits,
        )
