"""Exact TATIM solvers.

:func:`branch_and_bound` solves the multiply-constrained multiple-knapsack
exactly by depth-first search over tasks in density order, branching on
"place on processor p" / "leave out", pruned with a fractional
aggregate-budget bound. Exponential worst case — the problem is NP-complete
(Theorem 1) — but instances with ≲25 tasks and a few processors solve
quickly, which is what the correctness tests and the optimality-gap
benchmarks need.

:func:`single_knapsack_dp` is the classic pseudo-polynomial dynamic program
for the one-processor case with integer-scaled weights; it provides an
independent witness against which the B&B result is validated in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tatim.observe import instrumented_solver
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry


@instrumented_solver("branch_and_bound")
def branch_and_bound(problem: TATIMProblem, *, max_nodes: int = 2_000_000) -> Allocation:
    """Optimal allocation by pruned depth-first search.

    Raises
    ------
    ConfigurationError
        If the node budget is exhausted before the search completes
        (instance too large for exact solving).
    """
    order = np.argsort(problem.density(), kind="stable")[::-1]
    times = problem.times[order]
    resources = problem.resources[order]
    importance = problem.importance[order]
    n_tasks = problem.n_tasks
    n_processors = problem.n_processors

    # Suffix fractional bounds: bound[i] is an upper bound on the profit
    # obtainable from tasks i.. given *fresh* aggregate budgets; adding the
    # current profit plus bound[i] scaled is optimistic but valid since
    # remaining budgets only shrink.
    suffix_importance = np.concatenate([np.cumsum(importance[::-1])[::-1], [0.0]])

    best_value = -1.0
    best_assignment: dict[int, int] = {}
    nodes = 0

    remaining_time = [float(t) for t in problem.processor_time_limits()]
    remaining_capacity = list(problem.capacities.astype(float))
    current: dict[int, int] = {}

    # Orders over the *permuted* task positions, used by the bound: one by
    # time density, one by resource density.
    time_order = np.argsort(importance / np.maximum(times, 1e-12), kind="stable")[::-1]
    resource_order = np.argsort(importance / np.maximum(resources, 1e-12), kind="stable")[::-1]

    def fractional_bound(index: int) -> float:
        """Valid upper bound for tasks index.. against remaining budgets.

        Minimum of two single-constraint fractional relaxations (time-only
        and resource-only); each drops the other constraint entirely, so
        each over-estimates the true optimum of the remaining subproblem.
        """
        bounds = []
        for order, weights, budget in (
            (time_order, times, sum(remaining_time)),
            (resource_order, resources, sum(remaining_capacity)),
        ):
            total = 0.0
            remaining = budget
            for position in order:
                if position < index:
                    continue
                if remaining <= 1e-12:
                    break
                fraction = min(1.0, remaining / weights[position])
                total += fraction * importance[position]
                remaining -= fraction * weights[position]
            bounds.append(total)
        return min(bounds)

    def search(index: int, value: float) -> None:
        nonlocal best_value, best_assignment, nodes
        nodes += 1
        if nodes > max_nodes:
            raise ConfigurationError(
                f"branch_and_bound exceeded {max_nodes} nodes; instance too large"
            )
        if value > best_value:
            best_value = value
            best_assignment = dict(current)
        if index >= n_tasks:
            return
        if value + min(suffix_importance[index], fractional_bound(index)) <= best_value + 1e-12:
            return
        # Branch: place on each feasible processor (deduplicating symmetric
        # processors by their remaining-state signature), then skip.
        seen_states: set[tuple[float, float]] = set()
        for processor in range(n_processors):
            state = (round(remaining_time[processor], 9), round(remaining_capacity[processor], 9))
            if state in seen_states:
                continue
            seen_states.add(state)
            if (
                times[index] <= remaining_time[processor] + 1e-12
                and resources[index] <= remaining_capacity[processor] + 1e-12
            ):
                remaining_time[processor] -= times[index]
                remaining_capacity[processor] -= resources[index]
                current[index] = processor
                search(index + 1, value + importance[index])
                del current[index]
                remaining_time[processor] += times[index]
                remaining_capacity[processor] += resources[index]
        search(index + 1, value)

    try:
        search(0, 0.0)
    finally:
        # Nodes expanded are reported even when the budget is exhausted —
        # the failed search is exactly the case worth seeing in metrics.
        get_registry().counter(
            "repro_tatim_bnb_nodes_total",
            help="Branch-and-bound search nodes expanded",
        ).inc(nodes)
    # Map the density-order indices back to original task ids.
    assignment = {int(order[i]): p for i, p in best_assignment.items()}
    return Allocation.from_assignment(assignment, n_tasks, n_processors).validate(problem)


@instrumented_solver("single_knapsack_dp")
def single_knapsack_dp(
    problem: TATIMProblem, *, resolution: int = 1000
) -> Allocation:
    """Exact single-processor TATIM by 2-D dynamic programming.

    Times and resources are scaled to integers on a ``resolution`` grid
    (ceiling-rounded, so the result is always feasible; with exact integer
    inputs at the grid scale it is optimal).
    """
    if problem.n_processors != 1:
        raise ConfigurationError(
            f"single_knapsack_dp handles exactly one processor, got {problem.n_processors}"
        )
    if resolution < 1:
        raise ConfigurationError(f"resolution must be >= 1, got {resolution}")
    time_scale = resolution / float(problem.processor_time_limits()[0])
    capacity = float(problem.capacities[0])
    resource_scale = resolution / capacity
    times = np.minimum(np.ceil(problem.times * time_scale).astype(int), resolution + 1)
    resources = np.minimum(np.ceil(problem.resources * resource_scale).astype(int), resolution + 1)

    # value[t, v] = best profit using time budget t and resource budget v.
    value = np.zeros((resolution + 1, resolution + 1))
    choice = np.zeros((problem.n_tasks, resolution + 1, resolution + 1), dtype=bool)
    for task in range(problem.n_tasks):
        t_need, v_need = times[task], resources[task]
        if t_need > resolution or v_need > resolution:
            continue
        shifted = value[: resolution + 1 - t_need, : resolution + 1 - v_need] + problem.importance[task]
        region = value[t_need:, v_need:]
        take = shifted > region
        choice[task, t_need:, v_need:] = take
        region[take] = shifted[take]
    # Backtrack.
    t_left, v_left = resolution, resolution
    assignment: dict[int, int] = {}
    for task in reversed(range(problem.n_tasks)):
        if choice[task, t_left, v_left]:
            assignment[task] = 0
            t_left -= times[task]
            v_left -= resources[task]
    return Allocation.from_assignment(assignment, problem.n_tasks, 1).validate(problem)
