"""Shared solver instrumentation for the TATIM subpackage.

Every solver entry point reports the same family of instruments so the
Sec. V "allocation time" breakdown is comparable across solvers:

- ``repro_tatim_solves_total{solver=...}`` — invocations;
- ``repro_tatim_solve_seconds{solver=...}`` — wall-clock solve latency;
- ``repro_tatim_tasks_assigned_total{solver=...}`` — tasks placed;
- ``repro_tatim_solution_importance{solver=...}`` — achieved importance
  of the latest solution (gauge).

Solver-specific work counters (branch-and-bound nodes, local-search
rounds, subgradient iterations, greedy placement attempts) are emitted at
their call sites.
"""

from __future__ import annotations

import time
from functools import wraps

from repro.telemetry import get_registry, span


def instrumented_solver(solver_name: str):
    """Decorator timing ``fn(problem, ...)`` into the solver instruments.

    Works for solvers returning an :class:`~repro.tatim.solution.Allocation`
    directly and for :func:`~repro.tatim.lagrangian.lagrangian_bound`,
    whose result exposes ``best_allocation``.
    """

    def decorate(fn):
        @wraps(fn)
        def wrapper(problem, *args, **kwargs):
            started = time.perf_counter()
            with span("tatim.solve", solver=solver_name):
                result = fn(problem, *args, **kwargs)
            elapsed = time.perf_counter() - started
            registry = get_registry()
            registry.counter(
                "repro_tatim_solves_total",
                help="TATIM solver invocations",
                solver=solver_name,
            ).inc()
            registry.histogram(
                "repro_tatim_solve_seconds",
                help="TATIM solve wall-clock latency",
                solver=solver_name,
            ).observe(elapsed)
            allocation = getattr(result, "best_allocation", result)
            registry.counter(
                "repro_tatim_tasks_assigned_total",
                help="Tasks placed by TATIM solutions",
                solver=solver_name,
            ).inc(int(allocation.assigned_tasks().size))
            registry.gauge(
                "repro_tatim_solution_importance",
                help="Achieved importance of the latest solution",
                solver=solver_name,
            ).set(float(allocation.objective(problem)))
            return result

        return wrapper

    return decorate
