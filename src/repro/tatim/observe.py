"""Shared solver instrumentation for the TATIM subpackage.

Every solver entry point reports the same family of instruments so the
Sec. V "allocation time" breakdown is comparable across solvers:

- ``repro_tatim_solves_total{solver=...}`` — invocations;
- ``repro_tatim_solve_seconds{solver=...}`` — wall-clock solve latency;
- ``repro_tatim_tasks_assigned_total{solver=...}`` — tasks placed;
- ``repro_tatim_solution_importance{solver=...}`` — achieved importance
  of the latest solution (gauge).

Solver-specific work counters (branch-and-bound nodes, local-search
rounds, subgradient iterations, greedy placement attempts) are emitted at
their call sites.

When an :class:`repro.tatim.cache.AllocationCache` is installed (see
:func:`repro.tatim.cache.use_allocation_cache`), zero-argument solves are
memoized here: a hit returns the cached result without invoking the
solver (so ``repro_tatim_solves_total`` does not advance), a miss solves
and stores. Calls with extra positional/keyword arguments bypass the
cache since those arguments change the result.
"""

from __future__ import annotations

import time
from functools import wraps

from repro.tatim.cache import get_allocation_cache
from repro.telemetry import get_registry, span


def instrumented_solver(solver_name: str):
    """Decorator timing ``fn(problem, ...)`` into the solver instruments.

    Works for solvers returning an :class:`~repro.tatim.solution.Allocation`
    directly and for :func:`~repro.tatim.lagrangian.lagrangian_bound`,
    whose result exposes ``best_allocation``.
    """

    def decorate(fn):
        @wraps(fn)
        def wrapper(problem, *args, **kwargs):
            cache = get_allocation_cache()
            key = None
            if cache is not None and not args and not kwargs:
                key = cache.problem_key(solver_name, problem)
                cached = cache.get(key)
                if cached is not None:
                    return cached
            started = time.perf_counter()
            with span("tatim.solve", solver=solver_name):
                result = fn(problem, *args, **kwargs)
            elapsed = time.perf_counter() - started
            registry = get_registry()
            registry.counter(
                "repro_tatim_solves_total",
                help="TATIM solver invocations",
                solver=solver_name,
            ).inc()
            registry.histogram(
                "repro_tatim_solve_seconds",
                help="TATIM solve wall-clock latency",
                solver=solver_name,
            ).observe(elapsed)
            allocation = getattr(result, "best_allocation", result)
            registry.counter(
                "repro_tatim_tasks_assigned_total",
                help="Tasks placed by TATIM solutions",
                solver=solver_name,
            ).inc(int(allocation.assigned_tasks().size))
            registry.gauge(
                "repro_tatim_solution_importance",
                help="Achieved importance of the latest solution",
                solver=solver_name,
            ).set(float(allocation.objective(problem)))
            if key is not None:
                cache.put(key, result)
            return result

        return wrapper

    return decorate
