"""Local-search improvement for TATIM allocations.

A classic improvement operator applied after any constructive heuristic:

- **insert** — try to place each unallocated task on any processor with
  room (possible after other moves free space);
- **swap-in** — try replacing an allocated task with an unallocated one of
  higher importance that fits in the freed budget;
- **move** — migrate a task between processors when that enables a
  subsequent insert.

The search runs to a local optimum (no improving move) or an iteration
cap. Never worsens the objective; preserves feasibility by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tatim.observe import instrumented_solver
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.telemetry import get_registry


class _State:
    """Mutable allocation state with O(1) feasibility bookkeeping."""

    def __init__(self, problem: TATIMProblem, allocation: Allocation) -> None:
        self.problem = problem
        self.host = np.full(problem.n_tasks, -1, dtype=int)
        self.time_used = np.zeros(problem.n_processors)
        self.resource_used = np.zeros(problem.n_processors)
        self.limits = problem.processor_time_limits()
        for task, processor in allocation.as_assignment().items():
            self._place(task, processor)

    def _place(self, task: int, processor: int) -> None:
        self.host[task] = processor
        self.time_used[processor] += self.problem.times[task]
        self.resource_used[processor] += self.problem.resources[task]

    def _remove(self, task: int) -> None:
        processor = self.host[task]
        self.host[task] = -1
        self.time_used[processor] -= self.problem.times[task]
        self.resource_used[processor] -= self.problem.resources[task]

    def fits(self, task: int, processor: int) -> bool:
        return (
            self.time_used[processor] + self.problem.times[task]
            <= self.limits[processor] + 1e-12
            and self.resource_used[processor] + self.problem.resources[task]
            <= self.problem.capacities[processor] + 1e-12
        )

    def objective(self) -> float:
        return float(self.problem.importance[self.host >= 0].sum())

    def to_allocation(self) -> Allocation:
        assignment = {
            int(task): int(processor)
            for task, processor in enumerate(self.host)
            if processor >= 0
        }
        return Allocation.from_assignment(
            assignment, self.problem.n_tasks, self.problem.n_processors
        )


@instrumented_solver("local_search")
def improve_allocation(
    problem: TATIMProblem,
    allocation: Allocation,
    *,
    max_rounds: int = 50,
) -> Allocation:
    """Run insert / swap-in / move local search to a local optimum.

    Returns a feasible allocation whose objective is >= the input's.
    """
    if max_rounds < 1:
        raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
    allocation.validate(problem)
    state = _State(problem, allocation)
    importance = problem.importance

    rounds_run = 0
    for _ in range(max_rounds):
        rounds_run += 1
        improved = False

        # Insert: place any unallocated task that fits somewhere.
        for task in np.argsort(-importance, kind="stable"):
            if state.host[task] >= 0 or importance[task] <= 0:
                continue
            for processor in range(problem.n_processors):
                if state.fits(task, processor):
                    state._place(int(task), processor)
                    improved = True
                    break

        # Swap-in: replace an allocated task with a strictly more important
        # unallocated one on the same processor.
        outside = [t for t in range(problem.n_tasks) if state.host[t] < 0]
        for candidate in sorted(outside, key=lambda t: -importance[t]):
            placed = False
            for task in range(problem.n_tasks):
                victim_host = state.host[task]
                if victim_host < 0 or importance[candidate] <= importance[task]:
                    continue
                state._remove(task)
                if state.fits(candidate, victim_host):
                    state._place(candidate, victim_host)
                    improved = True
                    placed = True
                    break
                state._place(task, victim_host)
            if placed:
                continue

        # Move: migrate tasks to looser processors to consolidate slack.
        for task in range(problem.n_tasks):
            source = state.host[task]
            if source < 0:
                continue
            slack = state.limits - state.time_used
            target = int(np.argmax(slack))
            if target == source:
                continue
            state._remove(task)
            if state.fits(task, target) and (
                state.limits[target] - state.time_used[target]
            ) > (state.limits[source] - state.time_used[source]):
                state._place(task, target)
            else:
                state._place(task, source)

        if not improved:
            break

    get_registry().counter(
        "repro_tatim_local_search_rounds_total",
        help="Local-search improvement rounds executed",
    ).inc(rounds_run)
    result = state.to_allocation()
    return result.validate(problem)
