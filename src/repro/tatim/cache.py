"""Environment-keyed memoization of allocation solves.

DCTA re-solves the TATIM knapsack every decision epoch, but the instance
only changes through the importance vector — and importance drifts slowly
(Obs. 3), so consecutive epochs frequently quantize to the *same*
instance. :class:`AllocationCache` exploits this: solves are memoized
under a key built from quantized problem arrays (importance signature,
capacity/time signatures) plus an optional environment identifier (the
CRL cluster or kNN neighbourhood), so a warm controller answers repeat
queries without touching a solver or a DQN rollout.

The cache is *ambient*, mirroring the telemetry registry pattern: install
one with :func:`use_allocation_cache` (or :func:`set_allocation_cache`)
and every instrumented TATIM solver plus :meth:`repro.rl.crl.CRLModel.allocate`
consults it; with none installed (the default) all lookups are no-ops.

Correctness notes:

- Quantization (``decimals``, default 6) deliberately coalesces keys whose
  arrays differ below solver-relevant precision; cached allocations are
  byte-identical to a fresh solve of the quantized-equal instance.
- Cached values are returned by reference and must be treated as
  immutable (``Allocation`` is effectively frozen; nothing in the
  pipeline mutates solved allocations).
- Mutating the environment store invalidates CRL-side entries: wire
  :meth:`AllocationCache.watch` to any object exposing ``subscribe``
  (e.g. :class:`repro.rl.crl.EnvironmentStore`), and the cache clears
  itself on mutation.

Metrics (live in the ambient registry):

- ``repro_tatim_cache_hits_total{scope=...}`` / ``..._misses_total``
- ``repro_tatim_cache_hit_ratio`` — hits / lookups over the cache's life
- ``repro_tatim_cache_entries`` — current size
- ``repro_tatim_cache_invalidations_total`` — explicit clears
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Hashable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.tatim.problem import TATIMProblem
from repro.telemetry import get_registry


def quantize(array: np.ndarray, decimals: int) -> np.ndarray:
    """Round to ``decimals`` and normalize -0.0 so signatures are stable."""
    return np.round(np.asarray(array, dtype=float), decimals) + 0.0


def array_signature(array: np.ndarray, *, decimals: int = 6) -> str:
    """Hex digest of a quantized array (shape-sensitive)."""
    quantized = quantize(array, decimals)
    digest = hashlib.sha1()
    digest.update(str(quantized.shape).encode())
    digest.update(quantized.tobytes())
    return digest.hexdigest()


def problem_signature(problem: TATIMProblem, *, decimals: int = 6) -> str:
    """Hex digest of a full TATIM instance: importance, geometry, budgets."""
    digest = hashlib.sha1()
    for array in (
        problem.importance,
        problem.times,
        problem.resources,
        problem.capacities,
        problem.processor_time_limits(),
    ):
        quantized = quantize(array, decimals)
        digest.update(str(quantized.shape).encode())
        digest.update(quantized.tobytes())
        digest.update(b"|")
    return digest.hexdigest()


class AllocationCache:
    """LRU memo of allocation solves keyed on quantized instance signatures.

    Parameters
    ----------
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
    decimals:
        Quantization precision for array signatures. Vectors that agree
        to ``decimals`` places share a key; anything coarser misses.
    """

    def __init__(self, *, maxsize: int = 2048, decimals: int = 6) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"maxsize must be >= 1, got {maxsize}")
        if decimals < 0:
            raise ConfigurationError(f"decimals must be >= 0, got {decimals}")
        self.maxsize = int(maxsize)
        self.decimals = int(decimals)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._watched: list[int] = []
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def array_signature(self, array: np.ndarray) -> str:
        return array_signature(array, decimals=self.decimals)

    def problem_signature(self, problem: TATIMProblem) -> str:
        return problem_signature(problem, decimals=self.decimals)

    def problem_key(self, scope: str, problem: TATIMProblem) -> tuple:
        """Cache key for a full instance solved by ``scope`` (solver name)."""
        return (scope, self.problem_signature(problem))

    # ------------------------------------------------------------------
    def _scope_of(self, key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return "unscoped"

    def get(self, key: Hashable):
        """Cached value or None; updates hit/miss metrics and LRU order."""
        registry = get_registry()
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            registry.counter(
                "repro_tatim_cache_hits_total",
                help="Allocation-cache hits",
                scope=self._scope_of(key),
            ).inc()
        else:
            self.misses += 1
            registry.counter(
                "repro_tatim_cache_misses_total",
                help="Allocation-cache misses",
                scope=self._scope_of(key),
            ).inc()
        registry.gauge(
            "repro_tatim_cache_hit_ratio",
            help="Allocation-cache hits / lookups over the cache lifetime",
        ).set(self.hit_ratio)
        return value

    def put(self, key: Hashable, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        get_registry().gauge(
            "repro_tatim_cache_entries", help="Allocation-cache resident entries"
        ).set(len(self._entries))

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every entry (e.g. after an environment-store mutation)."""
        self._entries.clear()
        self.invalidations += 1
        registry = get_registry()
        registry.counter(
            "repro_tatim_cache_invalidations_total",
            help="Explicit allocation-cache invalidations",
        ).inc()
        registry.gauge(
            "repro_tatim_cache_entries", help="Allocation-cache resident entries"
        ).set(0)

    def watch(self, store) -> None:
        """Invalidate whenever ``store`` mutates (idempotent per store).

        ``store`` must expose ``subscribe(callback)`` — e.g.
        :class:`repro.rl.crl.EnvironmentStore`.
        """
        if id(store) in self._watched:
            return
        store.subscribe(self.invalidate)
        self._watched.append(id(store))


_active_cache: AllocationCache | None = None


def get_allocation_cache() -> AllocationCache | None:
    """The installed ambient cache, or None when caching is off."""
    return _active_cache


def set_allocation_cache(cache: AllocationCache | None) -> AllocationCache | None:
    """Install (or clear, with None) the process-wide allocation cache."""
    global _active_cache
    _active_cache = cache
    return cache


@contextmanager
def use_allocation_cache(cache: AllocationCache) -> Iterator[AllocationCache]:
    """Temporarily install ``cache``; restores the previous one on exit."""
    previous = _active_cache
    set_allocation_cache(cache)
    try:
        yield cache
    finally:
        set_allocation_cache(previous)
