"""Random TATIM instance generators for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tatim.problem import TATIMProblem
from repro.utils.rng import as_rng


def random_instance(
    n_tasks: int,
    n_processors: int,
    *,
    correlation: float = 0.0,
    tightness: float = 0.5,
    seed=None,
) -> TATIMProblem:
    """Uniform-random instance with controllable profit-size correlation.

    Parameters
    ----------
    correlation:
        0 gives independent importance/size; 1 makes importance proportional
        to size plus noise (the hard regime for greedy heuristics).
    tightness:
        Fraction of the total task mass the processors can hold; lower is
        more constrained.
    """
    if n_tasks < 1 or n_processors < 1:
        raise ConfigurationError("need at least one task and one processor")
    if not 0.0 <= correlation <= 1.0:
        raise ConfigurationError(f"correlation must be in [0, 1], got {correlation}")
    if not 0.0 < tightness <= 1.0:
        raise ConfigurationError(f"tightness must be in (0, 1], got {tightness}")
    rng = as_rng(seed)
    times = rng.uniform(0.1, 1.0, size=n_tasks)
    resources = rng.uniform(0.1, 1.0, size=n_tasks)
    size = (times + resources) / 2.0
    noise = rng.uniform(0.05, 1.0, size=n_tasks)
    importance = correlation * size + (1.0 - correlation) * noise
    time_limit = tightness * times.sum() / n_processors
    time_limit = max(time_limit, float(times.max()))
    capacity_total = tightness * resources.sum()
    shares = rng.dirichlet(np.ones(n_processors))
    capacities = np.maximum(capacity_total * shares, resources.max() * 0.5)
    return TATIMProblem(
        importance=importance,
        times=times,
        resources=resources,
        time_limit=float(time_limit),
        capacities=capacities,
    )


def longtail_instance(
    n_tasks: int,
    n_processors: int,
    *,
    pareto_shape: float = 1.2,
    tightness: float = 0.4,
    seed=None,
) -> TATIMProblem:
    """Instance whose importance follows a Pareto long tail (Observation 1).

    This is the regime the paper's task-importance measurements exhibit:
    most tasks nearly worthless, a few dominating. Greedy allocation is
    near-optimal here, which is exactly why importance-aware allocation
    saves so much compute.
    """
    if pareto_shape <= 0:
        raise ConfigurationError(f"pareto_shape must be > 0, got {pareto_shape}")
    rng = as_rng(seed)
    base = random_instance(n_tasks, n_processors, tightness=tightness, seed=rng)
    importance = rng.pareto(pareto_shape, size=n_tasks) + 1e-3
    importance = importance / importance.max()
    return base.scaled(importance=importance)
