"""repro — reproduction of "Data-driven Task Allocation for Multi-task
Transfer Learning on the Edge" (Chen, Zheng, Hu, Wang, Liu — ICDCS 2019).

The package implements the paper's full stack:

- :mod:`repro.ml` — from-scratch ML substrate (SVM/AdaBoost/RF/kNN/k-means/MLP).
- :mod:`repro.building` — synthetic green-building chiller-plant substrate
  standing in for the proprietary dataset of [22].
- :mod:`repro.transfer` — multi-task transfer learning (MTL) strategies and
  the decision function H(.).
- :mod:`repro.importance` — task importance (Definition 1) and its long-tail
  and dynamics analyses (Figs. 2, 4, 5).
- :mod:`repro.tatim` — the TATIM multiply-constrained multiple-knapsack
  problem, exact and greedy solvers (Definition 4, Theorem 1).
- :mod:`repro.rl` — DQN and Clustered Reinforcement Learning (Algorithm 1).
- :mod:`repro.allocation` — RM / DML / CRL / DCTA allocator policies.
- :mod:`repro.edgesim` — discrete-event edge testbed simulator (Fig. 8).
- :mod:`repro.core` — the DCTASystem facade and experiment runner.
- :mod:`repro.parallel` — worker pool, shared-memory plane, fan-out.
- :mod:`repro.serve` — allocation-as-a-service: request/response schemas,
  traffic samplers, the load-balancing dispatcher, and serving KPIs.

This module is the **one public facade**: experiment constructors, the
serving API, and the error hierarchy are all importable directly from
``repro`` (the names in ``__all__`` are the stability surface; see
``tests/test_public_api.py``). A typical batch session is::

    import repro

    dataset = repro.BuildingOperationDataset(
        repro.BuildingOperationConfig(n_days=30, seed=7)
    ).generate()
    model_set = repro.make_strategy("clustered", "ridge", seed=0).fit(dataset.tasks)
    system = repro.DCTASystem(repro.DCTASystemConfig()).build()

and a serving session is::

    config = repro.ServeConfig(arrival_rate_hz=2000, duration_s=5.0, jobs=4)
    geometry, requests = repro.generate_trace(config)
    with repro.Dispatcher(geometry, config) as dispatcher:
        report = dispatcher.run(requests)
    print(report.table())
"""

__version__ = "1.1.0"

from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset
from repro.core.dcta_system import DCTASystem, DCTASystemConfig
from repro.core.experiment import PTExperiment, build_allocators
from repro.core.online import OnlineDCTA
from repro.core.scenario import ScenarioConfig, SyntheticScenario
from repro.errors import (
    ConfigurationError,
    DataError,
    InfeasibleAllocationError,
    InfeasibleProblemError,
    NotFittedError,
    ReproError,
    SimulationError,
    TrainingError,
)
from repro.serve import (
    AllocationRequest,
    AllocationResponse,
    Dispatcher,
    GaussianPoissonSampler,
    ObservabilityServer,
    PoissonSampler,
    ServeConfig,
    ServeReport,
    generate_trace,
    make_sampler,
)
from repro.telemetry import SLO, SLOEvaluator, TimeSeriesAggregator
from repro.tatim.cache import AllocationCache, use_allocation_cache
from repro.tatim.generators import random_instance
from repro.tatim.problem import TATIMProblem
from repro.tatim.solution import Allocation
from repro.transfer.registry import make_strategy

__all__ = [
    "__version__",
    # building substrate
    "BuildingOperationConfig",
    "BuildingOperationDataset",
    # system / experiment constructors
    "DCTASystem",
    "DCTASystemConfig",
    "OnlineDCTA",
    "PTExperiment",
    "ScenarioConfig",
    "SyntheticScenario",
    "build_allocators",
    "make_strategy",
    # allocation problem + cache
    "Allocation",
    "AllocationCache",
    "TATIMProblem",
    "random_instance",
    "use_allocation_cache",
    # serving plane
    "AllocationRequest",
    "AllocationResponse",
    "Dispatcher",
    "GaussianPoissonSampler",
    "PoissonSampler",
    "ServeConfig",
    "ServeReport",
    "generate_trace",
    "make_sampler",
    # observability plane
    "ObservabilityServer",
    "SLO",
    "SLOEvaluator",
    "TimeSeriesAggregator",
    # error hierarchy
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DataError",
    "InfeasibleProblemError",
    "InfeasibleAllocationError",
    "SimulationError",
    "TrainingError",
]
