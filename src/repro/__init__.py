"""repro — reproduction of "Data-driven Task Allocation for Multi-task
Transfer Learning on the Edge" (Chen, Zheng, Hu, Wang, Liu — ICDCS 2019).

The package implements the paper's full stack:

- :mod:`repro.ml` — from-scratch ML substrate (SVM/AdaBoost/RF/kNN/k-means/MLP).
- :mod:`repro.building` — synthetic green-building chiller-plant substrate
  standing in for the proprietary dataset of [22].
- :mod:`repro.transfer` — multi-task transfer learning (MTL) strategies and
  the decision function H(.).
- :mod:`repro.importance` — task importance (Definition 1) and its long-tail
  and dynamics analyses (Figs. 2, 4, 5).
- :mod:`repro.tatim` — the TATIM multiply-constrained multiple-knapsack
  problem, exact and greedy solvers (Definition 4, Theorem 1).
- :mod:`repro.rl` — DQN and Clustered Reinforcement Learning (Algorithm 1).
- :mod:`repro.allocation` — RM / DML / CRL / DCTA allocator policies.
- :mod:`repro.edgesim` — discrete-event edge testbed simulator (Fig. 8).
- :mod:`repro.core` — the DCTASystem facade and experiment runner.

The common entry points are re-exported here, so a typical session is::

    import repro

    dataset = repro.BuildingOperationDataset(
        repro.BuildingOperationConfig(n_days=30, seed=7)
    ).generate()
    model_set = repro.make_strategy("clustered", "ridge", seed=0).fit(dataset.tasks)
    system = repro.DCTASystem(repro.DCTASystemConfig()).build()
"""

__version__ = "1.0.0"

from repro.building.dataset import BuildingOperationConfig, BuildingOperationDataset
from repro.core.dcta_system import DCTASystem, DCTASystemConfig
from repro.errors import (
    ConfigurationError,
    DataError,
    InfeasibleAllocationError,
    InfeasibleProblemError,
    NotFittedError,
    ReproError,
    SimulationError,
    TrainingError,
)
from repro.tatim.generators import random_instance
from repro.transfer.registry import make_strategy

__all__ = [
    "__version__",
    "BuildingOperationConfig",
    "BuildingOperationDataset",
    "DCTASystem",
    "DCTASystemConfig",
    "make_strategy",
    "random_instance",
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DataError",
    "InfeasibleProblemError",
    "InfeasibleAllocationError",
    "SimulationError",
    "TrainingError",
]
