"""Execution tracing: per-task event timelines and text Gantt charts.

For debugging allocation behavior ("why was the gate late?") the summary
metrics are not enough; this module records the full event sequence of a
simulated epoch and renders it as a device-by-device Gantt chart in plain
text. Tracing is opt-in: wrap the simulator with :class:`TracingSimulator`
(same ``run`` signature, returns ``(SimResult, Trace)``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.edgesim.network import StarNetwork
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import EdgeSimulator, ExecutionPlan, SimResult
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.telemetry import current_run_trace, record_edgesim_trace


@dataclass(frozen=True)
class TraceEvent:
    """One traced span: a transfer or an execution."""

    kind: str  # "input", "execution", "result"
    task_id: int
    node_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DataError(f"event ends before it starts: {self}")


@dataclass
class Trace:
    """Ordered record of everything that happened in one epoch."""

    events: list[TraceEvent] = field(default_factory=list)
    decision_time: float | None = None

    def for_task(self, task_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.task_id == task_id]

    def for_node(self, node_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.node_id == node_id]

    def executions(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "execution"]

    @property
    def horizon(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One meta line plus one JSON object per event.

        The format mirrors :meth:`repro.telemetry.RunTrace.to_jsonl`:
        a leading ``{"kind": "meta", ...}`` line, then ``"kind": "event"``
        lines, unknown kinds reserved for forward compatibility.
        """
        lines = [
            json.dumps(
                {"kind": "meta", "events": len(self.events), "decision_time": self.decision_time}
            )
        ]
        for event in self.events:
            lines.append(
                json.dumps(
                    {
                        "kind": "event",
                        "event": event.kind,
                        "task_id": event.task_id,
                        "node_id": event.node_id,
                        "start": event.start,
                        "end": event.end,
                    }
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse a serialized trace; exact inverse of :meth:`to_jsonl`."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"invalid trace JSONL line: {line[:80]!r}") from exc
            kind = payload.get("kind", "event")
            if kind == "meta":
                decision = payload.get("decision_time")
                trace.decision_time = None if decision is None else float(decision)
            elif kind == "event":
                try:
                    trace.events.append(
                        TraceEvent(
                            kind=str(payload["event"]),
                            task_id=int(payload["task_id"]),
                            node_id=int(payload["node_id"]),
                            start=float(payload["start"]),
                            end=float(payload["end"]),
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise DataError(f"malformed trace event: {payload!r}") from exc
            # Unknown kinds are skipped for forward compatibility.
        return trace

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def read_jsonl(cls, path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 72) -> str:
        """Device-lane Gantt chart: '=' executions, '-' channel transfers."""
        if width < 20:
            raise ConfigurationError(f"width must be >= 20, got {width}")
        if not self.events:
            return "(empty trace)"
        horizon = self.horizon or 1.0
        lanes: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            lane = "channel" if event.kind in ("input", "result") else f"node {event.node_id}"
            lanes.setdefault(lane, []).append(event)
        label_width = max(len(l) for l in lanes)
        lines = []
        for lane in sorted(lanes):
            row = [" "] * width
            for event in lanes[lane]:
                start = int(event.start / horizon * (width - 1))
                end = max(start + 1, int(event.end / horizon * (width - 1)) + 1)
                glyph = "=" if event.kind == "execution" else "-"
                for i in range(start, min(end, width)):
                    row[i] = glyph
            lines.append(f"{lane.ljust(label_width)} |{''.join(row)}|")
        if self.decision_time is not None:
            marker_position = int(self.decision_time / horizon * (width - 1))
            marker = [" "] * width
            if 0 <= marker_position < width:
                marker[marker_position] = "^"
            lines.append(f"{'decision'.ljust(label_width)}  {''.join(marker)} t={self.decision_time:.1f}s")
        lines.append(f"{'scale'.ljust(label_width)}  0 .. {horizon:.1f}s")
        return "\n".join(lines)


class TracingSimulator:
    """EdgeSimulator wrapper that reconstructs the epoch's event spans.

    Rather than instrumenting the DES (which would entangle measurement
    with mechanics), the tracer *replays* the completed run: from the
    result's completion times and the deterministic plan it re-derives
    each task's transfer and execution spans using the same timing model.
    Only completed tasks appear in the trace.
    """

    def __init__(self, simulator: EdgeSimulator) -> None:
        self.simulator = simulator

    def run(
        self,
        tasks: Sequence[SimTask],
        plan: ExecutionPlan,
        **kwargs,
    ) -> tuple[SimResult, Trace]:
        result = self.simulator.run(tasks, plan, **kwargs)
        trace = self._reconstruct(tasks, plan, result)
        if current_run_trace() is not None:
            record_edgesim_trace(trace, label=plan.label)
        return result, trace

    def _reconstruct(
        self, tasks: Sequence[SimTask], plan: ExecutionPlan, result: SimResult
    ) -> Trace:
        task_by_id = {task.task_id: task for task in tasks}
        node_of = dict(plan.assignments)
        network: StarNetwork = self.simulator.network
        events: list[TraceEvent] = []
        for task_id, arrival in sorted(result.completion_times.items(), key=lambda kv: kv[1]):
            task = task_by_id[task_id]
            node_id = node_of.get(task_id)
            if node_id is None:
                continue
            node = self.simulator.nodes[node_id]
            result_span = network.transfer_time(task.result_mb)
            exec_span = node.execution_time(task.input_mb)
            input_span = network.transfer_time(task.input_mb)
            result_start = arrival - result_span
            exec_end = result_start  # lower bound; queueing gaps collapse
            exec_start = exec_end - exec_span
            input_end = exec_start
            input_start = input_end - input_span
            events.append(TraceEvent("input", task_id, node_id, max(0.0, input_start), max(0.0, input_end)))
            events.append(TraceEvent("execution", task_id, node_id, max(0.0, exec_start), max(0.0, exec_end)))
            events.append(TraceEvent("result", task_id, node_id, max(0.0, result_start), arrival))
        decision = result.processing_time if result.gate_crossed else None
        return Trace(events=events, decision_time=decision)
