"""Execution tracing: per-task event timelines and text Gantt charts.

For debugging allocation behavior ("why was the gate late?") the summary
metrics are not enough; this module records the full event sequence of a
simulated epoch and renders it as a device-by-device Gantt chart in plain
text. Tracing is opt-in: wrap the simulator with :class:`TracingSimulator`
(same ``run`` signature, returns ``(SimResult, Trace)``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.edgesim.network import StarNetwork
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import EdgeSimulator, ExecutionPlan, SimResult
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.telemetry import current_run_trace, record_edgesim_trace


@dataclass(frozen=True)
class TraceEvent:
    """One traced span: a transfer or an execution."""

    kind: str  # "input", "execution", "result"
    task_id: int
    node_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DataError(f"event ends before it starts: {self}")


@dataclass
class Trace:
    """Ordered record of everything that happened in one epoch.

    By default the event list is unbounded (fine at testbed scale). With
    ``max_events`` set, ``events`` becomes a ``deque(maxlen=max_events)``
    and :meth:`add` keeps only the most recent events, counting evictions
    in ``dropped`` — so tracing a fleet-scale run holds a bounded ring,
    never O(events). For a full-fidelity record at bounded memory, stream
    through :class:`JsonlTraceSink` instead.
    """

    events: list[TraceEvent] = field(default_factory=list)
    decision_time: float | None = None
    max_events: int | None = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None:
            if self.max_events < 1:
                raise ConfigurationError(
                    f"max_events must be >= 1, got {self.max_events}"
                )
            self.events = deque(self.events, maxlen=self.max_events)

    def add(self, event: TraceEvent) -> None:
        """Append an event, enforcing the ``max_events`` ring bound."""
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(event)

    def for_task(self, task_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.task_id == task_id]

    def for_node(self, node_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.node_id == node_id]

    def executions(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "execution"]

    @property
    def horizon(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One meta line plus one JSON object per event.

        The format mirrors :meth:`repro.telemetry.RunTrace.to_jsonl`:
        a leading ``{"kind": "meta", ...}`` line, then ``"kind": "event"``
        lines, unknown kinds reserved for forward compatibility.
        """
        meta: dict = {
            "kind": "meta",
            "events": len(self.events),
            "decision_time": self.decision_time,
        }
        if self.dropped:
            meta["dropped"] = self.dropped
        lines = [json.dumps(meta)]
        for event in self.events:
            lines.append(
                json.dumps(
                    {
                        "kind": "event",
                        "event": event.kind,
                        "task_id": event.task_id,
                        "node_id": event.node_id,
                        "start": event.start,
                        "end": event.end,
                    }
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse a serialized trace; exact inverse of :meth:`to_jsonl`."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"invalid trace JSONL line: {line[:80]!r}") from exc
            kind = payload.get("kind", "event")
            if kind == "meta":
                decision = payload.get("decision_time")
                trace.decision_time = None if decision is None else float(decision)
                trace.dropped = int(payload.get("dropped", 0) or 0)
            elif kind == "event":
                try:
                    trace.events.append(
                        TraceEvent(
                            kind=str(payload["event"]),
                            task_id=int(payload["task_id"]),
                            node_id=int(payload["node_id"]),
                            start=float(payload["start"]),
                            end=float(payload["end"]),
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise DataError(f"malformed trace event: {payload!r}") from exc
            # Unknown kinds are skipped for forward compatibility.
        return trace

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def read_jsonl(cls, path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())

    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 72) -> str:
        """Device-lane Gantt chart: '=' executions, '-' channel transfers."""
        if width < 20:
            raise ConfigurationError(f"width must be >= 20, got {width}")
        if not self.events:
            return "(empty trace)"
        horizon = self.horizon or 1.0
        lanes: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            lane = "channel" if event.kind in ("input", "result") else f"node {event.node_id}"
            lanes.setdefault(lane, []).append(event)
        label_width = max(len(l) for l in lanes)
        lines = []
        for lane in sorted(lanes):
            row = [" "] * width
            for event in lanes[lane]:
                start = int(event.start / horizon * (width - 1))
                end = max(start + 1, int(event.end / horizon * (width - 1)) + 1)
                glyph = "=" if event.kind == "execution" else "-"
                for i in range(start, min(end, width)):
                    row[i] = glyph
            lines.append(f"{lane.ljust(label_width)} |{''.join(row)}|")
        if self.decision_time is not None:
            marker_position = int(self.decision_time / horizon * (width - 1))
            marker = [" "] * width
            if 0 <= marker_position < width:
                marker[marker_position] = "^"
            lines.append(f"{'decision'.ljust(label_width)}  {''.join(marker)} t={self.decision_time:.1f}s")
        lines.append(f"{'scale'.ljust(label_width)}  0 .. {horizon:.1f}s")
        return "\n".join(lines)


class JsonlTraceSink:
    """Streaming trace writer: events go straight to disk, memory stays O(1).

    The full-fidelity alternative to ``Trace(max_events=...)`` for
    fleet-scale runs: every :meth:`add` writes one JSONL event line
    immediately, and :meth:`close` appends the ``meta`` line
    (:meth:`Trace.from_jsonl` accepts meta anywhere in the stream, so
    writing it last keeps the sink single-pass). Usable as a context
    manager; the file read back with :meth:`Trace.read_jsonl` is the same
    trace an in-memory run would have produced.
    """

    def __init__(self, path) -> None:
        self._handle = open(path, "w", encoding="utf-8")
        self.path = path
        self.events_written = 0
        self.decision_time: float | None = None
        self._closed = False

    def add(self, event: TraceEvent) -> None:
        if self._closed:
            raise ConfigurationError("trace sink is closed")
        self._handle.write(
            json.dumps(
                {
                    "kind": "event",
                    "event": event.kind,
                    "task_id": event.task_id,
                    "node_id": event.node_id,
                    "start": event.start,
                    "end": event.end,
                }
            )
            + "\n"
        )
        self.events_written += 1

    def set_decision(self, decision_time: float | None) -> None:
        self.decision_time = decision_time

    def close(self) -> None:
        if self._closed:
            return
        self._handle.write(
            json.dumps(
                {
                    "kind": "meta",
                    "events": self.events_written,
                    "decision_time": self.decision_time,
                }
            )
            + "\n"
        )
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TracingSimulator:
    """EdgeSimulator wrapper that reconstructs the epoch's event spans.

    Rather than instrumenting the DES (which would entangle measurement
    with mechanics), the tracer *replays* the completed run: from the
    result's completion times and the deterministic plan it re-derives
    each task's transfer and execution spans using the same timing model.
    Only completed tasks appear in the trace.
    """

    def __init__(self, simulator: EdgeSimulator, *, max_events: int | None = None) -> None:
        self.simulator = simulator
        self.max_events = max_events

    def run(
        self,
        tasks: Sequence[SimTask],
        plan: ExecutionPlan,
        **kwargs,
    ) -> tuple[SimResult, Trace]:
        result = self.simulator.run(tasks, plan, **kwargs)
        trace = self._reconstruct(tasks, plan, result)
        if current_run_trace() is not None:
            record_edgesim_trace(trace, label=plan.label)
        return result, trace

    def _reconstruct(
        self, tasks: Sequence[SimTask], plan: ExecutionPlan, result: SimResult
    ) -> Trace:
        task_by_id = {task.task_id: task for task in tasks}
        node_of = dict(plan.assignments)
        network: StarNetwork = self.simulator.network
        trace = Trace(max_events=self.max_events)
        for task_id, arrival in sorted(result.completion_times.items(), key=lambda kv: kv[1]):
            task = task_by_id[task_id]
            node_id = node_of.get(task_id)
            if node_id is None:
                continue
            node = self.simulator.nodes[node_id]
            result_span = network.transfer_time(task.result_mb)
            exec_span = node.execution_time(task.input_mb)
            input_span = network.transfer_time(task.input_mb)
            result_start = arrival - result_span
            exec_end = result_start  # lower bound; queueing gaps collapse
            exec_start = exec_end - exec_span
            input_end = exec_start
            input_start = input_end - input_span
            trace.add(TraceEvent("input", task_id, node_id, max(0.0, input_start), max(0.0, input_end)))
            trace.add(TraceEvent("execution", task_id, node_id, max(0.0, exec_start), max(0.0, exec_end)))
            trace.add(TraceEvent("result", task_id, node_id, max(0.0, result_start), arrival))
        trace.decision_time = result.processing_time if result.gate_crossed else None
        return trace
