"""A minimal deterministic discrete-event engine.

Events are ordered by (time, sequence number), the sequence number breaking
ties in insertion order so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled event; ``payload`` is opaque to the queue."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at an absolute time >= now."""
        if time < self.now - 1e-12:
            raise SimulationError(f"cannot schedule into the past (t={time} < now={self.now})")
        event = Event(max(time, self.now), next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        if event.time < self.now - 1e-12:
            raise SimulationError(
                f"event time {event.time} precedes current time {self.now}"
            )
        self.now = max(self.now, event.time)
        return event

    def run(self, handler: Callable[[Event], None], *, max_events: int = 10_000_000) -> int:
        """Drain the queue through ``handler``; returns events processed."""
        processed = 0
        while self._heap:
            handler(self.pop())
            processed += 1
            if processed > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        return processed
