"""A minimal deterministic discrete-event engine.

Events are ordered by (time, sequence number), the sequence number breaking
ties in insertion order so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError, SimulationError


@dataclass(order=True)
class Event:
    """One scheduled event; ``payload`` is opaque to the queue."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at an absolute time >= now."""
        if time < self.now - 1e-12:
            raise SimulationError(f"cannot schedule into the past (t={time} < now={self.now})")
        event = Event(max(time, self.now), next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        if event.time < self.now - 1e-12:
            raise SimulationError(
                f"event time {event.time} precedes current time {self.now}"
            )
        self.now = max(self.now, event.time)
        return event

    def run(self, handler: Callable[[Event], None], *, max_events: int = 10_000_000) -> int:
        """Drain the queue through ``handler``; returns events processed.

        The bound is checked *before* dispatch: the handler is invoked at most
        ``max_events`` times before :class:`SimulationError` is raised.
        """
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
            handler(self.pop())
            processed += 1
        return processed


class CalendarQueue:
    """Bucketed event calendar for the fleet engine.

    Events are hashed into fixed-width time buckets (``bucket_s`` seconds
    wide). A small heap orders the *bucket ids* while each bucket holds
    columnar chunks of events — numpy arrays of times, kinds, and payload
    slots — so the fleet engine can pop a whole cohort of same-kind events
    and apply it as one vectorized batch instead of one ``heapq`` pop per
    event.

    Ordering is the same total order as :class:`EventQueue`: (time,
    insertion sequence). Within a bucket the chunks are concatenated and
    stably argsorted by time, which preserves insertion order among
    equal-time events because chunks are appended in schedule order. Events
    scheduled *into the currently draining bucket* (handlers scheduling at
    ``now + small delay``) collect in a pending list and are merged with
    the unprocessed remainder — one re-sort per pop, however many batches
    handlers scheduled in between — so the total order is never violated.

    Event kinds are small ints (the engine defines its own enum); payloads
    are parallel int64 columns (``a`` and ``b``) whose meaning depends on
    the kind.
    """

    def __init__(self, bucket_s: float = 1.0, start: float = 0.0) -> None:
        if bucket_s <= 0:
            raise ConfigurationError(f"bucket_s must be > 0, got {bucket_s}")
        self.bucket_s = float(bucket_s)
        self.now = float(start)
        self._seq = 0
        # bucket id -> list of (times, kinds, a, b, seqs) chunk tuples
        self._buckets: dict[int, list[tuple]] = {}
        self._bucket_heap: list[int] = []
        self._size = 0
        # Current drained-but-unprocessed cohort (columnar, sorted), plus
        # chunks scheduled into it since the last merge.
        self._cur: tuple | None = None
        self._cur_pos = 0
        self._cur_bucket = -1
        self._cur_pending: list[tuple] = []

    def __len__(self) -> int:
        pending = self._size
        if self._cur is not None:
            pending += len(self._cur[0]) - self._cur_pos
        pending += sum(len(chunk[0]) for chunk in self._cur_pending)
        return pending

    def _bucket_id(self, time: float) -> int:
        return int(time / self.bucket_s)

    def schedule(self, time: float, kind: int, a: int = 0, b: int = 0) -> None:
        """Schedule one event at absolute ``time`` (clamped to now)."""
        self.schedule_batch(
            np.asarray([time], dtype=np.float64),
            np.asarray([kind], dtype=np.int32),
            np.asarray([a], dtype=np.int64),
            np.asarray([b], dtype=np.int64),
        )

    def schedule_batch(
        self,
        times: "np.ndarray",
        kinds: "np.ndarray",
        a: "np.ndarray",
        b: "np.ndarray",
    ) -> None:
        """Schedule a batch of events; times are clamped to ``now``.

        The batch is assigned consecutive sequence numbers in array order,
        matching :meth:`EventQueue.schedule` called in a loop.
        """
        n = len(times)
        if n == 0:
            return
        times = np.maximum(np.asarray(times, dtype=np.float64), self.now)
        if float(times.min()) < self.now - 1e-12:
            raise SimulationError("cannot schedule into the past")
        seqs = np.arange(self._seq, self._seq + n, dtype=np.int64)
        self._seq += n
        bucket_ids = (times / self.bucket_s).astype(np.int64)
        first = int(bucket_ids[0])
        if n == 1 or int(bucket_ids.min()) == int(bucket_ids.max()):
            self._push_chunk(first, (times, kinds, a, b, seqs))
        else:
            order = np.argsort(bucket_ids, kind="stable")
            sb = bucket_ids[order]
            edges = np.flatnonzero(np.diff(sb)) + 1
            starts = np.concatenate(([0], edges))
            ends = np.concatenate((edges, [n]))
            for s, e in zip(starts, ends):
                idx = order[s:e]
                self._push_chunk(
                    int(sb[s]), (times[idx], kinds[idx], a[idx], b[idx], seqs[idx])
                )

    def _push_chunk(self, bucket_id: int, chunk: tuple) -> None:
        if bucket_id == self._cur_bucket and self._cur is not None:
            # Late arrivals into the bucket being drained: queue for a lazy
            # merge — the next pop restores (time, seq) order in one sort.
            self._cur_pending.append(chunk)
            return
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            self._buckets[bucket_id] = [chunk]
            heapq.heappush(self._bucket_heap, bucket_id)
        else:
            bucket.append(chunk)
        self._size += len(chunk[0])

    def _merge_pending(self) -> None:
        p = self._cur_pos
        chunks = [tuple(col[p:] for col in self._cur)] + self._cur_pending
        self._cur_pending = []
        merged = tuple(
            np.concatenate([chunk[i] for chunk in chunks]) for i in range(5)
        )
        order = np.lexsort((merged[4], merged[0]))
        self._cur = tuple(col[order] for col in merged)
        self._cur_pos = 0

    def _load_next_bucket(self) -> bool:
        while self._bucket_heap:
            bucket_id = heapq.heappop(self._bucket_heap)
            chunks = self._buckets.pop(bucket_id, None)
            if not chunks:
                continue
            if len(chunks) == 1:
                times, kinds, a, b, seqs = chunks[0]
            else:
                times = np.concatenate([c[0] for c in chunks])
                kinds = np.concatenate([c[1] for c in chunks])
                a = np.concatenate([c[2] for c in chunks])
                b = np.concatenate([c[3] for c in chunks])
                seqs = np.concatenate([c[4] for c in chunks])
            order = np.lexsort((seqs, times))
            self._cur = (times[order], kinds[order], a[order], b[order], seqs[order])
            self._cur_pos = 0
            self._cur_bucket = bucket_id
            self._size -= len(times)
            return True
        return False

    def _ensure_current(self) -> bool:
        while True:
            if self._cur is not None:
                if self._cur_pending:
                    self._merge_pending()
                if self._cur_pos < len(self._cur[0]):
                    return True
                self._cur = None
                self._cur_bucket = -1
            if not self._load_next_bucket():
                return False

    def pop_event(self) -> tuple[float, int, int, int] | None:
        """Pop the single next event in (time, sequence) order.

        Used by the epoch-identity kernel, which must interleave event kinds
        exactly like :class:`EventQueue`. Advances the clock.
        """
        if not self._ensure_current():
            return None
        times, kinds, a, b, _ = self._cur
        i = self._cur_pos
        self._cur_pos = i + 1
        t = float(times[i])
        self.now = max(self.now, t)
        return t, int(kinds[i]), int(a[i]), int(b[i])

    def peek_time(self) -> float | None:
        """Time of the next event without popping it (or ``None`` if empty).

        Does not advance the clock. Used by the conservative sharded runner
        to decide whether the head event is still inside the current
        lookahead window or a barrier must be crossed first.
        """
        if not self._ensure_current():
            return None
        return float(self._cur[0][self._cur_pos])

    def pop_cohort(self) -> tuple | None:
        """Pop every unprocessed event of the head event's kind, this bucket.

        Returns ``(kind, times, a, b)`` arrays (time-sorted) or ``None``
        when the calendar is empty. Gathering a whole kind at once — not
        just the consecutive run — keeps cohorts large when kinds
        interleave; the cross-kind reordering this introduces relative to
        strict per-event interleaving is bounded by ``bucket_s`` and fully
        deterministic. The clock advances monotonically to the cohort's
        last event.
        """
        if not self._ensure_current():
            return None
        times, kinds, a, b, seqs = self._cur
        i = self._cur_pos
        kind = int(kinds[i])
        rest = kinds[i:]
        selected = rest == kind
        if selected.all():
            self._cur_pos = len(times)
            cohort = (times[i:], a[i:], b[i:])
        else:
            take = np.flatnonzero(selected) + i
            keep = np.flatnonzero(~selected) + i
            cohort = (times[take], a[take], b[take])
            self._cur = (times[keep], kinds[keep], a[keep], b[keep], seqs[keep])
            self._cur_pos = 0
        self.now = max(self.now, float(cohort[0][-1]))
        return kind, cohort[0], cohort[1], cohort[2]
