"""Network transfer models: shared-medium star, switched star, star-of-stars.

Unit convention
---------------
All transfer sizes in ``repro.edgesim`` are **megabits** (Mb), and all
bandwidths are megabits per second (Mbps), so ``size / bandwidth`` is
directly seconds on the wire. Fields and parameters use the ``_mbit``
suffix for sizes (``size_mbit``) and ``_mbps`` for rates. Historical
fields named ``*_mb`` elsewhere in the package (``SimTask.input_mb``,
``result_mb``) also mean megabits; only ``memory_mb`` is megabytes of RAM.

WiFi is a shared medium: every transfer between the controller and a
worker node occupies the same radio, so transfers serialize. This is what
makes processing time sensitive to both the number of tasks shipped and
the channel bandwidth — the two levers behind the paper's Figs. 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StarNetwork:
    """Shared-channel star topology parameters.

    Attributes
    ----------
    bandwidth_mbps:
        Channel throughput in megabits per second.
    latency_s:
        Fixed per-transfer protocol overhead (association, ACKs).
    """

    bandwidth_mbps: float = 50.0
    latency_s: float = 0.005

    #: One radio: every transfer serializes through the same medium.
    shared_medium: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {self.latency_s}")

    def transfer_time(self, size_mbit: float) -> float:
        """Seconds to move ``size_mbit`` megabits across the channel."""
        if size_mbit < 0:
            raise ConfigurationError(f"size_mbit must be >= 0, got {size_mbit}")
        return self.latency_s + size_mbit / self.bandwidth_mbps

    def with_bandwidth(self, bandwidth_mbps: float) -> "StarNetwork":
        """Sibling network at a different bandwidth (for the Fig. 11 sweep)."""
        return StarNetwork(bandwidth_mbps=bandwidth_mbps, latency_s=self.latency_s)


@dataclass(frozen=True)
class SwitchedNetwork:
    """Switched star: a dedicated full-duplex link per worker node.

    Models the wired-Ethernet alternative to the paper's WiFi: transfers to
    different nodes proceed in parallel (per-link serialization only).
    Comparing the two isolates how much of an importance-blind policy's
    penalty is channel *contention* versus compute placement — the
    `test_ablation_topology` benchmark.
    """

    bandwidth_mbps: float = 50.0
    latency_s: float = 0.001

    shared_medium: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {self.latency_s}")

    def transfer_time(self, size_mbit: float) -> float:
        """Seconds to move ``size_mbit`` megabits over one dedicated link."""
        if size_mbit < 0:
            raise ConfigurationError(f"size_mbit must be >= 0, got {size_mbit}")
        return self.latency_s + size_mbit / self.bandwidth_mbps

    def with_bandwidth(self, bandwidth_mbps: float) -> "SwitchedNetwork":
        """Sibling network at a different per-link bandwidth."""
        return SwitchedNetwork(bandwidth_mbps=bandwidth_mbps, latency_s=self.latency_s)


@dataclass(frozen=True)
class RegionalNetwork:
    """Star-of-stars: regional access networks behind a switched backhaul.

    Nodes are partitioned into ``n_regions`` regions. Each region has its
    own shared-medium access network (a :class:`StarNetwork` radio shared
    by every node in the region), and regions connect to the controller
    over a switched backhaul (:class:`SwitchedNetwork`, one dedicated link
    per region). A fleet-engine transfer therefore pays

    ``backhaul.transfer_time(size) + access.transfer_time(size)``

    where the access half serializes with other transfers in the same
    region and the backhaul half is pure delay (one link per region, and
    region links are modelled uncontended).

    Used by :class:`repro.edgesim.fleet.FleetSimulator` for open-loop fleet
    runs; the flat epoch simulators keep taking :class:`StarNetwork` /
    :class:`SwitchedNetwork` directly.
    """

    n_regions: int = 4
    access: StarNetwork = field(default_factory=StarNetwork)
    backhaul: SwitchedNetwork = field(
        default_factory=lambda: SwitchedNetwork(bandwidth_mbps=1000.0, latency_s=0.002)
    )

    def __post_init__(self) -> None:
        if self.n_regions <= 0:
            raise ConfigurationError(f"n_regions must be > 0, got {self.n_regions}")
        if not self.access.shared_medium:
            raise ConfigurationError("access network must be a shared medium")

    def region_of(self, node_index: int) -> int:
        """Region a node lands in (round-robin partition by index)."""
        return node_index % self.n_regions

    def backhaul_time(self, size_mbit: float) -> float:
        """Uncontended seconds on the region's backhaul link."""
        return self.backhaul.transfer_time(size_mbit)

    def access_time(self, size_mbit: float) -> float:
        """Seconds occupying the region's shared access radio."""
        return self.access.transfer_time(size_mbit)

    def transfer_time(self, size_mbit: float) -> float:
        """End-to-end uncontended seconds (backhaul + access)."""
        return self.backhaul.transfer_time(size_mbit) + self.access.transfer_time(size_mbit)

    @property
    def lookahead_s(self) -> float:
        """Minimum delay before one region can influence another.

        Regions only interact through the controller: any cross-region
        causal chain rides the backhaul at least twice (region -> controller
        -> region), each hop paying the fixed protocol latency even for a
        zero-byte message. A conservative parallel runner may therefore
        drain each region-group's calendar ``lookahead_s`` ahead of the
        slowest peer without risking a causality violation.
        """
        return 2.0 * self.backhaul.latency_s
