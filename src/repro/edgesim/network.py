"""Star WiFi network: a single shared channel at the controller.

WiFi is a shared medium: every transfer between the controller and a
worker node occupies the same radio, so transfers serialize. This is what
makes processing time sensitive to both the number of tasks shipped and
the channel bandwidth — the two levers behind the paper's Figs. 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StarNetwork:
    """Shared-channel star topology parameters.

    Attributes
    ----------
    bandwidth_mbps:
        Channel throughput in megabits per second.
    latency_s:
        Fixed per-transfer protocol overhead (association, ACKs).
    """

    bandwidth_mbps: float = 50.0
    latency_s: float = 0.005

    #: One radio: every transfer serializes through the same medium.
    shared_medium: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {self.latency_s}")

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` megabits across the channel."""
        if size_mb < 0:
            raise ConfigurationError(f"size_mb must be >= 0, got {size_mb}")
        return self.latency_s + size_mb / self.bandwidth_mbps

    def with_bandwidth(self, bandwidth_mbps: float) -> "StarNetwork":
        """Sibling network at a different bandwidth (for the Fig. 11 sweep)."""
        return StarNetwork(bandwidth_mbps=bandwidth_mbps, latency_s=self.latency_s)


@dataclass(frozen=True)
class SwitchedNetwork:
    """Switched star: a dedicated full-duplex link per worker node.

    Models the wired-Ethernet alternative to the paper's WiFi: transfers to
    different nodes proceed in parallel (per-link serialization only).
    Comparing the two isolates how much of an importance-blind policy's
    penalty is channel *contention* versus compute placement — the
    `test_ablation_topology` benchmark.
    """

    bandwidth_mbps: float = 50.0
    latency_s: float = 0.001

    shared_medium: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {self.latency_s}")

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` megabits over one dedicated link."""
        if size_mb < 0:
            raise ConfigurationError(f"size_mb must be >= 0, got {size_mb}")
        return self.latency_s + size_mb / self.bandwidth_mbps

    def with_bandwidth(self, bandwidth_mbps: float) -> "SwitchedNetwork":
        """Sibling network at a different per-link bandwidth."""
        return SwitchedNetwork(bandwidth_mbps=bandwidth_mbps, latency_s=self.latency_s)
