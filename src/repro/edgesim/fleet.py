"""Fleet-scale edge simulation: SoA node state + batched calendar kernel.

Two engines share this module:

1. **Epoch identity kernel** (:meth:`FleetSimulator.run`) — a drop-in
   replacement for :class:`~repro.edgesim.simulator.EdgeSimulator` on the
   paper's testbed. Per-task transfer and execution times are precomputed
   as vectorized numpy columns (bitwise-identical to the scalar
   arithmetic, since ``latency + size / bw`` and ``(mb * 1e6) * s_per_bit``
   are the same IEEE-754 operations elementwise), events drain as lean
   ``(time, seq, kind, position)`` tuples in exactly ``EdgeSimulator``'s
   (time, insertion-sequence) order, and the run
   returns the moment the quality gate crosses — events still in flight
   after the gate provably cannot change the :class:`SimResult`, so the
   early exit is free speedup with *exact* result identity (asserted by
   the identity test tier and the ``edgesim_fleet_epoch_kernel`` bench).

2. **Open-loop fleet engine** (:meth:`FleetSimulator.run_fleet`) — the
   ROADMAP's fleet-scale mode: 10k–1M nodes in hierarchical
   :class:`~repro.edgesim.network.RegionalNetwork` topologies, open-loop
   arrivals from :mod:`repro.serve.samplers`, node churn with the
   re-dispatch semantics of the epoch simulator (lost work is re-shipped
   to a surviving node), and streaming metrics through
   :class:`~repro.telemetry.timeseries.TimeSeriesAggregator`. Node state
   lives in preallocated numpy columns; homogeneous event cohorts
   (arrivals, transfer completions, execution completions) are popped
   from the calendar as batches and applied with vectorized kernels, so
   throughput is dominated by numpy, not the interpreter, and memory is
   O(nodes + in-flight tasks + windows) — never O(events). Cohorts never
   span calendar buckets, so the only relaxation versus strict per-event
   interleaving is bounded by ``bucket_s`` and fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.edgesim.events import CalendarQueue
from repro.edgesim.network import RegionalNetwork
from repro.edgesim.node import NODE_PRESETS, EdgeNode
from repro.edgesim.simulator import EdgeSimulator, ExecutionPlan, SimResult
from repro.edgesim.workload import FleetWorkload, SimTask
from repro.errors import ConfigurationError, DataError
from repro.serve.samplers import make_sampler
from repro.telemetry import get_registry, span
from repro.telemetry.bridge import sim_time_aggregator
from repro.telemetry.instruments import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.telemetry.timeseries import TimeSeriesAggregator, estimate_quantile
from repro.utils.rng import as_rng, derive_seeds

# Epoch-kernel event kinds (mirror EdgeSimulator's string kinds).
_K_INPUT = 0
_K_EXEC = 1
_K_RESULT = 2

# Fleet-engine event kinds.
_F_ARRIVAL = 0
_F_XFER_DONE = 1
_F_EXEC_DONE = 2
_F_FAIL = 3
_F_RECOVER = 4
_F_REFILL = 5


def _fifo_ends(ready: np.ndarray, durations: np.ndarray, busy0: float) -> np.ndarray:
    """Completion times of a FIFO resource serving jobs in array order.

    Solves ``end_i = max(ready_i, end_{i-1}) + d_i`` (with ``end_0``
    seeded by ``busy0``) without a Python loop: with ``s = cumsum(d)``,
    ``end_i = s_i + max_{j<=i} max(busy0, ready_j - s_{j-1})``.
    """
    s = np.cumsum(durations)
    return s + np.maximum.accumulate(np.maximum(ready - (s - durations), busy0))


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one open-loop fleet run.

    Attributes
    ----------
    n_nodes:
        Fleet size; nodes cycle through ``node_presets`` and are
        partitioned round-robin into ``n_regions`` regions.
    duration_s:
        Arrival horizon (simulated seconds); in-flight work drains after.
    arrival_rate_hz:
        Fleet-wide open-loop arrival rate (tasks/second).
    sampler / burst_sigma:
        Inter-arrival family from :mod:`repro.serve.samplers`.
    mean_input_mbit / result_mbit:
        Workload sizes in megabits (see :mod:`repro.edgesim.network`).
    churn_rate_hz:
        Fleet-wide node-failure rate; each failed node recovers after
        ``recovery_s``. Work lost to a failure is re-dispatched to a
        surviving node in the same region (the epoch simulator's
        reassignment semantics); with a whole region down, its tasks drop.
    window_s / max_windows:
        Tumbling-window geometry of the streaming metrics ring.
    chunk:
        Arrivals generated per refill batch — the O(chunk) arrival buffer.
    bucket_s:
        Calendar-queue bucket width; also the bound on cohort batching
        skew.
    """

    n_nodes: int = 1000
    n_regions: int = 8
    duration_s: float = 60.0
    # Defaults sit at ~60% access-radio utilization (the binding resource:
    # ~0.165 s of radio per mean task, 8 radios) so the open-loop system
    # is stable and in-flight work stays bounded.
    arrival_rate_hz: float = 30.0
    sampler: str = "poisson"
    burst_sigma: float = 0.4
    mean_input_mbit: float = 8.0
    result_mbit: float = 0.1
    churn_rate_hz: float = 0.0
    recovery_s: float = 5.0
    window_s: float = 10.0
    max_windows: int = 240
    chunk: int = 8192
    bucket_s: float = 1.0
    seed: int = 0
    node_presets: tuple[str, ...] = ("rpi-a+", "rpi-b", "rpi-b+")
    network: RegionalNetwork | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_regions < 1 or self.n_regions > self.n_nodes:
            raise ConfigurationError(
                f"n_regions must be in [1, n_nodes], got {self.n_regions}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration_s must be > 0, got {self.duration_s}")
        if self.arrival_rate_hz <= 0:
            raise ConfigurationError(
                f"arrival_rate_hz must be > 0, got {self.arrival_rate_hz}"
            )
        if self.churn_rate_hz < 0:
            raise ConfigurationError(
                f"churn_rate_hz must be >= 0, got {self.churn_rate_hz}"
            )
        if self.recovery_s <= 0:
            raise ConfigurationError(f"recovery_s must be > 0, got {self.recovery_s}")
        if self.chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {self.chunk}")
        if not self.node_presets:
            raise ConfigurationError("node_presets must not be empty")
        for preset in self.node_presets:
            if preset not in NODE_PRESETS:
                raise ConfigurationError(f"unknown node preset {preset!r}")
        if self.network is not None and self.network.n_regions != self.n_regions:
            raise ConfigurationError(
                f"network has {self.network.n_regions} regions, config says {self.n_regions}"
            )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one open-loop fleet run.

    ``timeseries`` is the streaming aggregator (flushed): its bounded
    window ring is the run's full metric trajectory; latency percentiles
    are bucket-interpolated estimates from a run-wide histogram, so no
    per-task record survives the run.

    ``latency_state`` is the raw run-wide latency histogram as plain
    picklable data ``(edges, bucket_counts, overflow, count, sum)``. The
    sharded runner sums these states across region groups and re-derives
    the merged percentiles from the summed buckets — exactly what a
    single group covering the whole fleet would have computed.
    """

    n_nodes: int
    n_regions: int
    duration_s: float
    arrivals: int
    completed: int
    dropped: int
    redispatched: int
    failures: int
    recoveries: int
    events: int
    peak_in_flight: int
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    timeseries: TimeSeriesAggregator = field(repr=False)
    latency_state: tuple | None = field(default=None, repr=False)

    @property
    def windows(self) -> list:
        return list(self.timeseries.windows)


class _SlotPool:
    """Preallocated columnar store for in-flight tasks, with a free list.

    Columns are indexed by *slot id*; slots are recycled on completion so
    capacity tracks peak in-flight tasks, not total arrivals. Growth
    doubles the columns (amortized O(1) per task).
    """

    __slots__ = (
        "capacity", "arrival_t", "size_mbit", "node", "incarnation",
        "_free", "_top", "peak_in_use",
    )

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = int(capacity)
        self.arrival_t = np.zeros(self.capacity, dtype=np.float64)
        self.size_mbit = np.zeros(self.capacity, dtype=np.float64)
        self.node = np.full(self.capacity, -1, dtype=np.int64)
        self.incarnation = np.zeros(self.capacity, dtype=np.int64)
        self._free = np.arange(self.capacity - 1, -1, -1, dtype=np.int64)
        self._top = self.capacity
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self._top

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        self.arrival_t = np.concatenate([self.arrival_t, np.zeros(old)])
        self.size_mbit = np.concatenate([self.size_mbit, np.zeros(old)])
        self.node = np.concatenate([self.node, np.full(old, -1, dtype=np.int64)])
        self.incarnation = np.concatenate(
            [self.incarnation, np.zeros(old, dtype=np.int64)]
        )
        free = np.empty(new, dtype=np.int64)
        free[:old] = np.arange(new - 1, old - 1, -1, dtype=np.int64)
        free[old : old + self._top] = self._free[: self._top]
        self._free = free
        self._top += old
        self.capacity = new

    def alloc(self, k: int) -> np.ndarray:
        while self._top < k:
            self._grow()
        ids = self._free[self._top - k : self._top].copy()
        self._top -= k
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        return ids

    def free(self, ids: np.ndarray) -> None:
        k = len(ids)
        self._free[self._top : self._top + k] = ids
        self._top += k


class FleetSimulator:
    """SoA discrete-event engine: epoch-identical and fleet-scale modes.

    Construct from node objects for the drop-in epoch engine
    (``FleetSimulator(nodes, network)`` — same signature and semantics as
    :class:`EdgeSimulator`), or from a :class:`FleetConfig` via
    :meth:`build` for the open-loop fleet engine, which never materializes
    per-node objects.
    """

    #: Fixed decision-aggregation overhead once the gate is crossed.
    AGGREGATION_TIME = EdgeSimulator.AGGREGATION_TIME

    def __init__(
        self,
        nodes: Sequence[EdgeNode],
        network,
        *,
        quality_threshold: float = 0.8,
        bucket_s: float = 1.0,
    ) -> None:
        if not nodes:
            raise ConfigurationError("simulator needs at least one node")
        if not 0.0 < quality_threshold <= 1.0:
            raise ConfigurationError(
                f"quality_threshold must be in (0, 1], got {quality_threshold}"
            )
        self.nodes = {node.node_id: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise ConfigurationError("node ids must be unique")
        self.network = network
        self.quality_threshold = float(quality_threshold)
        self._bucket_s = float(bucket_s)
        self._config: FleetConfig | None = None
        self._reference_sim: EdgeSimulator | None = None

    # ------------------------------------------------------------------
    # Fleet construction: columns only, no EdgeNode objects.
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: FleetConfig,
        *,
        s_per_bit: np.ndarray | None = None,
        region: np.ndarray | None = None,
    ) -> "FleetSimulator":
        """A fleet-mode simulator whose node state is numpy columns.

        ``s_per_bit`` and ``region`` override the default round-robin
        preset/region columns; the sharded runner passes slices of the
        whole-fleet columns (attached zero-copy from shared memory) so
        each region group sees exactly the node population it would own
        in a single-process run. Callers passing ``region`` are
        responsible for it being 0-based and dense over
        ``config.n_regions``.
        """
        sim = cls.__new__(cls)
        sim.nodes = {}
        sim.network = config.network or RegionalNetwork(n_regions=config.n_regions)
        sim.quality_threshold = 0.8
        sim._bucket_s = float(config.bucket_s)
        sim._config = config
        sim._reference_sim = None
        n = config.n_nodes
        if s_per_bit is None:
            rates = np.asarray(
                [NODE_PRESETS[p][0] for p in config.node_presets], dtype=np.float64
            )
            s_per_bit = rates[np.arange(n) % len(rates)]
        else:
            s_per_bit = np.ascontiguousarray(s_per_bit, dtype=np.float64)
            if len(s_per_bit) != n:
                raise ConfigurationError(
                    f"s_per_bit column has {len(s_per_bit)} entries, config says {n}"
                )
        if region is None:
            region = np.arange(n, dtype=np.int64) % config.n_regions
        else:
            region = np.ascontiguousarray(region, dtype=np.int64)
            if len(region) != n:
                raise ConfigurationError(
                    f"region column has {len(region)} entries, config says {n}"
                )
        sim._c_s_per_bit = s_per_bit
        sim._c_region = region
        sim._c_alive = np.ones(n, dtype=bool)
        sim._c_incarnation = np.zeros(n, dtype=np.int64)
        sim._c_busy_until = np.zeros(n, dtype=np.float64)
        sim._region_nodes = [
            np.flatnonzero(sim._c_region == r) for r in range(config.n_regions)
        ]
        sim._region_rr = [0] * config.n_regions
        return sim

    # ------------------------------------------------------------------
    # Epoch mode: exact EdgeSimulator semantics.
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[SimTask],
        plan: ExecutionPlan,
        *,
        failures: dict[int, float] | None = None,
        dependencies=None,
    ) -> SimResult:
        """Simulate one epoch; exact :meth:`EdgeSimulator.run` semantics.

        The churn-free, dependency-free case (the Figs. 9–11 benchmark
        configuration) runs on the batched kernel with precomputed timing
        columns and gate-crossing early exit; runs with ``failures`` or
        ``dependencies`` delegate to the reference event loop so the
        corner semantics stay single-sourced. Both paths emit the same
        telemetry envelope as ``EdgeSimulator.run``.
        """
        with span("edgesim.run", plan=plan.label, tasks=len(tasks)):
            if failures or dependencies is not None:
                result = self._reference()._run(
                    tasks, plan, failures=failures, dependencies=dependencies
                )
            else:
                result = self._run_epoch(tasks, plan)
        registry = get_registry()
        registry.counter(
            "repro_edgesim_runs_total", help="Simulated decision epochs", plan=plan.label
        ).inc()
        registry.counter(
            "repro_edgesim_tasks_executed_total",
            help="Tasks whose results reached the controller before the decision",
            plan=plan.label,
        ).inc(result.tasks_executed)
        if result.gate_crossed:
            registry.histogram(
                "repro_edgesim_pt_seconds",
                help="Processing Time PT = t_s - t_c (simulated seconds)",
                plan=plan.label,
            ).observe(result.processing_time)
        else:
            registry.counter(
                "repro_edgesim_gate_misses_total",
                help="Epochs whose quality gate never closed (PT = inf)",
                plan=plan.label,
            ).inc()
        return result

    def _reference(self) -> EdgeSimulator:
        if not self.nodes:
            raise ConfigurationError(
                "epoch runs need a node-constructed FleetSimulator; this one was "
                "built from a FleetConfig"
            )
        if self._reference_sim is None:
            self._reference_sim = EdgeSimulator(
                list(self.nodes.values()),
                self.network,
                quality_threshold=self.quality_threshold,
            )
        return self._reference_sim

    def _run_epoch(self, tasks: Sequence[SimTask], plan: ExecutionPlan) -> SimResult:
        """The fast epoch kernel (no churn, no dependencies).

        A faithful transcription of ``EdgeSimulator._run`` over plan
        positions instead of task objects: per-position transfer and
        execution durations are precomputed in one vectorized pass, events
        are plain ``(time, seq, kind, position)`` tuples on a heap (the
        identical (time, insertion-sequence) total order, without the
        per-event dataclass and payload overhead), and the loop returns at
        the gate crossing — every event still in flight at that point only
        toggles link/node bookkeeping and can no longer reach the result
        dict, so ``SimResult`` is bit-for-bit the reference one. Epoch
        streams are tiny and strictly interleaved, so scalar pops in exact
        order are the right kernel here; cohort batching lives in
        :meth:`run_fleet`, where open-loop streams make cohorts wide.
        """
        if not self.nodes:
            raise ConfigurationError(
                "epoch runs need a node-constructed FleetSimulator; this one was "
                "built from a FleetConfig"
            )
        task_by_id = {task.task_id: task for task in tasks}
        for task_id, node_id in plan.assignments:
            if task_id not in task_by_id:
                raise DataError(f"plan references unknown task {task_id}")
            if node_id not in self.nodes:
                raise DataError(f"plan references unknown node {node_id}")

        total_importance = float(sum(t.true_importance for t in task_by_id.values()))
        gate_target = self.quality_threshold * total_importance

        n = len(plan.assignments)
        tid = [t for t, _ in plan.assignments]
        nid = [node for _, node in plan.assignments]
        importance = [task_by_id[t].true_importance for t in tid]
        input_mbit = np.asarray([task_by_id[t].input_mb for t in tid], dtype=np.float64)
        result_mbit = np.asarray([task_by_id[t].result_mb for t in tid], dtype=np.float64)
        s_per_bit = np.asarray(
            [self.nodes[node].compute_s_per_bit for node in nid], dtype=np.float64
        )
        latency = self.network.latency_s
        bandwidth = self.network.bandwidth_mbps
        # Elementwise `lat + size / bw` and `(mb * 1e6) * s_per_bit` are the
        # same IEEE-754 double ops as the scalar transfer_time /
        # execution_time calls — identity depends on this.
        input_tt = (latency + input_mbit / bandwidth).tolist()
        result_tt = (latency + result_mbit / bandwidth).tolist()
        exec_tt = ((input_mbit * 1e6) * s_per_bit).tolist()

        heap: list[tuple[float, int, int, int]] = []
        sequence = 0
        now = plan.allocation_time
        pending_inputs: list[int] = list(range(n))
        pending_results: list[int] = []
        shared_medium = bool(getattr(self.network, "shared_medium", True))
        link_busy: dict[object, bool] = {}
        node_queues: dict[int, list[int]] = {node_id: [] for node_id in self.nodes}
        node_busy: dict[int, bool] = {node_id: False for node_id in self.nodes}
        achieved = 0.0
        completed: dict[int, float] = {}
        decision_time: float | None = None
        cancelled = False

        def link_of(node_id: int, kind: int):
            if shared_medium:
                return "shared"
            return (node_id, kind)

        def start_next_transfer() -> None:
            nonlocal sequence
            for queue_list, kind in ((pending_results, _K_RESULT), (pending_inputs, _K_INPUT)):
                if kind == _K_INPUT and cancelled:
                    continue
                index = 0
                while index < len(queue_list):
                    position = queue_list[index]
                    link = link_of(nid[position], kind)
                    if link_busy.get(link, False):
                        index += 1
                        continue
                    queue_list.pop(index)
                    link_busy[link] = True
                    duration = result_tt[position] if kind == _K_RESULT else input_tt[position]
                    heapq.heappush(heap, (now + duration, sequence, kind, position))
                    sequence += 1

        def start_next_execution(node_id: int) -> None:
            nonlocal sequence
            if node_busy[node_id] or cancelled or not node_queues[node_id]:
                return
            position = node_queues[node_id].pop(0)
            node_busy[node_id] = True
            heapq.heappush(heap, (now + exec_tt[position], sequence, _K_EXEC, position))
            sequence += 1

        start_next_transfer()
        while heap:
            event_time, _seq, kind, position = heapq.heappop(heap)
            if event_time > now:
                now = event_time
            node_id = nid[position]
            if kind == _K_INPUT:
                link_busy[link_of(node_id, _K_INPUT)] = False
                node_queues[node_id].append(position)
                start_next_execution(node_id)
                start_next_transfer()
            elif kind == _K_EXEC:
                node_busy[node_id] = False
                pending_results.append(position)
                start_next_transfer()
                start_next_execution(node_id)
            else:  # _K_RESULT
                link_busy[link_of(node_id, _K_RESULT)] = False
                if decision_time is None:
                    completed[tid[position]] = now
                    achieved += importance[position]
                    if achieved >= gate_target - 1e-12:
                        decision_time = now + self.AGGREGATION_TIME
                        # Gate crossed: pending inputs are cancelled and
                        # every event still in flight can only toggle
                        # link/node state — the result is final.
                        break
                start_next_transfer()

        if decision_time is not None:
            processing_time = decision_time
            gate_crossed = True
        else:
            processing_time = float("inf")
            gate_crossed = False
        return SimResult(
            processing_time=processing_time,
            tasks_executed=len(completed),
            importance_achieved=float(achieved),
            gate_crossed=gate_crossed,
            completion_times=completed,
        )

    # ------------------------------------------------------------------
    # Fleet mode: open-loop arrivals, churn, streaming metrics.
    # ------------------------------------------------------------------
    def _pick_nodes(self, region: int, k: int) -> np.ndarray:
        """Round-robin ``k`` alive nodes of ``region`` (-1 = region down)."""
        members = self._region_nodes[region]
        m = len(members)
        pointer = self._region_rr[region]
        chosen = members[(pointer + np.arange(k)) % m]
        self._region_rr[region] = (pointer + k) % m
        dead = np.flatnonzero(~self._c_alive[chosen])
        if len(dead):
            alive_members = members[self._c_alive[members]]
            if len(alive_members) == 0:
                return np.full(k, -1, dtype=np.int64)
            chosen = chosen.copy()
            chosen[dead] = alive_members[(pointer + dead) % len(alive_members)]
        return chosen

    def run_fleet(self, *, trace=None) -> FleetResult:
        """Run the open-loop fleet simulation described by the config.

        ``trace`` is an optional event sink with an ``add(TraceEvent)``
        method — a bounded :class:`~repro.edgesim.trace.Trace` ring or a
        streaming :class:`~repro.edgesim.trace.JsonlTraceSink` — which
        receives one completion span per finished task (slot id as the
        task id). Tracing costs a Python loop over completions, so it is
        off by default; memory stays bounded by the sink, never O(events).
        """
        if self._config is None:
            raise ConfigurationError(
                "run_fleet needs a FleetSimulator.build(FleetConfig) instance"
            )
        config = self._config
        with span(
            "edgesim.fleet_run", nodes=config.n_nodes, duration_s=config.duration_s
        ):
            result = self._run_fleet(config, trace=trace)
        registry = get_registry()
        registry.counter(
            "repro_edgesim_fleet_runs_total", help="Open-loop fleet simulations"
        ).inc()
        registry.counter(
            "repro_edgesim_fleet_events_total",
            help="DES events processed by fleet runs",
        ).inc(result.events)
        return result

    def _run_fleet(self, config: FleetConfig, *, trace=None, barrier=None) -> FleetResult:
        network: RegionalNetwork = self.network
        n_regions = config.n_regions
        arrival_seed, workload_seed, churn_seed, churn_node_seed = derive_seeds(
            config.seed, 4
        )
        sampler = make_sampler(
            config.sampler,
            config.arrival_rate_hz,
            burst_sigma=config.burst_sigma,
            seed=arrival_seed,
        )
        workload = FleetWorkload(
            config.mean_input_mbit, result_mbit=config.result_mbit, seed=workload_seed
        )
        registry, aggregator, sim_clock = sim_time_aggregator(
            window_s=config.window_s, max_windows=config.max_windows
        )
        arrivals_counter = registry.counter(
            "repro_fleet_arrivals_total", help="Open-loop task arrivals"
        )
        completions_counter = registry.counter(
            "repro_fleet_completions_total", help="Tasks whose results returned"
        )
        dropped_counter = registry.counter(
            "repro_fleet_dropped_total", help="Tasks lost to fully-failed regions"
        )
        redispatch_counter = registry.counter(
            "repro_fleet_redispatch_total", help="Tasks re-shipped after node churn"
        )
        failure_counter = registry.counter(
            "repro_fleet_failures_total", help="Node failures"
        )
        recovery_counter = registry.counter(
            "repro_fleet_recoveries_total", help="Node recoveries"
        )
        latency_hist = registry.histogram(
            "repro_fleet_latency_seconds",
            help="Arrival-to-result latency (simulated seconds)",
        )
        overall_latency = Histogram(DEFAULT_LATENCY_BUCKETS)

        calendar = CalendarQueue(config.bucket_s)
        slots = _SlotPool(min(4096, max(64, config.chunk)))
        radio_busy = np.zeros(n_regions, dtype=np.float64)
        backhaul_latency = network.backhaul.latency_s
        backhaul_bw = network.backhaul.bandwidth_mbps
        access_latency = network.access.latency_s
        access_bw = network.access.bandwidth_mbps
        result_return_tt = network.transfer_time(config.result_mbit)

        arrivals = completed = dropped = redispatched = 0
        failures = recoveries = 0
        events = 0
        region_counter = 0
        in_flight = peak_in_flight = 0

        # Churn schedule, drawn up front: O(churn events) — independent of
        # the task-event count and tiny at realistic rates.
        if config.churn_rate_hz > 0:
            churn_rng = as_rng(churn_seed)
            node_rng = as_rng(churn_node_seed)
            fail_times: list[np.ndarray] = []
            clock = 0.0
            while clock < config.duration_s:
                gaps = churn_rng.exponential(
                    1.0 / config.churn_rate_hz, size=max(16, config.chunk // 64)
                )
                # Carry the chunk boundary *inside* the cumsum so the
                # absolute times come out bitwise-identical for any chunk
                # size (left-to-right summation never restarts).
                chunk_times = np.cumsum(np.concatenate(([clock], gaps)))[1:]
                fail_times.append(chunk_times[chunk_times < config.duration_s])
                clock = float(chunk_times[-1])
            times = np.concatenate(fail_times) if fail_times else np.empty(0)
            if len(times):
                victims = node_rng.integers(0, config.n_nodes, size=len(times))
                calendar.schedule_batch(
                    times,
                    np.full(len(times), _F_FAIL, dtype=np.int32),
                    victims.astype(np.int64),
                    np.zeros(len(times), dtype=np.int64),
                )

        # The arrival-stream carry lives outside the calendar: the refill
        # event's *stored* time may be clamped forward to `now` by cohort
        # batching (`schedule_batch` clamps to the clock), so restarting
        # the cumsum from the event time would drift the stream by up to
        # `bucket_s` per refill — making the arrival process a function of
        # `chunk` and able to cross `duration_s` early. The carry always
        # holds the true last drawn arrival time.
        refill_carry = 0.0

        def refill() -> None:
            nonlocal refill_carry
            gaps = sampler.gap_chunk(config.chunk)
            # Same carry trick as the churn schedule: arrival times are a
            # pure function of the sampler stream, not of `config.chunk`.
            times = np.cumsum(np.concatenate(([refill_carry], gaps)))[1:]
            refill_carry = float(times[-1])
            exhausted = times >= config.duration_s
            times = times[~exhausted]
            if len(times) == 0:
                return
            sizes, _memory, _importance = workload.draw_chunk(len(times))
            slot_ids = slots.alloc(len(times))
            slots.arrival_t[slot_ids] = times
            slots.size_mbit[slot_ids] = sizes
            calendar.schedule_batch(
                times,
                np.full(len(times), _F_ARRIVAL, dtype=np.int32),
                slot_ids,
                np.zeros(len(times), dtype=np.int64),
            )
            if not exhausted.any():
                # More stream to come: refill once the scheduled arrivals
                # run out (equal time, later sequence — pops after them).
                calendar.schedule(float(times[-1]), _F_REFILL)

        def route(times: np.ndarray, slot_ids: np.ndarray, regions: np.ndarray) -> None:
            """Assign nodes and push transfers through each region's radio.

            One argsort-split groups the cohort by region (stable, so
            per-region time order is preserved for the radio FIFO); all
            transfer completions go back to the calendar as one batch.
            """
            nonlocal dropped, in_flight
            order = np.argsort(regions, kind="stable")
            sorted_regions = regions[order]
            unique, starts = np.unique(sorted_regions, return_index=True)
            boundaries = np.append(starts, len(order))
            all_ends: list[np.ndarray] = []
            all_slots: list[np.ndarray] = []
            for i, region in enumerate(unique):
                segment = order[boundaries[i] : boundaries[i + 1]]
                region_times = times[segment]
                region_slots = slot_ids[segment]
                nodes = self._pick_nodes(int(region), len(region_slots))
                down = nodes < 0
                if down.any():
                    lost = region_slots[down]
                    dropped += len(lost)
                    dropped_counter.inc(len(lost))
                    in_flight -= len(lost)
                    slots.free(lost)
                    keep = ~down
                    region_times = region_times[keep]
                    region_slots = region_slots[keep]
                    nodes = nodes[keep]
                    if len(region_slots) == 0:
                        continue
                slots.node[region_slots] = nodes
                slots.incarnation[region_slots] = self._c_incarnation[nodes]
                sizes = slots.size_mbit[region_slots]
                ready = region_times + (backhaul_latency + sizes / backhaul_bw)
                access_durations = access_latency + sizes / access_bw
                ends = _fifo_ends(ready, access_durations, radio_busy[region])
                radio_busy[region] = float(ends[-1])
                all_ends.append(ends)
                all_slots.append(region_slots)
            if all_ends:
                ends = np.concatenate(all_ends)
                batch_slots = np.concatenate(all_slots)
                calendar.schedule_batch(
                    ends,
                    np.full(len(ends), _F_XFER_DONE, dtype=np.int32),
                    batch_slots,
                    np.zeros(len(ends), dtype=np.int64),
                )

        def redispatch(times: np.ndarray, slot_ids: np.ndarray) -> None:
            """Churn-lost work: fresh transfer to a survivor (same region)."""
            nonlocal redispatched
            redispatched += len(slot_ids)
            redispatch_counter.inc(len(slot_ids))
            stale_nodes = slots.node[slot_ids]
            route(times, slot_ids, self._c_region[stale_nodes])

        refill()
        while True:
            if barrier is not None:
                head = calendar.peek_time()
                if head is not None:
                    # Conservative sync: before draining past a lookahead
                    # boundary, close metric windows at the boundary and
                    # exchange any cross-group events with peers. The
                    # crossing schedule is a pure function of config, so
                    # every decomposition ticks identically.
                    for boundary in barrier.crossings(head):
                        sim_clock[0] = max(sim_clock[0], boundary)
                        aggregator.maybe_tick()
                        barrier.exchange(boundary)
            cohort = calendar.pop_cohort()
            if cohort is None:
                break
            kind, times, a, _b = cohort
            events += len(times)
            sim_clock[0] = calendar.now
            aggregator.maybe_tick()
            if kind == _F_ARRIVAL:
                # Counted as the events fire (not at chunk generation) so
                # the windowed arrival rate tracks simulated time.
                arrivals += len(a)
                arrivals_counter.inc(len(a))
                in_flight += len(a)
                if in_flight > peak_in_flight:
                    peak_in_flight = in_flight
                regions = (region_counter + np.arange(len(a))) % n_regions
                region_counter += len(a)
                route(times, a, regions)
            elif kind == _F_XFER_DONE:
                nodes = slots.node[a]
                valid = self._c_alive[nodes] & (
                    slots.incarnation[a] == self._c_incarnation[nodes]
                )
                if not valid.all():
                    redispatch(times[~valid], a[~valid])
                    times, a, nodes = times[valid], a[valid], nodes[valid]
                if len(a) == 0:
                    continue
                durations = (slots.size_mbit[a] * 1e6) * self._c_s_per_bit[nodes]
                order = np.argsort(nodes, kind="stable")
                sorted_nodes = nodes[order]
                unique, starts = np.unique(sorted_nodes, return_index=True)
                if len(unique) == len(nodes):
                    ends = np.maximum(times, self._c_busy_until[nodes]) + durations
                    self._c_busy_until[nodes] = ends
                else:
                    ends = np.empty(len(nodes), dtype=np.float64)
                    boundaries = np.append(starts, len(sorted_nodes))
                    for i, node in enumerate(unique):
                        segment = order[boundaries[i] : boundaries[i + 1]]
                        node_ends = _fifo_ends(
                            times[segment],
                            durations[segment],
                            float(self._c_busy_until[node]),
                        )
                        ends[segment] = node_ends
                        self._c_busy_until[node] = float(node_ends[-1])
                calendar.schedule_batch(
                    ends,
                    np.full(len(ends), _F_EXEC_DONE, dtype=np.int32),
                    a,
                    np.zeros(len(ends), dtype=np.int64),
                )
            elif kind == _F_EXEC_DONE:
                nodes = slots.node[a]
                valid = self._c_alive[nodes] & (
                    slots.incarnation[a] == self._c_incarnation[nodes]
                )
                if not valid.all():
                    redispatch(times[~valid], a[~valid])
                    times, a = times[valid], a[valid]
                if len(a) == 0:
                    continue
                # Result return: uncontended backhaul + access delay for a
                # tiny control frame (documented fleet-mode simplification).
                latencies = (times + result_return_tt) - slots.arrival_t[a]
                latency_hist.observe_batch(latencies)
                overall_latency.observe_batch(latencies)
                completed += len(a)
                completions_counter.inc(len(a))
                in_flight -= len(a)
                if trace is not None:
                    from repro.edgesim.trace import TraceEvent

                    arrival_times = slots.arrival_t[a]
                    for i in range(len(a)):
                        trace.add(
                            TraceEvent(
                                "result",
                                int(a[i]),
                                int(nodes[i]),
                                float(arrival_times[i]),
                                float(times[i]) + result_return_tt,
                            )
                        )
                slots.free(a)
            elif kind == _F_FAIL:
                for index in range(len(a)):
                    node = int(a[index])
                    if not self._c_alive[node]:
                        continue
                    self._c_alive[node] = False
                    self._c_incarnation[node] += 1
                    failures += 1
                    failure_counter.inc()
                    calendar.schedule(
                        float(times[index]) + config.recovery_s, _F_RECOVER, node
                    )
            elif kind == _F_RECOVER:
                for index in range(len(a)):
                    node = int(a[index])
                    self._c_alive[node] = True
                    self._c_busy_until[node] = float(times[index])
                    recoveries += 1
                    recovery_counter.inc()
            elif kind == _F_REFILL:
                refill()
            else:
                raise ConfigurationError(f"unknown fleet event kind {kind}")
        sim_clock[0] = calendar.now
        aggregator.flush()

        def quantile(q: float) -> float:
            return estimate_quantile(
                overall_latency.edges,
                overall_latency.bucket_counts,
                overall_latency.overflow,
                q,
            )

        mean = (
            overall_latency.sum / overall_latency.count if overall_latency.count else 0.0
        )
        return FleetResult(
            n_nodes=config.n_nodes,
            n_regions=n_regions,
            duration_s=config.duration_s,
            arrivals=arrivals,
            completed=completed,
            dropped=dropped,
            redispatched=redispatched,
            failures=failures,
            recoveries=recoveries,
            events=events,
            peak_in_flight=peak_in_flight,
            latency_mean_s=float(mean),
            latency_p50_s=quantile(50.0),
            latency_p95_s=quantile(95.0),
            latency_p99_s=quantile(99.0),
            timeseries=aggregator,
            latency_state=(
                tuple(overall_latency.edges),
                tuple(int(c) for c in overall_latency.bucket_counts),
                int(overall_latency.overflow),
                int(overall_latency.count),
                float(overall_latency.sum),
            ),
        )
