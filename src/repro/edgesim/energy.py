"""Per-device energy accounting for the edge simulation.

Several of the paper's related works ([11]-[13]) optimize edge energy
instead of (or alongside) latency; this module adds the measurement so the
same experiments can report joules. The model is the standard two-state
one: a device draws ``idle_w`` whenever powered and an additional
``active_w − idle_w`` while executing; the radio draws ``radio_w`` for the
duration of each transfer it carries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import SimResult
from repro.errors import ConfigurationError

#: (idle watts, active watts) per node preset — Raspberry Pi 3 figures are
#: the commonly measured ~1.4 W idle / ~3.7 W loaded; the laptop is a
#: mobile-class machine.
POWER_PRESETS: dict[str, tuple[float, float]] = {
    "rpi-a+": (1.0, 2.5),
    "rpi-b": (1.4, 3.7),
    "rpi-b+": (1.5, 4.0),
    "laptop": (10.0, 45.0),
}

#: Radio power while a transfer is in flight (shared channel), watts.
RADIO_ACTIVE_W = 2.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated epoch (joules)."""

    compute_j: float
    idle_j: float
    radio_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.idle_j + self.radio_j


def node_power(node: EdgeNode) -> tuple[float, float]:
    """(idle_w, active_w) for a node, by preset name."""
    try:
        return POWER_PRESETS[node.name]
    except KeyError:
        raise ConfigurationError(
            f"no power preset for node type {node.name!r}; known: {sorted(POWER_PRESETS)}"
        ) from None


def estimate_energy(
    nodes: list[EdgeNode],
    tasks_by_node: dict[int, list[float]],
    result: SimResult,
    *,
    transfer_seconds: float,
) -> EnergyReport:
    """Energy of an epoch from its execution profile.

    Parameters
    ----------
    nodes:
        The testbed devices (all assumed powered for the whole epoch).
    tasks_by_node:
        node_id -> list of *executed* input sizes on that node, in
        megabits (the package-wide size unit; see
        :mod:`repro.edgesim.network`).
    result:
        The epoch's :class:`SimResult` (provides the wall-clock horizon).
    transfer_seconds:
        Total seconds the shared channel spent transferring.
    """
    if result.processing_time == float("inf"):
        raise ConfigurationError("cannot account energy for an epoch that never decided")
    horizon = result.processing_time
    compute = 0.0
    idle = 0.0
    for node in nodes:
        idle_w, active_w = node_power(node)
        executed = tasks_by_node.get(node.node_id, [])
        busy_seconds = sum(node.execution_time(size) for size in executed)
        busy_seconds = min(busy_seconds, horizon)
        compute += (active_w - idle_w) * busy_seconds
        idle += idle_w * horizon
    radio = RADIO_ACTIVE_W * min(transfer_seconds, horizon)
    return EnergyReport(compute_j=compute, idle_j=idle, radio_j=radio)


def energy_of_run(
    nodes: list[EdgeNode],
    tasks,
    plan,
    result: SimResult,
    network,
) -> EnergyReport:
    """Convenience wrapper deriving the execution profile from a plan+result.

    Only tasks whose results actually arrived (``result.completion_times``)
    count as executed; transfer seconds cover their inputs and results.
    """
    node_of = dict(plan.assignments)
    task_by_id = {task.task_id: task for task in tasks}
    tasks_by_node: dict[int, list[float]] = {}
    transfer_seconds = 0.0
    for task_id in result.completion_times:
        task = task_by_id[task_id]
        node_id = node_of.get(task_id)
        if node_id is None:
            continue
        tasks_by_node.setdefault(node_id, []).append(task.input_mb)
        transfer_seconds += network.transfer_time(task.input_mb)
        transfer_seconds += network.transfer_time(task.result_mb)
    return estimate_energy(
        nodes, tasks_by_node, result, transfer_seconds=transfer_seconds
    )
