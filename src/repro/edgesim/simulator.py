"""The edge discrete-event simulator and its Processing Time metric.

Execution model of one decision epoch:

1. The controller spends ``allocation_time`` seconds computing the plan
   (measured or modeled by the allocator — exact solvers pay here, trained
   data-driven policies barely do).
2. Task inputs are shipped to their nodes over the shared WiFi channel in
   plan order (transfers serialize — WiFi is one medium).
3. Each node executes its queued tasks serially at its per-bit rate.
4. Results return to the controller over the same channel.
5. After every completed task the controller checks the **quality gate**:
   once the cumulative *true* importance of completed tasks reaches
   ``quality_threshold`` × (total true importance of the epoch), the
   aggregated decision is credible and is made. Pending work is cancelled.

Processing Time PT = allocation time + time of the gate-crossing result
(+ a fixed aggregation overhead) — the paper's PT = t_s − t_c.

A plan that orders truly important tasks first crosses the gate after a
handful of transfers and executions; an importance-blind plan ships most
of the input data before the gate opens. That, plus device matching, is
the entire mechanism behind the paper's Figs. 9-11 gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.edgesim.events import EventQueue
from repro.edgesim.network import StarNetwork
from repro.edgesim.node import EdgeNode
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError, SimulationError
from repro.telemetry import get_registry, span


@dataclass(frozen=True)
class ExecutionPlan:
    """Ordered dispatch plan: (task_id, node_id) pairs plus planning cost.

    Order matters: it is the priority in which inputs are shipped. Tasks
    may appear at most once; tasks absent from the plan are never run.
    """

    assignments: tuple[tuple[int, int], ...]
    allocation_time: float = 0.0
    label: str = "plan"

    def __post_init__(self) -> None:
        seen = set()
        for task_id, _node_id in self.assignments:
            if task_id in seen:
                raise DataError(f"task {task_id} appears twice in the plan")
            seen.add(task_id)
        if self.allocation_time < 0:
            raise ConfigurationError(
                f"allocation_time must be >= 0, got {self.allocation_time}"
            )

    def __len__(self) -> int:
        return len(self.assignments)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated epoch.

    Attributes
    ----------
    processing_time:
        PT = t_s − t_c in seconds (inf if the gate was never crossed).
    tasks_executed:
        Number of tasks whose results reached the controller before t_s.
    importance_achieved:
        Cumulative true importance at t_s.
    gate_crossed:
        Whether the credibility threshold was reached.
    completion_times:
        task_id -> result-arrival time for completed tasks.
    """

    processing_time: float
    tasks_executed: int
    importance_achieved: float
    gate_crossed: bool
    completion_times: dict[int, float] = field(default_factory=dict)


class EdgeSimulator:
    """Deterministic DES over a node set and a shared-channel network."""

    #: Fixed decision-aggregation overhead once the gate is crossed.
    AGGREGATION_TIME = 0.05

    def __init__(
        self,
        nodes: Sequence[EdgeNode],
        network: StarNetwork,
        *,
        quality_threshold: float = 0.8,
    ) -> None:
        if not nodes:
            raise ConfigurationError("simulator needs at least one node")
        if not 0.0 < quality_threshold <= 1.0:
            raise ConfigurationError(
                f"quality_threshold must be in (0, 1], got {quality_threshold}"
            )
        self.nodes = {node.node_id: node for node in nodes}
        if len(self.nodes) != len(nodes):
            raise ConfigurationError("node ids must be unique")
        self.network = network
        self.quality_threshold = float(quality_threshold)

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[SimTask],
        plan: ExecutionPlan,
        *,
        failures: dict[int, float] | None = None,
        dependencies=None,
    ) -> SimResult:
        """Simulate one epoch under ``plan``; returns the PT result.

        ``failures`` maps node id -> absolute failure time (seconds). A
        failed node loses its queued and in-flight work; the controller
        re-dispatches those tasks (a fresh input transfer) to the fastest
        surviving node, at the head of the transfer queue since they were
        already prioritized. With every node failed, remaining tasks are
        lost and the gate may never close (PT = inf).

        ``dependencies`` is an optional precedence structure exposing
        ``prerequisites_of(task_id) -> set[int]`` (e.g.
        :class:`repro.allocation.dependencies.TaskDependencyGraph`). A task
        only starts executing once every prerequisite's result has reached
        the controller, so completion order respects the DAG even under
        failure-driven re-dispatch.
        """
        with span("edgesim.run", plan=plan.label, tasks=len(tasks)):
            result = self._run(tasks, plan, failures=failures, dependencies=dependencies)
        registry = get_registry()
        registry.counter(
            "repro_edgesim_runs_total", help="Simulated decision epochs", plan=plan.label
        ).inc()
        registry.counter(
            "repro_edgesim_tasks_executed_total",
            help="Tasks whose results reached the controller before the decision",
            plan=plan.label,
        ).inc(result.tasks_executed)
        if result.gate_crossed:
            registry.histogram(
                "repro_edgesim_pt_seconds",
                help="Processing Time PT = t_s - t_c (simulated seconds)",
                plan=plan.label,
            ).observe(result.processing_time)
        else:
            registry.counter(
                "repro_edgesim_gate_misses_total",
                help="Epochs whose quality gate never closed (PT = inf)",
                plan=plan.label,
            ).inc()
        return result

    def _run(
        self,
        tasks: Sequence[SimTask],
        plan: ExecutionPlan,
        *,
        failures: dict[int, float] | None = None,
        dependencies=None,
    ) -> SimResult:
        task_by_id = {task.task_id: task for task in tasks}
        for task_id, node_id in plan.assignments:
            if task_id not in task_by_id:
                raise DataError(f"plan references unknown task {task_id}")
            if node_id not in self.nodes:
                raise DataError(f"plan references unknown node {node_id}")
        failures = dict(failures or {})
        for node_id, fail_time in failures.items():
            if node_id not in self.nodes:
                raise DataError(f"failure references unknown node {node_id}")
            if fail_time < 0:
                raise DataError(f"failure time must be >= 0, got {fail_time}")

        total_importance = float(sum(t.true_importance for t in task_by_id.values()))
        gate_target = self.quality_threshold * total_importance

        queue = EventQueue()
        # Two transfer queues: results are short control frames and take
        # priority over queued (not in-flight) input transfers; otherwise a
        # completed task's result would wait behind every remaining input
        # and the decision gate could never close early. On a shared medium
        # (WiFi star) all transfers serialize through one link; on a
        # switched network each worker has a dedicated full-duplex link.
        pending_inputs: list[tuple[int, int]] = list(plan.assignments)
        pending_results: list[tuple[int, int]] = []
        shared_medium = bool(getattr(self.network, "shared_medium", True))
        link_busy: dict[object, bool] = {}

        def link_of(node_id: int, kind: str):
            # Shared medium: one half-duplex radio for everything. Switched:
            # a full-duplex link per node — inputs (downlink) and results
            # (uplink) are independent channels.
            if shared_medium:
                return "shared"
            return (node_id, kind)
        node_queues: dict[int, list[int]] = {node_id: [] for node_id in self.nodes}
        node_busy: dict[int, bool] = {node_id: False for node_id in self.nodes}
        node_running: dict[int, int | None] = {node_id: None for node_id in self.nodes}
        alive: set[int] = set(self.nodes)
        achieved = 0.0
        completed: dict[int, float] = {}
        decision_time: float | None = None
        cancelled = False

        def fastest_alive() -> int | None:
            survivors = [self.nodes[n] for n in alive]
            if not survivors:
                return None
            return min(survivors, key=lambda node: node.compute_s_per_bit).node_id

        def start_next_transfer() -> None:
            """Start every queue-head transfer whose link is free.

            Results before inputs (priority); within each queue, FIFO per
            link. On a shared medium at most one transfer is in flight.
            """
            for queue_list, kind in ((pending_results, "result"), (pending_inputs, "input")):
                if kind == "input" and cancelled:
                    continue
                index = 0
                while index < len(queue_list):
                    task_id, node_id = queue_list[index]
                    link = link_of(node_id, kind)
                    if link_busy.get(link, False):
                        index += 1
                        continue
                    queue_list.pop(index)
                    link_busy[link] = True
                    task = task_by_id[task_id]
                    size = task.result_mb if kind == "result" else task.input_mb
                    queue.schedule(
                        self.network.transfer_time(size),
                        f"{kind}_arrived",
                        (task_id, node_id),
                    )

        def ready(task_id: int) -> bool:
            if dependencies is None:
                return True
            return all(p in completed for p in dependencies.prerequisites_of(task_id))

        def start_next_execution(node_id: int) -> None:
            if node_id not in alive:
                return
            if node_busy[node_id] or cancelled or not node_queues[node_id]:
                return
            # First dependency-ready task in queue order; defer the rest.
            position = next(
                (i for i, t in enumerate(node_queues[node_id]) if ready(t)), None
            )
            if position is None:
                return
            task_id = node_queues[node_id].pop(position)
            task = task_by_id[task_id]
            node_busy[node_id] = True
            node_running[node_id] = task_id
            queue.schedule(
                self.nodes[node_id].execution_time(task.input_mb),
                "execution_done",
                (task_id, node_id),
            )

        def handle(event) -> None:
            nonlocal achieved, decision_time, cancelled
            if event.kind == "input_arrived":
                task_id, node_id = event.payload
                link_busy[link_of(node_id, "input")] = False
                if node_id in alive:
                    node_queues[node_id].append(task_id)
                    start_next_execution(node_id)
                else:
                    # Input landed on a dead node: re-dispatch to a survivor.
                    target = fastest_alive()
                    if target is not None and not cancelled:
                        pending_inputs.insert(0, (task_id, target))
                start_next_transfer()
            elif event.kind == "execution_done":
                task_id, node_id = event.payload
                if node_id not in alive or node_running[node_id] != task_id:
                    return  # stale event from before the node failed
                node_busy[node_id] = False
                node_running[node_id] = None
                pending_results.append((task_id, node_id))
                start_next_transfer()
                start_next_execution(node_id)
            elif event.kind == "node_failed":
                node_id = event.payload
                if node_id not in alive:
                    return
                alive.discard(node_id)
                lost = list(node_queues[node_id])
                node_queues[node_id].clear()
                if node_running[node_id] is not None:
                    lost.insert(0, node_running[node_id])
                    node_running[node_id] = None
                # Results still sitting on the dead node are lost with it;
                # their tasks must be recomputed elsewhere.
                stranded = [t for t, n in pending_results if n == node_id]
                pending_results[:] = [(t, n) for t, n in pending_results if n != node_id]
                lost = stranded + lost
                node_busy[node_id] = False
                target = fastest_alive()
                if target is not None and not cancelled:
                    # Re-dispatch lost work at the head of the queue; it was
                    # already prioritized once.
                    for position, task_id in enumerate(lost):
                        pending_inputs.insert(position, (task_id, target))
                # Re-target queued transfers headed to the dead node.
                if target is not None:
                    for position, (task_id, destination) in enumerate(pending_inputs):
                        if destination == node_id:
                            pending_inputs[position] = (task_id, target)
                start_next_transfer()
            elif event.kind == "result_arrived":
                task_id, node_id = event.payload
                link_busy[link_of(node_id, "result")] = False
                if decision_time is None:
                    # Results landing after the decision are stragglers that
                    # were already in flight; they did not contribute to PT
                    # or to the decision, so they are not counted.
                    completed[task_id] = queue.now
                    achieved += task_by_id[task_id].true_importance
                    if achieved >= gate_target - 1e-12:
                        decision_time = queue.now + self.AGGREGATION_TIME
                        cancelled = True
                        pending_inputs.clear()
                    elif dependencies is not None:
                        # A new completion may unblock queued dependents.
                        for waiting_node in alive:
                            start_next_execution(waiting_node)
                start_next_transfer()
            else:
                raise SimulationError(f"unknown event kind {event.kind!r}")

        queue.now = plan.allocation_time
        for node_id, fail_time in failures.items():
            queue.schedule_at(max(fail_time, queue.now), "node_failed", node_id)
        start_next_transfer()
        queue.run(handle)

        if decision_time is not None:
            processing_time = decision_time
            gate_crossed = True
        else:
            processing_time = float("inf")
            gate_crossed = False
        return SimResult(
            processing_time=processing_time,
            tasks_executed=len(completed),
            importance_achieved=float(achieved),
            gate_crossed=gate_crossed,
            completion_times=completed,
        )
