"""Testbed presets mirroring the paper's Fig. 8 hardware."""

from __future__ import annotations

from repro.edgesim.network import StarNetwork
from repro.edgesim.node import EdgeNode, make_node
from repro.errors import ConfigurationError

#: The Fig. 8 worker mix: nine Raspberry Pis of models A+, B, and B+.
_PI_MIX: tuple[str, ...] = (
    "rpi-a+",
    "rpi-b",
    "rpi-b+",
    "rpi-a+",
    "rpi-b",
    "rpi-b+",
    "rpi-a+",
    "rpi-b",
    "rpi-b+",
)


def paper_testbed(*, bandwidth_mbps: float = 50.0) -> tuple[list[EdgeNode], StarNetwork]:
    """The full Fig. 8 testbed: 9 Pis + 1 laptop controller over WiFi.

    Returns (nodes, network); the laptop is ``nodes[0]`` and flagged as
    controller (it also executes tasks, as the paper's operation node does).
    """
    nodes = [make_node("laptop", 0, is_controller=True)]
    nodes += [make_node(preset, i + 1) for i, preset in enumerate(_PI_MIX)]
    return nodes, StarNetwork(bandwidth_mbps=bandwidth_mbps)


def scaled_testbed(
    n_processors: int, *, bandwidth_mbps: float = 50.0
) -> tuple[list[EdgeNode], StarNetwork]:
    """First ``n_processors`` devices of the paper testbed (Fig. 9 sweep).

    ``n_processors`` counts worker-capable devices including the laptop,
    matching the paper's x-axis of 2..10 processors.
    """
    if not 1 <= n_processors <= 1 + len(_PI_MIX):
        raise ConfigurationError(
            f"n_processors must be in [1, {1 + len(_PI_MIX)}], got {n_processors}"
        )
    nodes, network = paper_testbed(bandwidth_mbps=bandwidth_mbps)
    return nodes[:n_processors], network
