"""Simulation workload: the per-epoch task population.

Each decision epoch presents the system with N machine-learning tasks to
(re)train/evaluate on the edge. A :class:`SimTask` carries the input data
size (what must be shipped to a node and ground through its CPU), its
memory footprint, and two importance values: the *true* importance (ground
truth from the importance evaluator — what decision quality actually
depends on) and the allocator's *estimated* importance (what the policy
acts on). The gap between them is what separates DCTA from CRL from the
importance-blind baselines.

Unit note: ``input_mb`` / ``result_mb`` are **megabits** (the transfer
unit of :mod:`repro.edgesim.network`); ``memory_mb`` is megabytes of RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import as_rng, derive_seeds


@dataclass(frozen=True)
class SimTask:
    """One task instance inside the edge simulation.

    Attributes
    ----------
    task_id:
        Dense index within the epoch.
    input_mb:
        Input data size in megabits (drives both transfer and compute).
    memory_mb:
        Resource demand v_j against node capacity V_p.
    true_importance:
        Ground-truth I_j (visible to the simulator's quality gate only).
    est_importance:
        The allocator's estimate of I_j (what policies may act on);
        defaults to NaN for policies that never estimate.
    result_mb:
        Size of the result returned to the controller.
    """

    task_id: int
    input_mb: float
    memory_mb: float
    true_importance: float
    est_importance: float = float("nan")
    result_mb: float = 0.1

    def __post_init__(self) -> None:
        if self.input_mb <= 0:
            raise ConfigurationError(f"input_mb must be > 0, got {self.input_mb}")
        if self.memory_mb <= 0:
            raise ConfigurationError(f"memory_mb must be > 0, got {self.memory_mb}")
        if self.true_importance < 0:
            raise ConfigurationError(
                f"true_importance must be >= 0, got {self.true_importance}"
            )

    def with_estimate(self, estimate: float) -> "SimTask":
        return replace(self, est_importance=float(estimate))


class WorkloadGenerator:
    """Draws epoch workloads with long-tailed true importance.

    Parameters
    ----------
    n_tasks:
        Tasks per epoch (the paper uses 50).
    mean_input_mb:
        Mean input size; sizes are lognormal around it (heavy-ish tail, as
        sensor archives are).
    pareto_shape:
        Shape of the Pareto importance distribution (lower = longer tail).
    mean_memory_mb:
        Mean memory footprint.
    """

    def __init__(
        self,
        n_tasks: int = 50,
        mean_input_mb: float = 500.0,
        *,
        pareto_shape: float = 0.7,
        mean_memory_mb: float = 150.0,
        seed=None,
    ) -> None:
        if n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {n_tasks}")
        if mean_input_mb <= 0 or mean_memory_mb <= 0:
            raise ConfigurationError("mean sizes must be > 0")
        if pareto_shape <= 0:
            raise ConfigurationError(f"pareto_shape must be > 0, got {pareto_shape}")
        self.n_tasks = int(n_tasks)
        self.mean_input_mb = float(mean_input_mb)
        self.pareto_shape = float(pareto_shape)
        self.mean_memory_mb = float(mean_memory_mb)
        self._rng = as_rng(seed)

    def draw(self) -> list[SimTask]:
        """One epoch's task population."""
        rng = self._rng
        sigma = 0.5
        sizes = rng.lognormal(mean=np.log(self.mean_input_mb) - sigma**2 / 2, sigma=sigma, size=self.n_tasks)
        memory = rng.lognormal(
            mean=np.log(self.mean_memory_mb) - 0.18, sigma=0.6, size=self.n_tasks
        )
        importance = rng.pareto(self.pareto_shape, size=self.n_tasks) + 1e-3
        importance = importance / importance.max()
        return [
            SimTask(
                task_id=i,
                input_mb=float(sizes[i]),
                memory_mb=float(memory[i]),
                true_importance=float(importance[i]),
            )
            for i in range(self.n_tasks)
        ]

    def draw_with_importance(self, importance: np.ndarray) -> list[SimTask]:
        """An epoch whose true importance vector is supplied externally
        (e.g., produced by the building-pipeline importance evaluator)."""
        importance = np.asarray(importance, dtype=float).ravel()
        if importance.size != self.n_tasks:
            raise DataError(
                f"importance has {importance.size} entries, expected {self.n_tasks}"
            )
        tasks = self.draw()
        return [replace(t, true_importance=float(max(importance[i], 0.0))) for i, t in enumerate(tasks)]


class FleetWorkload:
    """Columnar, chunked task-attribute generator for open-loop fleet runs.

    Where :class:`WorkloadGenerator` materializes one epoch of
    :class:`SimTask` objects, ``FleetWorkload`` hands the fleet engine raw
    numpy columns chunk-by-chunk, so a run over millions of arrivals never
    holds more than one chunk of task attributes in memory. Distributions
    match :class:`WorkloadGenerator` (lognormal sizes, Pareto importance);
    importance is *not* max-normalized per chunk since the stream has no
    epoch boundary.

    Sizes are megabits (see module note); fleet runs use a smaller default
    mean than the epoch generator because open-loop tasks model inference /
    incremental-update shipments rather than full retraining archives.

    Each column draws from its own substream derived from the seed, so the
    attribute stream is invariant to how arrivals are partitioned into
    chunks: ``draw_chunk(a)`` then ``draw_chunk(b)`` concatenates to
    exactly ``draw_chunk(a + b)``. The sharded fleet runner leans on this
    to keep results independent of the engine's refill chunk size.
    """

    def __init__(
        self,
        mean_input_mbit: float = 40.0,
        *,
        pareto_shape: float = 0.7,
        mean_memory_mb: float = 150.0,
        result_mbit: float = 0.1,
        seed=None,
    ) -> None:
        if mean_input_mbit <= 0 or mean_memory_mb <= 0:
            raise ConfigurationError("mean sizes must be > 0")
        if pareto_shape <= 0:
            raise ConfigurationError(f"pareto_shape must be > 0, got {pareto_shape}")
        if result_mbit < 0:
            raise ConfigurationError(f"result_mbit must be >= 0, got {result_mbit}")
        self.mean_input_mbit = float(mean_input_mbit)
        self.pareto_shape = float(pareto_shape)
        self.mean_memory_mb = float(mean_memory_mb)
        self.result_mbit = float(result_mbit)
        size_seed, memory_seed, importance_seed = derive_seeds(seed, 3)
        self._size_rng = as_rng(size_seed)
        self._memory_rng = as_rng(memory_seed)
        self._importance_rng = as_rng(importance_seed)

    def draw_chunk(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(input_mbit, memory_mb, importance)`` columns for ``n`` tasks."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        sigma = 0.5
        sizes = self._size_rng.lognormal(
            mean=np.log(self.mean_input_mbit) - sigma**2 / 2, sigma=sigma, size=n
        )
        memory = self._memory_rng.lognormal(
            mean=np.log(self.mean_memory_mb) - 0.18, sigma=0.6, size=n
        )
        importance = self._importance_rng.pareto(self.pareto_shape, size=n) + 1e-3
        return sizes, memory, importance
