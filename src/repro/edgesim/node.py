"""Edge node models: heterogeneous compute rates and memory capacities.

The paper's testbed mixes Raspberry Pi 3 boards of models A+, B, and B+
with a laptop controller; it calibrates computation time per bit (the Pi
A+ at 4.75e-7 s/bit, following [33]). Presets below keep that calibration
and scale the other devices by their relative CPU throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The paper's calibrated compute time for a Raspberry Pi model A+.
RPI_A_PLUS_S_PER_BIT = 4.75e-7


@dataclass(frozen=True)
class EdgeNode:
    """One edge device.

    Attributes
    ----------
    node_id:
        Unique index in the testbed.
    name:
        Preset name (e.g. ``"rpi-b+"``).
    compute_s_per_bit:
        Seconds of compute per input bit (lower = faster).
    memory_mb:
        Task-resource capacity V_p used by the TATIM constraints.
    is_controller:
        Whether this node hosts allocation and decision aggregation.
    """

    node_id: int
    name: str
    compute_s_per_bit: float
    memory_mb: float
    is_controller: bool = False

    def __post_init__(self) -> None:
        if self.compute_s_per_bit <= 0:
            raise ConfigurationError(
                f"compute_s_per_bit must be > 0, got {self.compute_s_per_bit}"
            )
        if self.memory_mb <= 0:
            raise ConfigurationError(f"memory_mb must be > 0, got {self.memory_mb}")

    def execution_time(self, input_mb: float) -> float:
        """Seconds to process ``input_mb`` megabits of task input.

        Sizes are in megabits (Mb) throughout the simulator, matching the
        paper's "Average Input Data Size (Mb)" axis and the Mbps bandwidth
        unit.
        """
        if input_mb < 0:
            raise ConfigurationError(f"input_mb must be >= 0, got {input_mb}")
        bits = input_mb * 1e6
        return bits * self.compute_s_per_bit

    @property
    def relative_speed(self) -> float:
        """Throughput relative to the Pi A+ baseline (higher = faster)."""
        return RPI_A_PLUS_S_PER_BIT / self.compute_s_per_bit


#: name -> (compute s/bit, memory Mb). Pi B/B+ are modestly faster than the
#: A+ (more cores / higher clock); the laptop is ~20x the A+.
NODE_PRESETS: dict[str, tuple[float, float]] = {
    "rpi-a+": (RPI_A_PLUS_S_PER_BIT, 512.0),
    "rpi-b": (RPI_A_PLUS_S_PER_BIT / 1.6, 1024.0),
    "rpi-b+": (RPI_A_PLUS_S_PER_BIT / 2.0, 1024.0),
    "laptop": (RPI_A_PLUS_S_PER_BIT / 20.0, 8192.0),
}


def make_node(preset: str, node_id: int, *, is_controller: bool = False) -> EdgeNode:
    """Instantiate a preset node."""
    try:
        s_per_bit, memory = NODE_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown node preset {preset!r}; choose from {sorted(NODE_PRESETS)}"
        ) from None
    return EdgeNode(
        node_id=node_id,
        name=preset,
        compute_s_per_bit=s_per_bit,
        memory_mb=memory,
        is_controller=is_controller,
    )
