"""Region-sharded parallel fleet simulation: conservative DES fan-out.

:mod:`repro.edgesim.fleet` drains one calendar on one core. This module
takes the same engine to the whole machine:

- **Decomposition.** The fleet's regions are split into ``groups``
  contiguous *region groups*. Each group becomes an independent
  :class:`~repro.edgesim.fleet.FleetSimulator` over exactly the node
  rows a single-process run would assign those regions (slices of the
  whole-fleet SoA columns), with the fleet-wide arrival and churn rates
  thinned by the group's share of regions and nodes. Group seeds come
  from one up-front :func:`~repro.utils.rng.derive_seeds` call, so every
  group's event stream is a pure function of ``(config, group index)``
  — never of the process that happens to run it.

- **Conservative synchronization.** Regions only interact through the
  controller, so no region can affect another sooner than
  :attr:`~repro.edgesim.network.RegionalNetwork.lookahead_s` (two
  backhaul latencies). Each group drains its
  :class:`~repro.edgesim.events.CalendarQueue` cohorts freely inside
  lookahead windows of that width; at every window boundary the engine
  closes its metric windows and calls :meth:`LookaheadBarrier.exchange`,
  the rendezvous where cross-group events would be swapped. In the
  current fleet physics (open-loop arrivals, same-region redispatch,
  uncontended result return) the exchange outbox is **provably empty**
  — ``exchange`` asserts it — which is exactly what licenses running
  groups to completion without inter-process rendezvous. Physics that
  routes work across regions would put events in the outbox and turn
  the assert into a real exchange.

- **Determinism.** ``shards=1`` and ``shards=N`` run the *same* group
  simulations and merge them in the *same* (group-index) order; integer
  counters sum exactly, latency percentiles are re-derived from the
  summed histogram states, and per-group
  :func:`~repro.telemetry.bridge.sim_time_aggregator` window rings fold
  through :func:`~repro.telemetry.bridge.merge_sim_timeseries`. The
  merged :class:`~repro.edgesim.fleet.FleetResult` is therefore
  **bitwise-identical** for any shard count (pinned by
  ``tests/edgesim/test_shard.py``). Note the decomposition itself is a
  different sampling regime than the unsharded engine (each group draws
  its own thinned arrival stream), so sharded results are compared
  against sharded results, never against ``run_fleet``.

- **Transport.** Worker processes come from the persistent
  :class:`~repro.parallel.pool.WorkerPool`; the whole-fleet node columns
  are published once through the zero-copy
  :class:`~repro.parallel.shm.SharedArrayStore` plane and sliced inside
  each worker, so dispatch cost is O(groups), not O(nodes).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.edgesim.fleet import FleetConfig, FleetResult, FleetSimulator
from repro.edgesim.network import RegionalNetwork
from repro.edgesim.node import NODE_PRESETS
from repro.errors import ConfigurationError, SimulationError
from repro.parallel.pool import get_worker_pool
from repro.parallel.shm import get_shared_store, resolve_shared
from repro.telemetry import get_registry, span
from repro.telemetry.bridge import merge_sim_timeseries
from repro.telemetry.timeseries import estimate_quantile
from repro.utils.rng import derive_seeds

#: Default region-group count: enough slack to feed a big machine while
#: keeping per-group cohort batches wide. Fixed by config — NEVER by the
#: shard/CPU count — or the shards=1 == shards=N contract would break.
DEFAULT_GROUPS = 16


class LookaheadBarrier:
    """Conservative lookahead-window barrier for one group's drain loop.

    The engine calls :meth:`crossings` with the head event's timestamp
    before popping each cohort; every yielded boundary is a synchronization
    point: the engine ticks its metric windows at the boundary, then calls
    :meth:`exchange`. ``outbox`` holds events destined for other groups —
    structurally empty under the current fleet physics, which ``exchange``
    asserts (the conservative-DES safety property: nothing may cross a
    window boundary unexchanged).

    The boundary grid is ``window_s * k`` for k = 1, 2, ... — a pure
    function of the network's lookahead, so every decomposition of the
    same config crosses identical boundaries. Because the outbox is
    structurally empty between boundaries (nothing to hand over),
    consecutive crossed boundaries batch into one rendezvous at the last
    boundary before the head event — ``crossings_count`` still counts
    every boundary, and physics that actually fills the outbox would
    revert to yielding each boundary individually.
    """

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self.crossings_count = 0
        self.outbox: list = []
        self._k = 1

    def crossings(self, head_time: float):
        """Boundaries in ``(previous boundary, head_time]``, batched."""
        target = int(head_time / self.window_s)
        if target >= self._k:
            # Intermediate boundaries carry a provably-empty outbox; skip
            # straight to the last one (counted, not exchanged).
            self.crossings_count += target - self._k
            boundary = target * self.window_s
            self._k = target + 1
            yield boundary

    def exchange(self, boundary_t: float) -> None:
        """The cross-group rendezvous at one window boundary."""
        self.crossings_count += 1
        if self.outbox:
            raise SimulationError(
                f"conservative window violated: {len(self.outbox)} cross-group "
                f"event(s) pending at boundary t={boundary_t:.6f}; the current "
                "fleet physics never routes work across regions, so a non-empty "
                "outbox means a causality bug"
            )


@dataclass(frozen=True)
class _GroupSpec:
    """One region group: its sub-config plus its slice of the region axis."""

    index: int
    first_region: int
    config: FleetConfig


@dataclass(frozen=True)
class _ShardTask:
    """One worker's payload: the group specs it runs + the column plane."""

    groups: tuple[_GroupSpec, ...]
    columns: object  # SharedBlobRef | dict of ndarrays


@dataclass(frozen=True)
class _GroupOutcome:
    """A group run reduced to plain picklable data.

    ``FleetResult`` itself carries a live ``TimeSeriesAggregator`` (which
    holds a lock and is not picklable), so workers ship this instead:
    the scalar counters, the run-wide latency histogram state, and the
    window ring as :class:`~repro.telemetry.timeseries.WindowSnapshot`
    rows.
    """

    index: int
    arrivals: int
    completed: int
    dropped: int
    redispatched: int
    failures: int
    recoveries: int
    events: int
    peak_in_flight: int
    latency_state: tuple
    windows: tuple = field(repr=False)
    windows_dropped: int = 0
    barrier_crossings: int = 0


@dataclass(frozen=True)
class ShardedRun:
    """A merged sharded fleet run plus how it was executed."""

    result: FleetResult
    groups: int
    shards: int
    barrier_crossings: int


def fleet_columns(config: FleetConfig) -> dict[str, np.ndarray]:
    """The whole-fleet SoA node columns (same layout as ``build()``)."""
    n = config.n_nodes
    rates = np.asarray(
        [NODE_PRESETS[p][0] for p in config.node_presets], dtype=np.float64
    )
    return {
        "s_per_bit": rates[np.arange(n) % len(rates)],
        "region": np.arange(n, dtype=np.int64) % config.n_regions,
    }


def plan_groups(config: FleetConfig, groups: int | None = None) -> list[_GroupSpec]:
    """Deterministic region-group decomposition of one fleet config.

    Regions split into ``groups`` contiguous ranges (``np.array_split``
    semantics: the first ``n_regions % groups`` ranges get one extra
    region). Each group's sub-config thins the fleet-wide arrival rate by
    its region share and the churn rate by its node share, and takes its
    seed from one up-front ``derive_seeds(config.seed, groups)`` — the
    decomposition is a pure function of ``(config, groups)``.
    """
    n_groups = DEFAULT_GROUPS if groups is None else int(groups)
    n_groups = min(n_groups, config.n_regions)
    if n_groups < 1:
        raise ConfigurationError(f"groups must be >= 1, got {n_groups}")
    network = config.network or RegionalNetwork(n_regions=config.n_regions)
    seeds = derive_seeds(config.seed, n_groups)
    # Nodes land in region r by i % n_regions, so region r holds
    # ceil((n_nodes - r) / n_regions) nodes.
    region_nodes = [
        (config.n_nodes - r + config.n_regions - 1) // config.n_regions
        for r in range(config.n_regions)
    ]
    base, extra = divmod(config.n_regions, n_groups)
    specs: list[_GroupSpec] = []
    first = 0
    for g in range(n_groups):
        g_regions = base + (1 if g < extra else 0)
        g_nodes = sum(region_nodes[first : first + g_regions])
        sub_network = RegionalNetwork(
            n_regions=g_regions, access=network.access, backhaul=network.backhaul
        )
        sub = replace(
            config,
            n_nodes=g_nodes,
            n_regions=g_regions,
            arrival_rate_hz=config.arrival_rate_hz * (g_regions / config.n_regions),
            churn_rate_hz=config.churn_rate_hz * (g_nodes / config.n_nodes),
            seed=seeds[g],
            network=sub_network,
        )
        specs.append(_GroupSpec(index=g, first_region=first, config=sub))
        first += g_regions
    return specs


def _lookahead_window(config: FleetConfig) -> float:
    network = config.network or RegionalNetwork(n_regions=config.n_regions)
    lookahead = network.lookahead_s
    return lookahead if lookahead > 0 else math.inf


def _run_group(spec: _GroupSpec, columns: dict) -> _GroupOutcome:
    """Run one region group on its slice of the whole-fleet columns."""
    region = columns["region"]
    last = spec.first_region + spec.config.n_regions
    ids = np.flatnonzero((region >= spec.first_region) & (region < last))
    sim = FleetSimulator.build(
        spec.config,
        s_per_bit=columns["s_per_bit"][ids],
        region=region[ids] - spec.first_region,
    )
    window_s = _lookahead_window(spec.config)
    barrier = LookaheadBarrier(window_s) if math.isfinite(window_s) else None
    result = sim._run_fleet(spec.config, barrier=barrier)
    return _GroupOutcome(
        index=spec.index,
        arrivals=result.arrivals,
        completed=result.completed,
        dropped=result.dropped,
        redispatched=result.redispatched,
        failures=result.failures,
        recoveries=result.recoveries,
        events=result.events,
        peak_in_flight=result.peak_in_flight,
        latency_state=result.latency_state,
        windows=tuple(result.timeseries.windows),
        windows_dropped=result.timeseries.dropped,
        barrier_crossings=barrier.crossings_count if barrier is not None else 0,
    )


def _run_shard_worker(task: _ShardTask) -> list[_GroupOutcome]:
    """Worker entry point: attach the column plane, run assigned groups."""
    columns = resolve_shared(task.columns)
    return [_run_group(spec, columns) for spec in task.groups]


def _merge_outcomes(
    config: FleetConfig, outcomes: list[_GroupOutcome]
) -> FleetResult:
    """Fold group outcomes (in group-index order) into one FleetResult.

    Integer counters sum exactly; the latency percentiles are re-derived
    from the element-wise sum of the group histogram states — identical
    to what one histogram observing every group's samples would hold.
    ``peak_in_flight`` is the sum of per-group peaks: a deterministic
    upper bound on the true global peak (group peaks need not coincide
    in time), documented as such.
    """
    outcomes = sorted(outcomes, key=lambda o: o.index)
    edges = outcomes[0].latency_state[0]
    bucket_counts = [0] * len(edges)
    overflow = count = 0
    total = 0.0
    for outcome in outcomes:
        state_edges, counts, state_overflow, state_count, state_sum = (
            outcome.latency_state
        )
        if state_edges != edges:
            raise SimulationError("group latency histograms use different edges")
        bucket_counts = [a + b for a, b in zip(bucket_counts, counts)]
        overflow += state_overflow
        count += state_count
        total += state_sum

    def quantile(q: float) -> float:
        return estimate_quantile(edges, bucket_counts, overflow, q)

    timeseries = merge_sim_timeseries(
        [outcome.windows for outcome in outcomes],
        window_s=config.window_s,
        max_windows=config.max_windows,
    )
    timeseries.dropped += sum(o.windows_dropped for o in outcomes)
    return FleetResult(
        n_nodes=config.n_nodes,
        n_regions=config.n_regions,
        duration_s=config.duration_s,
        arrivals=sum(o.arrivals for o in outcomes),
        completed=sum(o.completed for o in outcomes),
        dropped=sum(o.dropped for o in outcomes),
        redispatched=sum(o.redispatched for o in outcomes),
        failures=sum(o.failures for o in outcomes),
        recoveries=sum(o.recoveries for o in outcomes),
        events=sum(o.events for o in outcomes),
        peak_in_flight=sum(o.peak_in_flight for o in outcomes),
        latency_mean_s=float(total / count) if count else 0.0,
        latency_p50_s=quantile(50.0),
        latency_p95_s=quantile(95.0),
        latency_p99_s=quantile(99.0),
        timeseries=timeseries,
        latency_state=(edges, tuple(bucket_counts), overflow, count, total),
    )


#: Rough single-process fleet throughput (events/s) used to estimate the
#: serial cost handed to the pool's adaptive pre-check.
_EST_EVENTS_PER_SEC = 300_000.0


def _estimated_serial_cost_s(config: FleetConfig) -> float:
    events = config.arrival_rate_hz * config.duration_s * 3.0
    events += config.churn_rate_hz * config.duration_s * 2.0
    return events / _EST_EVENTS_PER_SEC


def run_fleet_sharded(
    config: FleetConfig,
    *,
    shards: int | None = None,
    groups: int | None = None,
    force: bool = False,
) -> ShardedRun:
    """Run ``config``'s fleet as region groups across worker processes.

    ``shards`` is the requested process fan-out (default: one per CPU,
    capped by the group count); the pool's adaptive pre-check may still
    fall back to in-process execution when cores are scarce or the run
    is too small to amortize dispatch — pass ``force=True`` (or set
    ``REPRO_POOL_FORCE_PARALLEL=1``) to bypass it. ``groups`` is the
    region-group count (default ``min(n_regions, 16)``); it fixes the
    decomposition and therefore the result — the merged
    :class:`FleetResult` is bitwise-identical for every ``shards`` value
    given the same ``config`` and ``groups``.
    """
    specs = plan_groups(config, groups)
    n_groups = len(specs)
    if shards is None:
        shards = os.cpu_count() or 1
    shards = max(1, min(int(shards), n_groups))
    with span(
        "edgesim.fleet_sharded",
        nodes=config.n_nodes,
        groups=n_groups,
        shards=shards,
    ):
        pool = get_worker_pool()
        jobs = pool.effective_jobs(
            shards,
            n_groups,
            estimated_cost_s=_estimated_serial_cost_s(config),
            force=force,
        )
        columns = fleet_columns(config)
        if jobs > 1:
            store = get_shared_store()
            key = "edgesim.shard.columns"
            ref = store.share(key, columns, version=abs(hash((config, n_groups))))
            try:
                chunks = [c for c in np.array_split(np.arange(n_groups), jobs) if len(c)]
                tasks = [
                    _ShardTask(
                        groups=tuple(specs[int(i)] for i in chunk), columns=ref
                    )
                    for chunk in chunks
                ]
                executor = pool.executor(jobs)
                pool.count_tasks(len(tasks), label="edgesim_shard")
                outcomes: list[_GroupOutcome] = []
                for worker_outcomes in executor.map(_run_shard_worker, tasks):
                    outcomes.extend(worker_outcomes)
            finally:
                store.release(key)
        else:
            outcomes = [_run_group(spec, columns) for spec in specs]
        result = _merge_outcomes(config, outcomes)
    registry = get_registry()
    registry.counter(
        "repro_edgesim_fleet_sharded_runs_total",
        help="Region-sharded fleet simulations",
    ).inc()
    registry.counter(
        "repro_edgesim_fleet_events_total",
        help="DES events processed by fleet runs",
    ).inc(result.events)
    return ShardedRun(
        result=result,
        groups=n_groups,
        shards=jobs,
        barrier_crossings=sum(o.barrier_crossings for o in outcomes),
    )


def result_digest(result: FleetResult) -> str:
    """A short stable digest of a FleetResult, bitwise on floats.

    Floats serialize via ``float.hex`` so two digests match iff every
    scalar field and the full merged timeseries are bit-for-bit equal —
    the identity the sharded-smoke CI step greps for across shard
    counts.
    """
    payload = {}
    for name in (
        "n_nodes", "n_regions", "arrivals", "completed", "dropped",
        "redispatched", "failures", "recoveries", "events", "peak_in_flight",
    ):
        payload[name] = int(getattr(result, name))
    for name in (
        "duration_s", "latency_mean_s", "latency_p50_s",
        "latency_p95_s", "latency_p99_s",
    ):
        payload[name] = float(getattr(result, name)).hex()
    payload["timeseries"] = result.timeseries.to_jsonl()
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]
