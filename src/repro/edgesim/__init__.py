"""Discrete-event simulator of the paper's edge testbed (Fig. 8).

Nine Raspberry Pis (models A+/B/B+) and one laptop controller, all joined
by WiFi in a star topology. The simulator reproduces the paper's
Processing Time metric PT = t_s − t_c: the span from experiment start to
the instant the aggregated industry decision can be made. Task inputs are
shipped over the shared WiFi channel, executed serially per node at a
per-bit compute rate (Pi A+ calibrated to the paper's 4.75e-7 s/bit), and
results return to the controller, which declares the decision once the
completed tasks' cumulative *true* importance crosses a credibility
threshold — the mechanism by which importance-aware allocators finish
earlier than importance-blind ones.

Two engines share that timing model. :class:`EdgeSimulator` is the
reference per-event loop; :class:`FleetSimulator` is the vectorized
structure-of-arrays engine that reproduces the reference exactly on the
testbed epoch workload (``run``) and additionally scales to open-loop
fleets of 10k-100k nodes with hierarchical regional topologies, node
churn, and O(nodes + windows) streaming metrics (``run_fleet``).
:func:`run_fleet_sharded` takes the fleet engine multiprocess: region
groups run as independent conservative-DES shards on the worker pool
and merge into one bitwise-deterministic :class:`FleetResult`, opening
the 1M+ node regime.
"""

from repro.edgesim.node import EdgeNode, NODE_PRESETS, make_node
from repro.edgesim.network import RegionalNetwork, StarNetwork, SwitchedNetwork
from repro.edgesim.events import CalendarQueue, Event, EventQueue
from repro.edgesim.workload import FleetWorkload, SimTask, WorkloadGenerator
from repro.edgesim.simulator import EdgeSimulator, ExecutionPlan, SimResult
from repro.edgesim.fleet import FleetConfig, FleetResult, FleetSimulator
from repro.edgesim.shard import (
    LookaheadBarrier,
    ShardedRun,
    plan_groups,
    result_digest,
    run_fleet_sharded,
)
from repro.edgesim.energy import EnergyReport, energy_of_run, estimate_energy
from repro.edgesim.trace import JsonlTraceSink, Trace, TraceEvent, TracingSimulator
from repro.edgesim.testbed import paper_testbed, scaled_testbed

__all__ = [
    "EdgeNode",
    "NODE_PRESETS",
    "make_node",
    "StarNetwork",
    "SwitchedNetwork",
    "RegionalNetwork",
    "Event",
    "EventQueue",
    "CalendarQueue",
    "SimTask",
    "WorkloadGenerator",
    "FleetWorkload",
    "EdgeSimulator",
    "ExecutionPlan",
    "SimResult",
    "FleetSimulator",
    "FleetConfig",
    "FleetResult",
    "LookaheadBarrier",
    "ShardedRun",
    "plan_groups",
    "result_digest",
    "run_fleet_sharded",
    "EnergyReport",
    "estimate_energy",
    "energy_of_run",
    "Trace",
    "TraceEvent",
    "TracingSimulator",
    "JsonlTraceSink",
    "paper_testbed",
    "scaled_testbed",
]
