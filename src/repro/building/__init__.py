"""Synthetic green-building chiller-plant substrate.

Stands in for the proprietary dataset of the paper's reference [22]
(3 buildings, 4 years of operation, ~50 learning tasks). The package
covers the full physical story the pipeline needs:

- :mod:`~repro.building.chiller` — machines, COP physics, plants;
- :mod:`~repro.building.weather` — the seasonal/diurnal weather process;
- :mod:`~repro.building.dataset` — load simulation, operator replay,
  telemetry, and task extraction (:class:`TaskData`);
- :mod:`~repro.building.sequencing` — the decision function D(·) and the
  decision quality H = 1 − |D − D(θ)|/D;
- :mod:`~repro.building.features` — the Table I feature matrices;
- :mod:`~repro.building.corruption` — sensing-data-loss injection.
"""

from repro.building.chiller import (
    CHILLER_MODEL_TYPES,
    Chiller,
    ChillerModelType,
    ChillerPlant,
)
from repro.building.corruption import (
    CorruptionConfig,
    TelemetryCorruptor,
    corruption_rate,
    drop_incomplete_rows,
)
from repro.building.dataset import (
    TASK_FEATURE_COLUMNS,
    BuildingOperationConfig,
    BuildingOperationDataset,
    TaskData,
    TelemetryRecord,
)
from repro.building.features import TaskEpochFeatures, feature_names
from repro.building.sequencing import (
    SequencingDecision,
    decision_performance,
    evaluate_power,
    ideal_power,
    sequence_chillers,
)
from repro.building.weather import WeatherSeries, simulate_weather

__all__ = [
    "BuildingOperationConfig",
    "BuildingOperationDataset",
    "TaskData",
    "TelemetryRecord",
    "TASK_FEATURE_COLUMNS",
    "Chiller",
    "ChillerModelType",
    "ChillerPlant",
    "CHILLER_MODEL_TYPES",
    "WeatherSeries",
    "simulate_weather",
    "SequencingDecision",
    "sequence_chillers",
    "evaluate_power",
    "ideal_power",
    "decision_performance",
    "TaskEpochFeatures",
    "feature_names",
    "CorruptionConfig",
    "TelemetryCorruptor",
    "corruption_rate",
    "drop_incomplete_rows",
]
