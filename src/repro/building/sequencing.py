"""Chiller sequencing — the decision function D(·) and its quality H.

The paper instantiates the decision function on chiller-plant operation:
given a cooling load, the operator must decide *which* chillers to run
(the sequencing decision); running chillers split the load at equal part-
load ratio. The decision quality is

    H = 1 − |D − D(θ)| / D

where ``D`` is the ideal power draw (sequencing with the machines' true
COPs — :func:`ideal_power`) and ``D(θ)`` is the power actually drawn when
the subset is chosen from the task models' COP *predictions* but the
physics bills the *true* COPs. Accurate predictions recover the ideal
subset exactly (H = 1); the nameplate fallback of dropped tasks picks the
wrong machines on exactly the days those machines matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.building.chiller import Chiller
from repro.errors import DataError

#: A COP predictor: (chiller, plr, outdoor_temp) -> predicted COP.
CopFunction = Callable[[Chiller, float, float], float]

#: Minimum sustainable part-load ratio; running below it surges the
#: compressor, so a lightly-loaded subset idles at this floor (wasting
#: cooling) rather than below it.
MIN_PLR = 0.2


@dataclass(frozen=True)
class SequencingDecision:
    """Outcome of one sequencing decision.

    Attributes
    ----------
    chiller_ids:
        ``chiller_id`` of every machine switched on.
    plr:
        Common part-load ratio the running machines settle at.
    predicted_power_kw:
        Power the decision maker *expected* (under its COP estimates).
    """

    chiller_ids: tuple[int, ...]
    plr: float
    predicted_power_kw: float


def _true_cop(chiller: Chiller, plr: float, outdoor_temp: float) -> float:
    return float(chiller.cop(plr, outdoor_temp))


def _check_inputs(chillers: Sequence[Chiller], load_kw: float) -> None:
    if not chillers:
        raise DataError("sequencing needs at least one chiller")
    if load_kw <= 0.0:
        raise DataError(f"cooling load must be positive, got {load_kw}")


def evaluate_power(
    chillers: Sequence[Chiller],
    load_kw: float,
    outdoor_temp: float,
    *,
    cop_fn: CopFunction | None = None,
    min_plr: float = MIN_PLR,
) -> float:
    """Power (kW) drawn when exactly ``chillers`` run and split ``load_kw``.

    Load splits at equal part-load ratio, clipped to ``[min_plr, 1]``:
    below the floor the machines idle at ``min_plr`` (over-cooling is paid
    for), above 1 the subset saturates. ``cop_fn`` defaults to the true
    COP physics; pass a model-backed predictor to price a *belief*.
    """
    _check_inputs(chillers, load_kw)
    cop = cop_fn if cop_fn is not None else _true_cop
    total_capacity = sum(chiller.capacity_kw for chiller in chillers)
    plr = min(max(load_kw / total_capacity, min_plr), 1.0)
    return float(
        sum(plr * c.capacity_kw / cop(c, plr, outdoor_temp) for c in chillers)
    )


def _candidate_subsets(
    chillers: Sequence[Chiller], load_kw: float, min_plr: float
) -> list[tuple[tuple[int, ...], float]]:
    """(member indices, plr) for every subset able to serve the load."""
    capacities = [chiller.capacity_kw for chiller in chillers]
    candidates: list[tuple[tuple[int, ...], float]] = []
    indices = range(len(chillers))
    for size in range(1, len(chillers) + 1):
        for members in combinations(indices, size):
            total = sum(capacities[i] for i in members)
            if load_kw <= total:
                candidates.append((members, max(load_kw / total, min_plr)))
    if not candidates:
        # Load exceeds the whole plant: run everything flat out.
        candidates.append((tuple(indices), 1.0))
    return candidates


def sequence_chillers(
    chillers: Sequence[Chiller],
    load_kw: float,
    outdoor_temp: float,
    *,
    cop_fn: CopFunction | None = None,
    min_plr: float = MIN_PLR,
) -> SequencingDecision:
    """D(·): choose the chiller subset minimizing *predicted* power.

    With the default (true-COP) ``cop_fn`` this is the ideal operator;
    with a model-backed ``cop_fn`` it is the operator the task set θ
    induces, whose mistakes :func:`decision_performance` prices.
    """
    _check_inputs(chillers, load_kw)
    cop = cop_fn if cop_fn is not None else _true_cop
    best: tuple[float, tuple[int, ...], float] | None = None
    for members, plr in _candidate_subsets(chillers, load_kw, min_plr):
        power = sum(
            plr * chillers[i].capacity_kw / cop(chillers[i], plr, outdoor_temp)
            for i in members
        )
        if best is None or power < best[0]:
            best = (power, members, plr)
    power, members, plr = best
    return SequencingDecision(
        chiller_ids=tuple(chillers[i].chiller_id for i in members),
        plr=float(plr),
        predicted_power_kw=float(power),
    )


def ideal_power(
    chillers: Sequence[Chiller],
    load_kw: float,
    outdoor_temp: float,
    *,
    min_plr: float = MIN_PLR,
) -> float:
    """D: the minimum true power any subset could serve the load with."""
    _check_inputs(chillers, load_kw)
    return min(
        sum(
            plr * chillers[i].capacity_kw / _true_cop(chillers[i], plr, outdoor_temp)
            for i in members
        )
        for members, plr in _candidate_subsets(chillers, load_kw, min_plr)
    )


def decision_performance(
    chillers: Sequence[Chiller],
    scenarios: Sequence[tuple[float, float]],
    *,
    cop_fn: CopFunction | None = None,
    min_plr: float = MIN_PLR,
) -> float:
    """H = 1 − |D − D(θ)| / D, averaged over ``(load_kw, temp)`` scenarios.

    For each scenario the subset is chosen under ``cop_fn`` (the belief θ)
    but billed at the true COPs; the score compares that realized power to
    the ideal-operator power and clips to ``[0, 1]``. A ``cop_fn`` that
    reproduces the true COPs scores exactly 1.
    """
    if not scenarios:
        raise DataError("decision_performance needs at least one scenario")
    cop = cop_fn if cop_fn is not None else _true_cop
    scores = []
    for load_kw, outdoor_temp in scenarios:
        _check_inputs(chillers, load_kw)
        best_true: float | None = None
        chosen_true: float | None = None
        chosen_predicted: float | None = None
        for members, plr in _candidate_subsets(chillers, load_kw, min_plr):
            true_power = 0.0
            predicted_power = 0.0
            for i in members:
                chiller = chillers[i]
                share = plr * chiller.capacity_kw
                true_power += share / _true_cop(chiller, plr, outdoor_temp)
                predicted_power += share / cop(chiller, plr, outdoor_temp)
            if best_true is None or true_power < best_true:
                best_true = true_power
            if chosen_predicted is None or predicted_power < chosen_predicted:
                chosen_predicted = predicted_power
                chosen_true = true_power
        scores.append(max(0.0, 1.0 - abs(chosen_true - best_true) / best_true))
    return float(np.mean(scores))
