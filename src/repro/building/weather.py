"""Seasonal/diurnal weather process driving the cooling loads.

A subtropical climate (matching the green-building deployment of [22]):
temperature = seasonal trend + diurnal cycle + autocorrelated noise,
relative humidity anti-correlated with temperature, and a per-day weather
condition code (0 = clear, 1 = cloudy, 2 = rain). All draws come from a
caller-supplied :class:`numpy.random.Generator`, so the whole dataset is
reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class WeatherSeries:
    """Hourly weather for one site.

    Attributes
    ----------
    temperature:
        (n_days, 24) outdoor dry-bulb temperature in °C.
    humidity:
        (n_days, 24) relative humidity in [0, 1].
    condition:
        (n_days,) per-day condition code (0 clear, 1 cloudy, 2 rain).
    """

    temperature: np.ndarray
    humidity: np.ndarray
    condition: np.ndarray

    @property
    def n_days(self) -> int:
        """Number of simulated days."""
        return int(self.temperature.shape[0])


def simulate_weather(
    n_days: int,
    rng: np.random.Generator,
    *,
    mean_temp: float = 27.0,
    seasonal_amplitude: float = 3.5,
    diurnal_amplitude: float = 4.0,
    noise_sigma: float = 0.8,
    humidity_mean: float = 0.68,
) -> WeatherSeries:
    """Generate an hourly :class:`WeatherSeries` for ``n_days`` days.

    The seasonal component runs over a 365-day period so short windows see
    a slow drift; the diurnal cycle peaks mid-afternoon. Day-to-day weather
    persistence comes from an AR(1) daily offset, which is what makes the
    sensing vectors of nearby days similar (the structure kNN environment
    definitions exploit).
    """
    days = np.arange(n_days)[:, None]
    hours = np.arange(HOURS_PER_DAY)[None, :]
    seasonal = seasonal_amplitude * np.sin(2.0 * np.pi * days / 365.0)
    diurnal = diurnal_amplitude * np.sin(2.0 * np.pi * (hours - 9.0) / HOURS_PER_DAY)

    daily_offset = np.zeros(n_days)
    shocks = rng.normal(0.0, 1.1, size=n_days)
    for day in range(1, n_days):
        daily_offset[day] = 0.6 * daily_offset[day - 1] + shocks[day]
    condition = np.clip(np.round(1.0 + 0.8 * shocks), 0, 2).astype(float)

    temperature = (
        mean_temp
        + seasonal
        + diurnal
        + daily_offset[:, None]
        + rng.normal(0.0, noise_sigma, size=(n_days, HOURS_PER_DAY))
    )
    humidity = np.clip(
        humidity_mean
        - 0.012 * (temperature - mean_temp)
        + 0.05 * (condition[:, None] - 1.0)
        + rng.normal(0.0, 0.02, size=(n_days, HOURS_PER_DAY)),
        0.25,
        0.99,
    )
    return WeatherSeries(temperature=temperature, humidity=humidity, condition=condition)
