"""Chiller machines and their COP physics.

The proprietary dataset of [22] covers water-cooled chillers whose
coefficient of performance (COP = cooling output / electrical input)
depends on the part-load ratio (PLR), the outdoor wet-bulb conditions,
and the individual machine (model type, age, unit-to-unit bias). This
module provides the synthetic substitute: a small catalog of model types
with part-load COP curves, and :class:`Chiller` instances whose *true*
COP deviates from the catalog rating — the deviation is exactly what the
transfer-learning tasks must learn, and what the nameplate fallback of
:func:`repro.transfer.decision.nameplate_cop` gets wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Outdoor temperature (°C) at which the catalog COP is quoted.
REFERENCE_TEMP = 20.0

#: Physical floor below which no chiller COP can fall.
COP_FLOOR = 0.5


@dataclass(frozen=True)
class ChillerModelType:
    """Catalog entry for one chiller product line.

    Attributes
    ----------
    name:
        Product-line label.
    rated_cop:
        Catalog COP at the optimum PLR and :data:`REFERENCE_TEMP` — the
        only number a no-model operator knows (the nameplate estimate).
    rated_capacity_kw:
        Nominal cooling capacity in kW.
    plr_optimum:
        Part-load ratio at which the COP curve peaks.
    curvature:
        Quadratic COP penalty for operating away from ``plr_optimum``.
    temp_coefficient:
        Fractional COP loss per °C of outdoor temperature above
        :data:`REFERENCE_TEMP`.
    """

    name: str
    rated_cop: float
    rated_capacity_kw: float
    plr_optimum: float
    curvature: float
    temp_coefficient: float


#: The three product lines used by the synthetic plants (centrifugal,
#: screw, and scroll machines, in descending size/efficiency).
CHILLER_MODEL_TYPES: tuple[ChillerModelType, ...] = (
    ChillerModelType("centrifugal-1200", 6.2, 1200.0, 0.78, 0.9, 0.012),
    ChillerModelType("screw-700", 5.1, 700.0, 0.72, 0.7, 0.010),
    ChillerModelType("scroll-400", 4.2, 400.0, 0.65, 0.5, 0.008),
)

#: Fractional COP loss per year of service (fouling, refrigerant drift).
DEGRADATION_PER_YEAR = 0.012


@dataclass(frozen=True)
class Chiller:
    """One installed machine with its true (hidden) efficiency state.

    The true COP differs from the catalog rating through age degradation
    and a unit-specific bias; neither is visible to an operator without a
    data-driven model, which is what makes the per-chiller learning tasks
    valuable (and droppable tasks costly).

    Attributes
    ----------
    building_id:
        Index of the owning building.
    chiller_id:
        Globally unique machine id (unique across buildings, so that
        per-machine analyses such as Figs. 4-5 never alias machines).
    model_type:
        Catalog entry.
    capacity_kw:
        Installed cooling capacity (may deviate from the catalog nominal).
    age_years:
        Years in service; drives efficiency degradation.
    unit_bias:
        Unit-to-unit fractional COP offset (manufacturing spread,
        installation quality); positive means better than catalog.
    """

    building_id: int
    chiller_id: int
    model_type: ChillerModelType
    capacity_kw: float
    age_years: float
    unit_bias: float

    def cop(self, plr, outdoor_temp):
        """True COP at a part-load ratio and outdoor temperature.

        Accepts scalars or numpy arrays (broadcast elementwise). The value
        is floored at :data:`COP_FLOOR`.
        """
        spec = self.model_type
        part_load = 1.0 - spec.curvature * (plr - spec.plr_optimum) ** 2
        weather = 1.0 - spec.temp_coefficient * (outdoor_temp - REFERENCE_TEMP)
        condition = (1.0 - DEGRADATION_PER_YEAR * self.age_years) * (1.0 + self.unit_bias)
        return np.maximum(spec.rated_cop * part_load * weather * condition, COP_FLOOR)

    def power_kw(self, load_kw, outdoor_temp):
        """Electrical power drawn to serve ``load_kw`` of cooling."""
        plr = load_kw / self.capacity_kw
        return load_kw / self.cop(plr, outdoor_temp)


@dataclass(frozen=True)
class ChillerPlant:
    """One building's chiller plant (the machines sequenced together)."""

    building_id: int
    chillers: tuple[Chiller, ...]

    @property
    def total_capacity_kw(self) -> float:
        """Summed installed cooling capacity of the plant."""
        return float(sum(chiller.capacity_kw for chiller in self.chillers))
