"""Sensing-data-loss injection for unstable edge devices.

The paper motivates data-driven allocation partly with "unstable sensing
devices" whose telemetry arrives incomplete. This module injects that
failure mode into feature matrices: independent per-entry dropouts
(flaky sensors) plus whole-row outages (a device offline for the hour),
both reproducible from a seed. Downstream robustness studies measure how
task training and decision quality degrade as the loss rate rises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError


@dataclass(frozen=True)
class CorruptionConfig:
    """Data-loss process parameters.

    Attributes
    ----------
    drop_rate:
        Probability that any single sensor reading is lost (per entry).
    outage_rate:
        Probability that an entire telemetry row is lost (device offline).
    seed:
        Seed of the loss process (independent of the dataset seed).
    """

    drop_rate: float = 0.1
    outage_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ConfigurationError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )
        if not 0.0 <= self.outage_rate < 1.0:
            raise ConfigurationError(
                f"outage_rate must be in [0, 1), got {self.outage_rate}"
            )


class TelemetryCorruptor:
    """Applies the configured loss process to feature matrices.

    Lost readings become NaN; callers either impute them or drop the rows,
    mirroring the choices an edge pipeline has when sensors misbehave.
    """

    def __init__(self, config: CorruptionConfig | None = None) -> None:
        self.config = config if config is not None else CorruptionConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def corrupt(self, X: np.ndarray) -> np.ndarray:
        """A copy of ``X`` with sensor dropouts and device outages as NaN."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataError(f"expected a 2-D feature matrix, got shape {X.shape}")
        corrupted = X.copy()
        if self.config.drop_rate > 0.0:
            corrupted[self._rng.random(X.shape) < self.config.drop_rate] = np.nan
        if self.config.outage_rate > 0.0:
            rows = self._rng.random(X.shape[0]) < self.config.outage_rate
            corrupted[rows, :] = np.nan
        return corrupted


def corruption_rate(X: np.ndarray) -> float:
    """Fraction of entries lost (NaN) in a possibly-corrupted matrix."""
    X = np.asarray(X, dtype=float)
    if X.size == 0:
        raise DataError("cannot compute a corruption rate on an empty matrix")
    return float(np.isnan(X).mean())


def drop_incomplete_rows(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Remove samples with any lost reading (the simplest recovery policy)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.size:
        raise DataError("X must be 2-D with one label per row")
    keep = ~np.isnan(X).any(axis=1)
    return X[keep], y[keep]
