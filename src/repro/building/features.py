"""Table I feature vectors for the local process.

The paper's local SVM scores each task per decision epoch from two
*general* features (Past Success, Prediction Accuracy — properties of the
task's history in the allocation loop) plus eight *domain* features
(weather and plant telemetry summaries of the epoch). This module
assembles those (n_tasks, 10) matrices from a generated
:class:`~repro.building.dataset.BuildingOperationDataset`.
"""

from __future__ import annotations

import numpy as np

from repro.building.dataset import (
    DESIGN_DELTA_T,
    WATER_SPECIFIC_HEAT,
    BuildingOperationDataset,
)
from repro.errors import DataError

#: The two general features (Table I, left column) — always first.
GENERAL_FEATURES: tuple[str, ...] = ("past_success", "prediction_accuracy")

#: The eight domain features (Table I, right column).
DOMAIN_FEATURES: tuple[str, ...] = (
    "outdoor_temperature",
    "relative_humidity",
    "weather_condition",
    "cooling_load",
    "part_load_ratio",
    "chiller_cop",
    "operating_hours",
    "chilled_water_flow",
)


def feature_names() -> list[str]:
    """Table I feature names, general features first then domain features."""
    return list(GENERAL_FEATURES + DOMAIN_FEATURES)


class TaskEpochFeatures:
    """Per-(task, epoch) Table I feature matrices.

    Static task attributes are precomputed once; per-day columns come from
    the building's weather/load history and from how many hours the task's
    (chiller, band) cell actually operated that day — the usage signal that
    makes importance learnable.
    """

    def __init__(self, dataset: BuildingOperationDataset) -> None:
        if not dataset.tasks:
            raise DataError("dataset has no tasks; generate() it first")
        self.dataset = dataset
        self._n_tasks = dataset.n_tasks
        self._buildings = np.array([task.building_id for task in dataset.tasks])
        self._band_mid = np.array(
            [0.5 * (task.band[0] + task.band[1]) for task in dataset.tasks]
        )
        self._mean_cop = np.array([float(task.y.mean()) for task in dataset.tasks])
        capacities = []
        for task in dataset.tasks:
            plant = dataset.plants[task.building_id]
            chiller = next(
                c for c in plant.chillers if c.chiller_id == task.chiller_id
            )
            capacities.append(chiller.capacity_kw)
        self._flow = self._band_mid * np.array(capacities) / (
            WATER_SPECIFIC_HEAT * DESIGN_DELTA_T
        )
        # operating_hours[(task_index, day)] from the telemetry log.
        cell_to_task = {
            (task.chiller_id, task.band_index): i
            for i, task in enumerate(dataset.tasks)
        }
        self._hours = np.zeros((dataset.config.n_days, self._n_tasks))
        for records in dataset.telemetry:
            for record in records:
                index = cell_to_task.get((record.chiller_id, record.band_index))
                if index is not None:
                    self._hours[record.day, index] += 1.0

    # ------------------------------------------------------------------
    def features_for_day(
        self, day: int, past_success: np.ndarray, prediction_accuracy: np.ndarray
    ) -> np.ndarray:
        """(n_tasks, 10) Table I matrix for one decision epoch.

        ``past_success`` and ``prediction_accuracy`` are the caller-tracked
        general features (per task, in ``dataset.tasks`` order).
        """
        if not 0 <= day < self.dataset.config.n_days:
            raise DataError(f"day {day} outside the generated horizon")
        past_success = np.asarray(past_success, dtype=float).ravel()
        prediction_accuracy = np.asarray(prediction_accuracy, dtype=float).ravel()
        if past_success.size != self._n_tasks or prediction_accuracy.size != self._n_tasks:
            raise DataError(
                "past_success and prediction_accuracy must have one entry per task"
            )
        matrix = np.empty((self._n_tasks, len(GENERAL_FEATURES) + len(DOMAIN_FEATURES)))
        matrix[:, 0] = past_success
        matrix[:, 1] = prediction_accuracy
        for building in range(len(self.dataset.plants)):
            mask = self._buildings == building
            if not np.any(mask):
                continue
            summary = self.dataset.scenario_summary_for_day(building, day)
            matrix[mask, 2] = summary[2]  # mean outdoor temperature
            matrix[mask, 3] = summary[4]  # mean relative humidity
            matrix[mask, 4] = summary[5]  # condition code
            matrix[mask, 5] = summary[0]  # mean cooling load (MW)
        matrix[:, 6] = self._band_mid
        matrix[:, 7] = self._mean_cop
        matrix[:, 8] = self._hours[day]
        matrix[:, 9] = self._flow
        return matrix
