"""Synthetic building-operation dataset and task extraction.

Stands in for the proprietary green-building dataset of [22] (3 buildings,
4 years, ~50 tasks): weather drives a cooling load; each building's chiller
plant serves it under a near-optimal operator (with occasional exploratory
sequencing, as real operators log); the resulting per-chiller telemetry
rows are grouped into the paper's task unit — "the COP prediction of a
chiller for one particular load", i.e. a (building, chiller, PLR band)
triple with its own, often scarce, training samples.

Everything is reproducible from ``BuildingOperationConfig.seed`` via a
single :func:`numpy.random.default_rng` stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.building.chiller import (
    CHILLER_MODEL_TYPES,
    Chiller,
    ChillerPlant,
)
from repro.building.weather import HOURS_PER_DAY, WeatherSeries, simulate_weather
from repro.errors import ConfigurationError, DataError
from repro.telemetry import get_registry, span

#: Column order of every task's ``X`` matrix (and of the decision-time
#: feature row built by :class:`repro.transfer.decision.MTLDecisionModel`).
TASK_FEATURE_COLUMNS: tuple[str, ...] = (
    "part_load_ratio",
    "outdoor_temperature",
    "relative_humidity",
    "weather_condition",
    "chilled_water_flow",
    "delta_t",
)

#: Specific heat of water (kJ/kg·K) used to convert load to chilled-water flow.
WATER_SPECIFIC_HEAT = 4.186

#: Design chilled-water temperature differential (°C).
DESIGN_DELTA_T = 5.5

#: Hourly occupancy profile of an office-type building (fraction of the
#: design internal gain present at each hour of the day).
OCCUPANCY_PROFILE = np.array(
    [
        0.28, 0.26, 0.25, 0.25, 0.26, 0.30,  # 00-05: night setback
        0.40, 0.58, 0.78, 0.88, 0.92, 0.94,  # 06-11: morning ramp
        0.95, 0.96, 0.95, 0.92, 0.88, 0.78,  # 12-17: occupied peak
        0.62, 0.50, 0.42, 0.36, 0.32, 0.30,  # 18-23: evening decay
    ]
)


@dataclass(frozen=True)
class TaskData:
    """One learning task: COP prediction for a (chiller, PLR band) pair.

    Attributes
    ----------
    task_id:
        Globally unique task index (dense, 0..n_tasks-1).
    building_id:
        Owning building.
    chiller_id:
        Globally unique machine id of the covered chiller.
    band_index:
        Index of the covered PLR band (the "operation" of Figs. 4-5).
    band:
        ``(low, high)`` PLR edges; a task covers ``low <= plr < high``.
    X:
        (n_samples, 6) telemetry features in :data:`TASK_FEATURE_COLUMNS`
        order.
    y:
        (n_samples,) measured COP targets.
    descriptor:
        Task-similarity descriptor used by the MTL strategies (observable
        summary statistics — nothing hidden leaks through it).
    """

    task_id: int
    building_id: int
    chiller_id: int
    band_index: int
    band: tuple[float, float]
    X: np.ndarray
    y: np.ndarray
    descriptor: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of training rows this task owns."""
        return int(len(self.y))


@dataclass(frozen=True)
class TelemetryRecord:
    """One logged operating hour of one chiller."""

    day: int
    hour: int
    chiller_id: int
    band_index: int
    features: np.ndarray
    cop: float


@dataclass(frozen=True)
class BuildingOperationConfig:
    """Sizing and reproducibility knobs of the synthetic history.

    Attributes
    ----------
    n_days:
        Simulated days (decision epochs).
    n_buildings:
        Independent buildings, each with its own plant and weather.
    seed:
        Master seed; the whole dataset is a pure function of the config.
    chillers_per_building:
        Plant size (subset enumeration is exponential; capped at 6).
    n_bands:
        PLR bands per chiller — the "operations" a machine runs in.
    min_plr:
        Lowest sustainable part-load ratio (band edges start here).
    min_task_samples:
        (chiller, band) cells with fewer logged rows than this are not
        promoted to tasks (too scarce to train anything on).
    scenario_stride:
        Hours between decision scenarios when replaying a day.
    sensor_noise:
        Relative noise of the COP measurements.
    exploration_rate:
        Fraction of hours the operator logs a non-optimal (random
        feasible) sequencing — the coverage real operation logs have.
    """

    n_days: int = 30
    n_buildings: int = 3
    seed: int = 0
    chillers_per_building: int = 4
    n_bands: int = 4
    min_plr: float = 0.2
    min_task_samples: int = 6
    scenario_stride: int = 3
    sensor_noise: float = 0.02
    exploration_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.n_days < 2:
            raise ConfigurationError(f"n_days must be >= 2, got {self.n_days}")
        if self.n_buildings < 1:
            raise ConfigurationError(
                f"n_buildings must be >= 1, got {self.n_buildings}"
            )
        if not 2 <= self.chillers_per_building <= 6:
            raise ConfigurationError(
                "chillers_per_building must be in [2, 6], got "
                f"{self.chillers_per_building}"
            )
        if self.n_bands < 1:
            raise ConfigurationError(f"n_bands must be >= 1, got {self.n_bands}")
        if not 0.0 < self.min_plr < 1.0:
            raise ConfigurationError(
                f"min_plr must be in (0, 1), got {self.min_plr}"
            )
        if self.min_task_samples < 2:
            raise ConfigurationError(
                f"min_task_samples must be >= 2, got {self.min_task_samples}"
            )
        if not 1 <= self.scenario_stride <= HOURS_PER_DAY:
            raise ConfigurationError(
                f"scenario_stride must be in [1, 24], got {self.scenario_stride}"
            )
        if self.sensor_noise < 0.0:
            raise ConfigurationError(
                f"sensor_noise must be >= 0, got {self.sensor_noise}"
            )
        if not 0.0 <= self.exploration_rate < 1.0:
            raise ConfigurationError(
                f"exploration_rate must be in [0, 1), got {self.exploration_rate}"
            )

    @property
    def band_edges(self) -> np.ndarray:
        """PLR band edges: ``n_bands + 1`` values from ``min_plr`` to 1."""
        return np.linspace(self.min_plr, 1.0, self.n_bands + 1)


def _build_plant(
    building_id: int, config: BuildingOperationConfig, rng: np.random.Generator, next_id: int
) -> tuple[ChillerPlant, int]:
    """One building's plant; chiller ids continue from ``next_id``."""
    chillers = []
    for position in range(config.chillers_per_building):
        spec = CHILLER_MODEL_TYPES[position % len(CHILLER_MODEL_TYPES)]
        capacity = spec.rated_capacity_kw * rng.uniform(0.9, 1.1)
        if position == 0:
            # The plant's legacy machine: heavily degraded and biased, so
            # its nameplate rating is far from the truth. Its tasks are the
            # head of the importance long tail (Observation 1).
            age = rng.uniform(9.0, 14.0)
            bias = rng.normal(-0.10, 0.02)
        else:
            age = rng.uniform(0.0, 2.0)
            bias = rng.normal(0.0, 0.01)
        chillers.append(
            Chiller(
                building_id=building_id,
                chiller_id=next_id,
                model_type=spec,
                capacity_kw=float(capacity),
                age_years=float(age),
                unit_bias=float(bias),
            )
        )
        next_id += 1
    return ChillerPlant(building_id=building_id, chillers=tuple(chillers)), next_id


def _simulate_loads(
    plant: ChillerPlant, weather: WeatherSeries, rng: np.random.Generator
) -> np.ndarray:
    """(n_days, 24) positive cooling loads in kW driven by occupancy + temp."""
    temperature = weather.temperature
    fraction = OCCUPANCY_PROFILE[None, :] * (
        0.45 + 0.030 * (temperature - 22.0)
    ) + rng.normal(0.0, 0.01, size=temperature.shape)
    fraction = np.clip(fraction, 0.08, 0.95)
    return fraction * plant.total_capacity_kw


def _operate_plant(
    plant: ChillerPlant,
    loads: np.ndarray,
    temperature: np.ndarray,
    config: BuildingOperationConfig,
    rng: np.random.Generator,
) -> list[tuple[int, int, int, float]]:
    """Replay the operator hour by hour.

    Returns ``(day, hour, subset_index, plr)`` per hour; subsets are indexed
    into the plant's enumeration (see ``_enumerate_subsets``). Vectorized
    over all hours so generation stays fast at benchmark scale.
    """
    subsets = _enumerate_subsets(plant)
    flat_load = loads.ravel()
    flat_temp = temperature.ravel()
    n_hours = flat_load.size

    plr_matrix = np.empty((len(subsets), n_hours))
    power = np.full((len(subsets), n_hours), np.inf)
    feasible = np.zeros((len(subsets), n_hours), dtype=bool)
    for s, (members, total) in enumerate(subsets):
        raw = flat_load / total
        ok = raw <= 1.0 + 1e-9
        plr = np.clip(raw, config.min_plr, 1.0)
        plr_matrix[s] = plr
        subset_power = np.zeros(n_hours)
        for member in members:
            chiller = plant.chillers[member]
            subset_power += plr * chiller.capacity_kw / chiller.cop(plr, flat_temp)
        power[s, ok] = subset_power[ok]
        feasible[s] = ok
    # A load above the whole plant's capacity saturates the full set.
    full = len(subsets) - 1
    none_ok = ~feasible.any(axis=0)
    feasible[full, none_ok] = True
    power[full, none_ok] = 0.0  # any finite value; it is the only candidate

    optimal = np.argmin(power, axis=0)
    explore = rng.random(n_hours) < config.exploration_rate
    chosen = optimal.copy()
    for h in np.flatnonzero(explore):
        options = np.flatnonzero(feasible[:, h])
        chosen[h] = int(rng.choice(options))

    schedule = []
    for h in range(n_hours):
        schedule.append(
            (h // HOURS_PER_DAY, h % HOURS_PER_DAY, int(chosen[h]), float(plr_matrix[chosen[h], h]))
        )
    return schedule


def _enumerate_subsets(plant: ChillerPlant) -> list[tuple[tuple[int, ...], float]]:
    """All non-empty chiller subsets with total capacity, full set last."""
    from itertools import combinations

    indices = range(len(plant.chillers))
    subsets = []
    for size in range(1, len(plant.chillers) + 1):
        for members in combinations(indices, size):
            subsets.append(
                (members, sum(plant.chillers[i].capacity_kw for i in members))
            )
    return subsets


class BuildingOperationDataset:
    """Generated multi-building operating history and its learning tasks.

    Usage::

        dataset = BuildingOperationDataset(BuildingOperationConfig(seed=7)).generate()
        dataset.tasks            # list[TaskData]
        dataset.plants           # tuple[ChillerPlant, ...]
        dataset.scenarios_for_day(0, 3)

    ``generate()`` returns ``self`` so construction chains into one line.
    """

    def __init__(self, config: BuildingOperationConfig | None = None) -> None:
        self.config = config if config is not None else BuildingOperationConfig()
        self.plants: tuple[ChillerPlant, ...] = ()
        self.weather: tuple[WeatherSeries, ...] = ()
        self.telemetry: list[list[TelemetryRecord]] = []
        self.tasks: list[TaskData] = []
        self.days: np.ndarray = np.arange(self.config.n_days)
        self._loads: list[np.ndarray] = []
        self._generated = False

    @property
    def n_tasks(self) -> int:
        """Number of extracted learning tasks."""
        return len(self.tasks)

    # ------------------------------------------------------------------
    def generate(self) -> "BuildingOperationDataset":
        """Build plants, weather, telemetry, and tasks from the seed."""
        started = time.perf_counter()
        with span(
            "building.generate",
            n_days=self.config.n_days,
            n_buildings=self.config.n_buildings,
        ):
            result = self._generate()
        registry = get_registry()
        registry.counter(
            "repro_building_datasets_generated_total",
            help="Synthetic building histories generated",
        ).inc()
        registry.histogram(
            "repro_building_generate_seconds",
            help="Dataset generation wall-clock latency",
        ).observe(time.perf_counter() - started)
        registry.gauge(
            "repro_building_tasks", help="Learning tasks extracted from telemetry"
        ).set(self.n_tasks)
        registry.gauge(
            "repro_building_telemetry_rows",
            help="Telemetry rows in the generated history",
        ).set(sum(len(records) for records in self.telemetry))
        return result

    def _generate(self) -> "BuildingOperationDataset":
        config = self.config
        rng = np.random.default_rng(config.seed)
        edges = config.band_edges

        plants: list[ChillerPlant] = []
        weather: list[WeatherSeries] = []
        telemetry: list[list[TelemetryRecord]] = []
        loads: list[np.ndarray] = []
        next_chiller_id = 0
        for building in range(config.n_buildings):
            plant, next_chiller_id = _build_plant(building, config, rng, next_chiller_id)
            series = simulate_weather(config.n_days, rng)
            building_loads = _simulate_loads(plant, series, rng)
            schedule = _operate_plant(
                plant, building_loads, series.temperature, config, rng
            )
            subsets = _enumerate_subsets(plant)
            records: list[TelemetryRecord] = []
            for day, hour, subset_index, plr in schedule:
                members, _ = subsets[subset_index]
                temp = float(series.temperature[day, hour])
                humidity = float(series.humidity[day, hour])
                condition = float(series.condition[day])
                band = min(
                    int(np.searchsorted(edges, plr, side="right") - 1),
                    config.n_bands - 1,
                )
                for member in members:
                    chiller = plant.chillers[member]
                    delta_t = DESIGN_DELTA_T + rng.normal(0.0, 0.15)
                    flow = plr * chiller.capacity_kw / (WATER_SPECIFIC_HEAT * delta_t)
                    measured_cop = float(chiller.cop(plr, temp)) * (
                        1.0 + rng.normal(0.0, config.sensor_noise)
                    )
                    records.append(
                        TelemetryRecord(
                            day=day,
                            hour=hour,
                            chiller_id=chiller.chiller_id,
                            band_index=band,
                            features=np.array(
                                [plr, temp, humidity, condition, flow, delta_t]
                            ),
                            cop=measured_cop,
                        )
                    )
            plants.append(plant)
            weather.append(series)
            telemetry.append(records)
            loads.append(building_loads)

        self.plants = tuple(plants)
        self.weather = tuple(weather)
        self.telemetry = telemetry
        self._loads = loads
        self.days = np.arange(config.n_days)
        self.tasks = self._extract_tasks()
        self._generated = True
        return self

    def _extract_tasks(self) -> list[TaskData]:
        """Group telemetry rows into (chiller, band) learning tasks."""
        config = self.config
        edges = config.band_edges
        tasks: list[TaskData] = []
        task_id = 0
        for building, records in enumerate(self.telemetry):
            grouped: dict[tuple[int, int], list[TelemetryRecord]] = {}
            for record in records:
                grouped.setdefault((record.chiller_id, record.band_index), []).append(
                    record
                )
            chiller_by_id = {c.chiller_id: c for c in self.plants[building].chillers}
            for (chiller_id, band_index) in sorted(grouped):
                rows = grouped[(chiller_id, band_index)]
                if len(rows) < config.min_task_samples:
                    continue
                X = np.vstack([r.features for r in rows])
                y = np.array([r.cop for r in rows])
                low = float(edges[band_index])
                high = float(edges[band_index + 1])
                if band_index == config.n_bands - 1:
                    high += 1e-6  # close the top band so plr == 1.0 is covered
                chiller = chiller_by_id[chiller_id]
                descriptor = np.array(
                    [
                        float(y.mean()),
                        float(y.std()),
                        0.5 * (low + high),
                        chiller.capacity_kw / 1000.0,
                        chiller.model_type.rated_cop,
                        # Health index: observed vs rated efficiency. This is
                        # what separates the legacy machines' tasks in
                        # descriptor space, so clustered MTL does not pool
                        # them with healthy machines of the same product line.
                        5.0 * float(y.mean()) / chiller.model_type.rated_cop,
                    ]
                )
                tasks.append(
                    TaskData(
                        task_id=task_id,
                        building_id=building,
                        chiller_id=chiller_id,
                        band_index=band_index,
                        band=(low, high),
                        X=X,
                        y=y,
                        descriptor=descriptor,
                    )
                )
                task_id += 1
        if not tasks:
            raise DataError(
                "task extraction produced no tasks; lower min_task_samples or "
                "increase n_days"
            )
        return tasks

    # ------------------------------------------------------------------
    def _check_day(self, building_id: int, day: int) -> None:
        if not self._generated:
            raise DataError("dataset not generated; call generate() first")
        if not 0 <= building_id < len(self.plants):
            raise DataError(f"building_id {building_id} out of range")
        if not 0 <= day < self.config.n_days:
            raise DataError(f"day {day} outside the generated horizon")

    def scenarios_for_day(self, building_id: int, day: int) -> list[tuple[float, float]]:
        """Decision scenarios ``(load_kw, outdoor_temp)`` replayed for a day.

        Sampled every ``scenario_stride`` hours; loads are strictly positive
        by construction, so the list is never empty.
        """
        self._check_day(building_id, day)
        loads = self._loads[building_id][day]
        temps = self.weather[building_id].temperature[day]
        stride = self.config.scenario_stride
        return [
            (float(loads[hour]), float(temps[hour]))
            for hour in range(0, HOURS_PER_DAY, stride)
        ]

    def scenario_summary_for_day(self, building_id: int, day: int) -> np.ndarray:
        """The 6-element sensing summary Z_b of one building-day.

        ``[mean load (MW), peak load (MW), mean temp, peak temp,
        mean humidity, condition code]`` — the sensing vector the CRL
        environment definitions cluster on.
        """
        self._check_day(building_id, day)
        loads = self._loads[building_id][day]
        series = self.weather[building_id]
        return np.array(
            [
                float(loads.mean()) / 1000.0,
                float(loads.max()) / 1000.0,
                float(series.temperature[day].mean()),
                float(series.temperature[day].max()),
                float(series.humidity[day].mean()),
                float(series.condition[day]),
            ]
        )
