"""Command-line interface: run the paper's experiments from the shell.

Usage::

    python -m repro fig9  [--tasks 50 --episodes 50 --seed 0]
    python -m repro fig10 [--sizes 200 400 600 800 1000]
    python -m repro fig11 [--bandwidths 10 20 40 80 120]
    python -m repro longtail [--days 60]
    python -m repro pipeline [--days 30]
    python -m repro bench    [--jobs 4 --full --check --threshold 1.25]
    python -m repro serve    [--arrival-rate 500 --duration-s 2 --queue-depth 512]
    python -m repro loadgen  [--arrival-rate 2000 --duration-s 2 --jobs 4]
    python -m repro top      [--endpoint http://127.0.0.1:9109 | --file timeseries.jsonl]

Each subcommand prints the corresponding figure's table; `pipeline` runs
the full building-data DCTA system once; `bench` runs the tracked
performance benchmarks and merges results into ``BENCH_perf.json``
(``--check`` additionally compares against a same-machine baseline and
exits non-zero on regression); `serve` runs the allocation service
against a generated open-loop traffic trace and prints its KPI table;
`loadgen` drives sustained load at a target rate and reports
p50/p95/p99 latency + throughput (see ``docs/serving.md``). The serve
flags mirror ``repro.serve.ServeConfig`` field names and their defaults
are shown in ``--help``.

Experiment subcommands accept ``--jobs N`` (parallel per-cluster CRL
training) and ``--no-cache`` (disable the allocation cache); see
``docs/performance.md``.

Every experiment subcommand also accepts the telemetry flags::

    --metrics-out metrics.json   # JSON snapshot of all repro_* metrics
    --metrics-prom metrics.prom  # Prometheus text exposition
    --trace-out trace.jsonl      # nested span trace of the run
    --log-level debug            # structured key=value logs to stderr

and ``telemetry-report`` renders saved metrics/trace files back into
tables and a flame summary.

``serve`` and ``loadgen`` additionally take live-observability flags:
``--metrics-port`` starts the HTTP sidecar (``/metrics`` ``/healthz``
``/kpis`` ``/timeseries``), ``--window-s``/``--timeseries-out`` control
the tumbling-window telemetry ring, and ``--slo`` declares burn-rate
objectives (``p99_ms=N``, ``rejection_pct=N``) reported after the run
and on ``/healthz``. ``repro top`` renders the window table from a live
endpoint or a saved timeseries file. See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.core.experiment import PTExperiment
from repro.core.scenario import ScenarioConfig, SyntheticScenario
from repro.telemetry import (
    MetricsRegistry,
    RunTrace,
    configure_logging,
    get_logger,
    kv,
    to_prometheus,
    use_registry,
    use_run_trace,
    write_metrics_json,
)


def _make_experiment(args: argparse.Namespace) -> PTExperiment:
    scenario = SyntheticScenario(
        ScenarioConfig(
            n_tasks=args.tasks,
            n_regimes=4,
            n_history=args.history,
            n_eval=args.eval_epochs,
            fluctuation_sigma=0.7,
            seed=args.seed,
        )
    )
    return PTExperiment(
        scenario,
        crl_episodes=args.episodes,
        jobs=getattr(args, "jobs", 1),
        seed=args.seed,
    )


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tasks", type=int, default=50, help="tasks per epoch")
    parser.add_argument("--episodes", type=int, default=50, help="DQN episodes per cluster")
    parser.add_argument("--history", type=int, default=32, help="history epochs")
    parser.add_argument("--eval-epochs", type=int, default=4, dest="eval_epochs")
    parser.add_argument("--seed", type=int, default=0)
    _add_performance_arguments(parser)


def _add_performance_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("performance")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-cluster CRL training (1 = serial)",
    )
    group.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="disable the allocation cache (on by default; see docs/performance.md)",
    )
    parser.set_defaults(cache=True)


def _serve_parent_parser() -> argparse.ArgumentParser:
    """Shared flags for ``serve`` and ``loadgen``.

    Flag names mirror :class:`repro.serve.ServeConfig` field names
    (``--arrival-rate`` ↔ ``arrival_rate_hz``, ``--duration-s`` ↔
    ``duration_s``, ``--queue-depth`` ↔ ``queue_depth``, ...), and the
    parent uses :class:`argparse.ArgumentDefaultsHelpFormatter` so both
    ``--help`` pages document the defaults.
    """
    from repro.serve.schemas import SAMPLER_NAMES, ServeConfig

    defaults = ServeConfig()
    parent = argparse.ArgumentParser(add_help=False)
    traffic = parent.add_argument_group("traffic")
    traffic.add_argument(
        "--arrival-rate",
        type=float,
        default=defaults.arrival_rate_hz,
        dest="arrival_rate_hz",
        help="mean open-loop arrival rate (requests/sec)",
    )
    traffic.add_argument(
        "--duration-s",
        type=float,
        default=defaults.duration_s,
        dest="duration_s",
        help="length of the generated traffic trace (seconds)",
    )
    traffic.add_argument(
        "--sampler",
        choices=SAMPLER_NAMES,
        default=defaults.sampler,
        help="inter-arrival process",
    )
    traffic.add_argument(
        "--burst-sigma",
        type=float,
        default=defaults.burst_sigma,
        dest="burst_sigma",
        help="log-rate burst modulation for gauss_poisson",
    )
    traffic.add_argument(
        "--redraw-every",
        type=int,
        default=defaults.redraw_every,
        dest="redraw_every",
        help="requests between importance redraws (cache misses); 0 disables",
    )
    service = parent.add_argument_group("service")
    service.add_argument(
        "--queue-depth",
        type=int,
        default=defaults.queue_depth,
        dest="queue_depth",
        help="ingest queue bound; arrivals beyond it are shed (429-style)",
    )
    service.add_argument(
        "--batch-max",
        type=int,
        default=defaults.batch_max,
        dest="batch_max",
        help="largest batch one dispatch drains",
    )
    service.add_argument(
        "--solver",
        default=defaults.solver,
        help="TATIM solver answering requests",
    )
    service.add_argument(
        "--tasks",
        type=int,
        default=defaults.n_tasks,
        dest="n_tasks",
        help="tasks in the recurring workload geometry",
    )
    service.add_argument(
        "--processors",
        type=int,
        default=defaults.n_processors,
        dest="n_processors",
        help="processors in the recurring workload geometry",
    )
    observability = parent.add_argument_group("observability")
    observability.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        dest="metrics_port",
        help="start the HTTP sidecar (/metrics /healthz /kpis /timeseries) "
        "on this port (0 = ephemeral)",
    )
    observability.add_argument(
        "--window-s",
        type=float,
        default=1.0,
        dest="window_s",
        help="tumbling telemetry window width (seconds)",
    )
    observability.add_argument(
        "--timeseries-out",
        metavar="PATH",
        default=None,
        dest="timeseries_out",
        help="write the windowed telemetry ring as JSONL after the run",
    )
    observability.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        dest="slo",
        help="SLO spec, repeatable: p99_ms=N (p99 latency under N ms) or "
        "rejection_pct=N (under N%% requests shed); bare --slo uses defaults",
        nargs="?",
        const="",
    )
    parent.add_argument("--seed", type=int, default=defaults.seed)
    _add_performance_arguments(parent)
    return parent


def _serve_config(args: argparse.Namespace):
    from repro.serve.schemas import ServeConfig

    return ServeConfig(
        arrival_rate_hz=args.arrival_rate_hz,
        duration_s=args.duration_s,
        sampler=args.sampler,
        burst_sigma=args.burst_sigma,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        jobs=args.jobs,
        solver=args.solver,
        cache=args.cache,
        n_tasks=args.n_tasks,
        n_processors=args.n_processors,
        redraw_every=args.redraw_every,
        seed=args.seed,
    )


def _parse_slo_specs(specs):
    """Turn ``--slo`` specs into SLO objects (empty/None specs → defaults).

    Grammar: ``p99_ms=N`` (99% of requests faster than N milliseconds)
    and ``rejection_pct=N`` (fewer than N% of requests shed). Repeated
    flags merge; a bare ``--slo`` keeps the stock serving objectives.
    """
    from repro.errors import ConfigurationError
    from repro.telemetry import default_serve_slos

    p99_threshold_s = 0.25
    rejection_objective = 0.99
    for spec in specs:
        if not spec:
            continue
        key, _, value = spec.partition("=")
        try:
            number = float(value)
        except ValueError:
            raise ConfigurationError(f"--slo {spec!r}: expected key=number")
        if key == "p99_ms":
            if number <= 0:
                raise ConfigurationError(f"--slo p99_ms must be > 0, got {number:g}")
            p99_threshold_s = number / 1000.0
        elif key == "rejection_pct":
            if not 0.0 < number < 100.0:
                raise ConfigurationError(
                    f"--slo rejection_pct must be in (0, 100), got {number:g}"
                )
            rejection_objective = 1.0 - number / 100.0
        else:
            raise ConfigurationError(
                f"--slo {spec!r}: unknown key {key!r} (want p99_ms or rejection_pct)"
            )
    return default_serve_slos(
        p99_threshold_s=p99_threshold_s, rejection_objective=rejection_objective
    )


class _ObservabilityStack:
    """The serve/loadgen live-observability wiring behind the CLI flags.

    Owns the window aggregator, SLO evaluator, live KPI tracker, and
    (with ``--metrics-port``) the HTTP sidecar. Built only when one of
    the observability flags is present, so the default serving path pays
    nothing.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.serve import KPITracker, ObservabilityServer
        from repro.telemetry import SLOEvaluator, TimeSeriesAggregator

        self.aggregator = TimeSeriesAggregator(window_s=args.window_s)
        self.evaluator = SLOEvaluator(
            _parse_slo_specs(args.slo or []), self.aggregator
        )
        self.kpis = KPITracker()
        self.server: ObservabilityServer | None = None
        self.timeseries_out = args.timeseries_out
        self.show_slos = args.slo is not None
        if args.metrics_port is not None:
            self.server = ObservabilityServer(
                port=args.metrics_port,
                aggregator=self.aggregator,
                evaluator=self.evaluator,
                kpi_supplier=self.kpis.snapshot_summary,
            )

    @classmethod
    def wanted(cls, args: argparse.Namespace) -> bool:
        """True when any serve observability flag was passed."""
        return (
            getattr(args, "metrics_port", None) is not None
            or getattr(args, "timeseries_out", None) is not None
            or getattr(args, "slo", None) is not None
        )

    def start(self) -> None:
        if self.server is not None:
            self.server.start()
            print(f"observability endpoint: {self.server.url}")

    def finish(self) -> list[str]:
        """Stop the sidecar, flush windows, and render closing output."""
        from repro.telemetry import slo_table

        if self.server is not None:
            self.server.stop()
        self.aggregator.flush()
        statuses = self.evaluator.publish()
        lines: list[str] = []
        if self.timeseries_out is not None:
            self.aggregator.write_jsonl(self.timeseries_out)
            lines.append(
                f"timeseries: {len(self.aggregator)} windows "
                f"({self.aggregator.dropped} dropped) -> {self.timeseries_out}"
            )
        if self.show_slos:
            lines.append(slo_table(statuses))
            if any(s.breaching for s in statuses):
                lines.append("SLO BREACH: error budget burning above threshold")
        return lines


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a JSON metrics snapshot here after the run",
    )
    group.add_argument(
        "--metrics-prom",
        metavar="PATH",
        default=None,
        help="write Prometheus text exposition here after the run",
    )
    group.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the nested span trace (JSONL) here after the run",
    )
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured key=value logging to stderr",
    )


def _command_fig9(args: argparse.Namespace) -> int:
    experiment = _make_experiment(args)
    result = experiment.sweep_processors(tuple(args.processors))
    print(result.table())
    for method in ("RM", "DML", "CRL"):
        print(f"mean {method}/DCTA speedup: {result.mean_speedup(method):.2f}x")
    return 0


def _command_fig10(args: argparse.Namespace) -> int:
    experiment = _make_experiment(args)
    result = experiment.sweep_input_size(tuple(args.sizes))
    print(result.table())
    return 0


def _command_fig11(args: argparse.Namespace) -> int:
    experiment = _make_experiment(args)
    result = experiment.sweep_bandwidth(tuple(args.bandwidths))
    print(result.table())
    return 0


def _command_longtail(args: argparse.Namespace) -> int:
    from repro import BuildingOperationConfig, BuildingOperationDataset, make_strategy
    from repro.importance.importance import importance_profile
    from repro.importance.longtail import long_tail_stats

    dataset = BuildingOperationDataset(
        BuildingOperationConfig(
            n_days=args.days, n_buildings=args.n_buildings, seed=args.seed
        )
    ).generate()
    model_set = make_strategy("clustered", "ridge", seed=args.seed).fit(dataset.tasks)
    days = dataset.days[5 : 5 + min(15, dataset.days.size - 5)]
    profile = importance_profile(dataset, model_set, days)
    stats = long_tail_stats(profile)
    print(f"tasks: {stats.n_tasks}")
    print(f"fraction of tasks for 80% of importance: {stats.fraction_for_80pct:.2%} (paper: 12.72%)")
    print(f"share of top 12.72% of tasks:            {stats.share_of_top_12_72pct:.2%}")
    print(f"Gini coefficient:                        {stats.gini:.3f}")
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    from repro import BuildingOperationConfig, DCTASystem, DCTASystemConfig

    system = DCTASystem(
        DCTASystemConfig(
            building=BuildingOperationConfig(
                n_days=args.days, n_buildings=args.n_buildings, seed=args.seed
            ),
            crl_episodes=args.episodes,
            jobs=getattr(args, "jobs", 1),
            seed=args.seed,
        )
    ).build()
    day = int(system.eval_days[0])
    print(f"{system.dataset.n_tasks} tasks; evaluating day {day}")
    for name, result in system.run_epoch(day).items():
        print(
            f"  {name:5s} PT={result.processing_time:9.1f}s "
            f"tasks={result.tasks_executed:3d} gate={result.gate_crossed}"
        )
    return 0


def _command_telemetry_report(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import RunTrace, snapshot_table

    if args.metrics is None and args.trace is None:
        print("nothing to report: pass --metrics and/or --trace", file=sys.stderr)
        return 2
    if args.metrics is not None:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        print(snapshot_table(data))
    if args.trace is not None:
        trace = RunTrace.read_jsonl(args.trace)
        if args.metrics is not None:
            print()
        print(trace.flame())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.core.bench import (
        baseline_warnings,
        bench_table,
        check_regressions,
        load_bench_json,
        run_bench,
    )

    baseline = None
    if args.check:
        # Snapshot the baseline before run_bench merges fresh numbers
        # into the same file.
        baseline = load_bench_json(args.baseline)
        if not baseline:
            print(f"bench --check: no usable baseline at {args.baseline}", file=sys.stderr)
            return 2
        for warning in baseline_warnings(baseline):
            print(f"bench --check: WARNING: {warning}", file=sys.stderr)
    results, notes = run_bench(
        jobs=args.jobs, quick=not args.full, rounds=args.rounds, out=args.out
    )
    print(bench_table(results))
    for note in notes:
        print(note)
    if baseline is not None:
        failures, table = check_regressions(results, baseline, threshold=args.threshold)
        print()
        print(table)
        if failures:
            print()
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("bench --check: no regressions")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import Dispatcher, generate_trace, trace_arrival_stats

    config = _serve_config(args)
    geometry, requests = generate_trace(config)
    stats = trace_arrival_stats(requests)
    print(
        f"trace: {stats['n']} requests over {config.duration_s:g}s "
        f"({config.sampler}, mean gap {stats['gap_mean_s'] * 1e3:.2f}ms, "
        f"gap CV {stats['gap_cv']:.2f})"
    )
    obs = _ObservabilityStack(args) if _ObservabilityStack.wanted(args) else None
    if obs is not None:
        obs.start()
    try:
        with Dispatcher(geometry, config) as dispatcher:
            report = dispatcher.run(
                requests,
                kpis=obs.kpis if obs is not None else None,
                aggregator=obs.aggregator if obs is not None else None,
            )
    finally:
        closing = obs.finish() if obs is not None else []
    print(report.table())
    for line in closing:
        print(line)
    return 0


def _command_edgesim(args: argparse.Namespace) -> int:
    if args.fleet:
        from repro.edgesim.fleet import FleetConfig, FleetSimulator

        config = FleetConfig(
            n_nodes=args.nodes,
            n_regions=args.regions,
            duration_s=args.duration_s,
            arrival_rate_hz=args.arrival_rate,
            churn_rate_hz=args.churn_rate,
            window_s=args.window_s,
            seed=args.seed,
        )
        import time as _time

        if args.shards:
            from repro.edgesim.shard import result_digest, run_fleet_sharded

            wall0 = _time.perf_counter()
            run = run_fleet_sharded(
                config,
                shards=args.shards,
                groups=args.shard_groups,
                force=args.shards > 1,
            )
            wall = _time.perf_counter() - wall0
            result = run.result
            rate = result.events / wall if wall > 0 else float("inf")
            print(
                f"fleet: {result.n_nodes} nodes / {result.n_regions} regions, "
                f"{result.duration_s:g}s simulated in {wall:.2f}s wall "
                f"({rate:,.0f} events/s)"
            )
            print(
                f"  sharded: {run.shards} shard(s) x {run.groups} region groups, "
                f"{run.barrier_crossings} lookahead barrier crossings"
            )
            print(f"  digest: {result_digest(result)}")
        else:
            simulator = FleetSimulator.build(config)
            wall0 = _time.perf_counter()
            result = simulator.run_fleet()
            wall = _time.perf_counter() - wall0
            rate = result.events / wall if wall > 0 else float("inf")
            print(
                f"fleet: {result.n_nodes} nodes / {result.n_regions} regions, "
                f"{result.duration_s:g}s simulated in {wall:.2f}s wall "
                f"({rate:,.0f} events/s)"
            )
        print(
            f"  arrivals {result.arrivals}  completed {result.completed}  "
            f"dropped {result.dropped}  redispatched {result.redispatched}"
        )
        print(
            f"  failures {result.failures}  recoveries {result.recoveries}  "
            f"peak in-flight {result.peak_in_flight}"
        )
        print(
            f"  latency mean {result.latency_mean_s:.3f}s  "
            f"p50 {result.latency_p50_s:.3f}s  p95 {result.latency_p95_s:.3f}s  "
            f"p99 {result.latency_p99_s:.3f}s"
        )
        if args.fleet_timeseries_out is not None:
            result.timeseries.write_jsonl(args.fleet_timeseries_out)
            print(f"  timeseries: {len(result.windows)} windows -> {args.fleet_timeseries_out}")
        return 0

    # Default: one testbed epoch through the vectorized kernel, checked
    # against the reference per-event simulator.
    from repro.edgesim import (
        EdgeSimulator,
        ExecutionPlan,
        FleetSimulator,
        WorkloadGenerator,
        paper_testbed,
    )

    nodes, network = paper_testbed()
    tasks = WorkloadGenerator(n_tasks=args.tasks, seed=args.seed).draw()
    ordered = sorted(tasks, key=lambda t: t.true_importance, reverse=True)
    plan = ExecutionPlan(
        assignments=tuple(
            (task.task_id, i % len(nodes)) for i, task in enumerate(ordered)
        ),
        label="cli-smoke",
    )
    fast = FleetSimulator(nodes, network).run(tasks, plan)
    reference = EdgeSimulator(nodes, network).run(tasks, plan)
    match = "exact match" if fast == reference else "MISMATCH vs reference"
    print(
        f"epoch: {len(tasks)} tasks on {len(nodes)} nodes -> "
        f"PT {fast.processing_time:.2f}s, {fast.tasks_executed} completed, "
        f"gate {'crossed' if fast.gate_crossed else 'missed'} ({match})"
    )
    return 0 if fast == reference else 1


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import Dispatcher, generate_trace

    config = _serve_config(args)
    geometry, requests = generate_trace(config)
    obs = _ObservabilityStack(args) if _ObservabilityStack.wanted(args) else None
    if obs is not None:
        obs.start()
    try:
        with Dispatcher(geometry, config) as dispatcher:
            if not args.no_prime:
                # One untimed replay fills the allocation cache, so the paced
                # run below measures warm steady-state serving capacity.
                dispatcher.replay(requests)
            report = dispatcher.run(
                requests,
                kpis=obs.kpis if obs is not None else None,
                aggregator=obs.aggregator if obs is not None else None,
            )
    finally:
        closing = obs.finish() if obs is not None else []
    summary = report.summary
    print(report.table())
    print(
        f"sustained {summary['throughput_rps']:.0f} req/s "
        f"(offered {config.arrival_rate_hz:g}/s, "
        f"{summary['rejected']} rejected, "
        f"p50 {summary['latency_p50_s'] * 1e3:.2f}ms / "
        f"p95 {summary['latency_p95_s'] * 1e3:.2f}ms / "
        f"p99 {summary['latency_p99_s'] * 1e3:.2f}ms)"
    )
    for line in closing:
        print(line)
    return 0


def _command_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.telemetry import (
        parse_timeseries_jsonl,
        read_timeseries_jsonl,
        timeseries_table,
    )

    if (args.endpoint is None) == (args.file is None):
        print("top: pass exactly one of --endpoint or --file", file=sys.stderr)
        return 2

    def render_once() -> None:
        if args.endpoint is not None:
            import json as _json
            import urllib.error
            import urllib.request

            base = args.endpoint.rstrip("/")
            with urllib.request.urlopen(
                f"{base}/timeseries?last={args.last}", timeout=5
            ) as response:
                meta, windows = parse_timeseries_jsonl(response.read().decode("utf-8"))
            try:
                with urllib.request.urlopen(f"{base}/healthz", timeout=5) as response:
                    health = _json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:  # 503 while breaching
                health = _json.loads(exc.read().decode("utf-8"))
            breaching = ",".join(health.get("breaching", [])) or "-"
            print(
                f"health: {health.get('status', '?')} (breaching: {breaching}) "
                f"windows={meta.get('windows', len(windows))} "
                f"window_s={meta.get('window_s', '?')}"
            )
        else:
            meta, windows = read_timeseries_jsonl(args.file)
        print(timeseries_table(windows, last=args.last))

    if args.watch is None:
        render_once()
        return 0
    iteration = 0
    try:
        while True:
            render_once()
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                break
            _time.sleep(max(args.watch, 0.05))
            print()
    except KeyboardInterrupt:
        pass
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.core.report import ReportConfig, generate_report

    print(
        generate_report(
            ReportConfig(
                building_days=args.days,
                crl_episodes=args.episodes,
                seed=args.seed,
            )
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Data-driven Task Allocation for "
        "Multi-task Transfer Learning on the Edge' (ICDCS 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fig9 = commands.add_parser("fig9", help="PT vs number of processors")
    _add_scenario_arguments(fig9)
    fig9.add_argument("--processors", type=int, nargs="+", default=[2, 4, 6, 8, 10])
    _add_telemetry_arguments(fig9)
    fig9.set_defaults(handler=_command_fig9)

    fig10 = commands.add_parser("fig10", help="PT vs average input size (Mb)")
    _add_scenario_arguments(fig10)
    fig10.add_argument("--sizes", type=float, nargs="+", default=[200, 400, 600, 800, 1000])
    _add_telemetry_arguments(fig10)
    fig10.set_defaults(handler=_command_fig10)

    fig11 = commands.add_parser("fig11", help="PT vs bandwidth (Mbps)")
    _add_scenario_arguments(fig11)
    fig11.add_argument("--bandwidths", type=float, nargs="+", default=[10, 20, 40, 80, 120])
    _add_telemetry_arguments(fig11)
    fig11.set_defaults(handler=_command_fig11)

    longtail = commands.add_parser("longtail", help="Fig. 2 long-tail statistics")
    # --n-days / --n-buildings mirror the BuildingOperationConfig field
    # names exactly; --days stays as the historical short spelling.
    longtail.add_argument("--days", "--n-days", type=int, default=40, dest="days")
    longtail.add_argument("--n-buildings", type=int, default=3, dest="n_buildings")
    longtail.add_argument("--seed", type=int, default=0)
    _add_telemetry_arguments(longtail)
    longtail.set_defaults(handler=_command_longtail)

    report = commands.add_parser("report", help="compact all-figures reproduction report")
    report.add_argument("--days", type=int, default=30)
    report.add_argument("--episodes", type=int, default=40)
    report.add_argument("--seed", type=int, default=0)
    _add_telemetry_arguments(report)
    report.set_defaults(handler=_command_report)

    pipeline = commands.add_parser("pipeline", help="full building-pipeline DCTA run")
    pipeline.add_argument("--days", "--n-days", type=int, default=25, dest="days")
    pipeline.add_argument("--n-buildings", type=int, default=3, dest="n_buildings")
    pipeline.add_argument("--episodes", type=int, default=30)
    pipeline.add_argument("--seed", type=int, default=0)
    _add_performance_arguments(pipeline)
    _add_telemetry_arguments(pipeline)
    pipeline.set_defaults(handler=_command_pipeline)

    bench = commands.add_parser(
        "bench", help="run tracked perf benchmarks and update BENCH_perf.json"
    )
    bench.add_argument(
        "--jobs", type=int, default=4, help="worker processes for the parallel-train bench"
    )
    bench.add_argument(
        "--full",
        action="store_true",
        help="full-size workloads (default is CI-sized quick mode)",
    )
    bench.add_argument("--rounds", type=int, default=3, help="timing rounds per bench")
    bench.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_perf.json",
        help="results JSON to merge into (use /dev/null to skip)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against a baseline BENCH_perf.json and exit 1 on regression",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default="BENCH_perf.json",
        help="baseline JSON for --check (read before --out is updated)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="default allowed current/baseline ratio for --check",
    )
    _add_telemetry_arguments(bench)
    bench.set_defaults(handler=_command_bench)

    # NOTE: argparse parents share action objects between parsers, so each
    # subcommand gets its own parent instance — loadgen's different
    # arrival-rate default must not leak into serve's help/default.
    serve = commands.add_parser(
        "serve",
        help="run the allocation service against generated open-loop traffic",
        parents=[_serve_parent_parser()],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    _add_telemetry_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    edgesim = commands.add_parser(
        "edgesim",
        help="run the edge DES: testbed epoch smoke or --fleet scale run",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    edgesim.add_argument(
        "--fleet",
        action="store_true",
        help="open-loop fleet run (vectorized engine) instead of the testbed epoch",
    )
    edgesim.add_argument("--tasks", type=int, default=50, help="epoch tasks (non-fleet)")
    edgesim.add_argument("--nodes", type=int, default=1000, help="fleet size")
    edgesim.add_argument("--regions", type=int, default=8, help="fleet regions")
    edgesim.add_argument(
        "--shards",
        type=int,
        default=0,
        help="region-sharded parallel fleet run across N worker processes "
        "(0 = single-process engine; result is bitwise-identical for any N >= 1)",
    )
    edgesim.add_argument(
        "--shard-groups",
        type=int,
        default=None,
        dest="shard_groups",
        help="region-group count for --shards (fixes the decomposition; "
        "default min(regions, 16))",
    )
    edgesim.add_argument("--duration-s", type=float, default=60.0, dest="duration_s")
    edgesim.add_argument(
        "--arrival-rate", type=float, default=30.0, help="fleet arrivals per second"
    )
    edgesim.add_argument(
        "--churn-rate", type=float, default=0.0, help="node failures per second"
    )
    edgesim.add_argument(
        "--window-s", type=float, default=10.0, dest="window_s",
        help="streaming metrics window width (simulated seconds)",
    )
    edgesim.add_argument(
        "--timeseries-out",
        metavar="PATH",
        default=None,
        dest="fleet_timeseries_out",
        help="write the fleet run's window ring as JSONL",
    )
    edgesim.add_argument("--seed", type=int, default=0)
    _add_telemetry_arguments(edgesim)
    edgesim.set_defaults(handler=_command_edgesim)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive sustained load through the dispatcher and report KPIs",
        parents=[_serve_parent_parser()],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    loadgen.add_argument(
        "--no-prime",
        action="store_true",
        help="skip the untimed cache-priming replay (measure cold serving)",
    )
    # Loadgen exists to demonstrate sustained serving capacity; default to
    # a rate that exercises the warm-cache path hard.
    loadgen.set_defaults(arrival_rate_hz=2000.0, handler=_command_loadgen)
    _add_telemetry_arguments(loadgen)

    top = commands.add_parser(
        "top",
        help="render live telemetry windows from a serve endpoint or timeseries file",
    )
    top.add_argument(
        "--endpoint",
        metavar="URL",
        default=None,
        help="base URL of a running observability sidecar (e.g. http://127.0.0.1:9109)",
    )
    top.add_argument(
        "--file",
        metavar="PATH",
        default=None,
        help="timeseries.jsonl written by --timeseries-out",
    )
    top.add_argument("--last", type=int, default=12, help="windows to show")
    top.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render every N seconds (endpoint mode; ctrl-c to stop)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop --watch after N renders (0 = until interrupted)",
    )
    top.set_defaults(handler=_command_top)

    telemetry = commands.add_parser(
        "telemetry-report", help="render saved metrics/trace files as tables"
    )
    telemetry.add_argument("--metrics", metavar="PATH", default=None, help="metrics.json from --metrics-out")
    telemetry.add_argument("--trace", metavar="PATH", default=None, help="trace.jsonl from --trace-out")
    telemetry.set_defaults(handler=_command_telemetry_report)

    return parser


def _run_with_telemetry(args: argparse.Namespace) -> int:
    """Install registry/trace sinks around the handler and write outputs."""
    metrics_out = getattr(args, "metrics_out", None)
    metrics_prom = getattr(args, "metrics_prom", None)
    trace_out = getattr(args, "trace_out", None)
    log_level = getattr(args, "log_level", None)
    if log_level is not None:
        configure_logging(log_level)

    collect_metrics = (
        metrics_out is not None
        or metrics_prom is not None
        # The live observability plane needs a real registry too: the
        # aggregator snapshots it and the sidecar scrapes it.
        or getattr(args, "metrics_port", None) is not None
        or getattr(args, "timeseries_out", None) is not None
        or getattr(args, "slo", None) is not None
    )
    registry = MetricsRegistry() if collect_metrics else None
    trace = RunTrace(label=args.command) if trace_out is not None else None
    with contextlib.ExitStack() as stack:
        if registry is not None:
            stack.enter_context(use_registry(registry))
        if trace is not None:
            stack.enter_context(use_run_trace(trace))
        if getattr(args, "cache", False):
            from repro.tatim.cache import AllocationCache, use_allocation_cache

            stack.enter_context(use_allocation_cache(AllocationCache()))
        status = args.handler(args)

    logger = get_logger("cli")
    if metrics_out is not None:
        write_metrics_json(registry, metrics_out)
        logger.info(kv(event="metrics_written", path=metrics_out))
    if metrics_prom is not None:
        with open(metrics_prom, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(registry))
        logger.info(kv(event="metrics_written", path=metrics_prom))
    if trace_out is not None:
        trace.write_jsonl(trace_out)
        logger.info(kv(event="trace_written", path=trace_out, spans=len(trace.spans)))
    return status


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _run_with_telemetry(args)


if __name__ == "__main__":
    sys.exit(main())
