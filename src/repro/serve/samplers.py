"""Open-loop traffic generators for the serving plane.

Two inter-arrival families, both deterministic under a fixed seed:

- :class:`PoissonSampler` — memoryless exponential gaps at a constant
  rate; the classical open-loop arrival process.
- :class:`GaussianPoissonSampler` — a doubly-stochastic (Cox) process:
  each gap's instantaneous rate is the base rate modulated by a
  log-Gaussian factor, producing the bursty traffic real edge fleets
  see. ``burst_sigma = 0`` degenerates to plain Poisson with the same
  draws-per-gap, so the two families are comparable seed-for-seed.

:func:`generate_trace` turns a :class:`~repro.serve.schemas.ServeConfig`
into a full deterministic request trace (geometry + timed
:class:`~repro.serve.schemas.AllocationRequest` list): arrival times,
importance drift, and regime redraws each consume an independent seed
derived up front via :func:`repro.utils.rng.derive_seeds`, so the trace
is a pure function of ``config`` — the contract the dispatcher's
``jobs=1 == jobs=N`` determinism check (and any replayed incident) rests
on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.schemas import AllocationRequest, ServeConfig
from repro.tatim.generators import random_instance
from repro.tatim.problem import TATIMProblem
from repro.utils.rng import as_rng, derive_seeds


class PoissonSampler:
    """Exponential inter-arrival gaps at a constant ``rate_hz``."""

    name = "poisson"

    def __init__(self, rate_hz: float, *, seed=None) -> None:
        if rate_hz <= 0:
            raise ConfigurationError(f"rate_hz must be > 0, got {rate_hz}")
        self.rate_hz = float(rate_hz)
        self._rng = as_rng(seed)

    def next_gap(self) -> float:
        """One inter-arrival gap in seconds."""
        return float(self._rng.exponential(1.0 / self.rate_hz))

    def gap_chunk(self, n: int) -> np.ndarray:
        """``n`` inter-arrival gaps drawn as one vectorized batch.

        Deterministic under a fixed seed; used by the fleet engine to
        generate arrivals chunk-by-chunk so memory stays O(chunk) rather
        than O(total arrivals). The chunked stream is draw-for-draw
        identical to repeated :meth:`next_gap` calls on a same-seed
        sampler, and invariant to how the draws are partitioned into
        chunks — the contract the sharded fleet runner's chunk-size
        independence rests on (pinned by ``tests/serve/test_samplers``).
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return self._rng.exponential(1.0 / self.rate_hz, size=n)

    def arrival_times(self, n: int) -> np.ndarray:
        """The first ``n`` arrival offsets (seconds, strictly ordered)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return np.cumsum([self.next_gap() for _ in range(n)])

    def arrivals_until(self, duration_s: float) -> np.ndarray:
        """Every arrival offset strictly inside ``[0, duration_s)``."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be > 0, got {duration_s}")
        offsets: list[float] = []
        clock = self.next_gap()
        while clock < duration_s:
            offsets.append(clock)
            clock += self.next_gap()
        return np.asarray(offsets)


class GaussianPoissonSampler(PoissonSampler):
    """Poisson arrivals whose rate is log-Gaussian-modulated per gap.

    Each gap draws a factor ``exp(sigma * z - sigma^2 / 2)`` (``z`` a
    standard normal), so the *mean* instantaneous rate stays ``rate_hz``
    while bursts (factor >> 1 → short gaps) and lulls cluster — the
    coefficient of variation of the gaps grows with ``burst_sigma``.

    The modulation normals and the exponential bases come from two
    independent substreams derived from the seed, so the per-gap draws
    never interleave on one stream. That makes :meth:`gap_chunk` exactly
    the vectorization of :meth:`next_gap` — same gaps in any chunking —
    which the fleet engine's chunk-size invariance depends on.
    """

    name = "gauss_poisson"

    def __init__(self, rate_hz: float, *, burst_sigma: float = 0.4, seed=None) -> None:
        super().__init__(rate_hz, seed=seed)
        if burst_sigma < 0:
            raise ConfigurationError(f"burst_sigma must be >= 0, got {burst_sigma}")
        self.burst_sigma = float(burst_sigma)
        z_seed, exp_seed = derive_seeds(self._rng, 2)
        self._z_rng = as_rng(z_seed)
        self._exp_rng = as_rng(exp_seed)

    def next_gap(self) -> float:
        sigma = self.burst_sigma
        factor = float(np.exp(sigma * self._z_rng.standard_normal() - sigma * sigma / 2.0))
        return float(self._exp_rng.exponential(1.0)) / (self.rate_hz * factor)

    def gap_chunk(self, n: int) -> np.ndarray:
        """Vectorized batch of ``n`` modulated gaps (see base class note)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        sigma = self.burst_sigma
        z = self._z_rng.standard_normal(n)
        factor = np.exp(sigma * z - sigma * sigma / 2.0)
        return self._exp_rng.exponential(1.0, size=n) / (self.rate_hz * factor)


def make_sampler(
    name: str, rate_hz: float, *, burst_sigma: float = 0.4, seed=None
) -> PoissonSampler:
    """Sampler factory keyed by ``ServeConfig.sampler`` names."""
    if name == "poisson":
        return PoissonSampler(rate_hz, seed=seed)
    if name == "gauss_poisson":
        return GaussianPoissonSampler(rate_hz, burst_sigma=burst_sigma, seed=seed)
    raise ConfigurationError(f"unknown sampler {name!r}; use poisson or gauss_poisson")


def generate_trace(
    config: ServeConfig, *, geometry: TATIMProblem | None = None
) -> tuple[TATIMProblem, list[AllocationRequest]]:
    """Deterministic (geometry, requests) for one open-loop serving run.

    Seeds split up front: geometry, arrivals, drift, and redraws each get
    their own stream, so e.g. lengthening the trace never perturbs the
    geometry. Importance follows the drift regime of Obs. 3 — tiny
    Gaussian jitter per request (sub-quantization at the default
    ``drift_sigma``, so consecutive requests are cache-equal) with a
    wholesale redraw every ``redraw_every`` requests standing in for a
    regime change.
    """
    geometry_seed, arrival_seed, drift_seed, redraw_seed = derive_seeds(config.seed, 4)
    if geometry is None:
        geometry = random_instance(
            config.n_tasks, config.n_processors, seed=geometry_seed
        )
    sampler = make_sampler(
        config.sampler,
        config.arrival_rate_hz,
        burst_sigma=config.burst_sigma,
        seed=arrival_seed,
    )
    arrivals = sampler.arrivals_until(config.duration_s)
    drift_rng = as_rng(drift_seed)
    redraw_rng = as_rng(redraw_seed)
    base = np.asarray(geometry.importance, dtype=float)
    current = base.copy()
    requests: list[AllocationRequest] = []
    for index, arrival in enumerate(arrivals):
        if config.redraw_every and index and index % config.redraw_every == 0:
            current = redraw_rng.uniform(0.05, 1.0, size=base.size)
        importance = current
        if config.drift_sigma > 0:
            importance = np.abs(
                current + drift_rng.normal(0.0, config.drift_sigma, size=base.size)
            )
        requests.append(
            AllocationRequest(
                request_id=index,
                arrival_s=float(arrival),
                importance=importance,
                solver=config.solver,
            )
        )
    return geometry, requests


def trace_arrival_stats(requests: Sequence[AllocationRequest]) -> dict:
    """Gap mean/CV of a trace — sanity numbers for logs and tests."""
    if len(requests) < 2:
        return {"n": len(requests), "gap_mean_s": 0.0, "gap_cv": 0.0}
    arrivals = np.asarray([r.arrival_s for r in requests])
    gaps = np.diff(arrivals)
    mean = float(gaps.mean())
    return {
        "n": len(requests),
        "gap_mean_s": mean,
        "gap_cv": float(gaps.std() / mean) if mean > 0 else 0.0,
    }
