"""Allocation-as-a-service: request/response API over the data plane.

The paper's end state is allocation decisions served to an edge fleet
under live traffic, not recomputed in one-shot experiment processes.
This package is that serving layer:

- :mod:`repro.serve.schemas` — versioned wire types
  (:class:`AllocationRequest` / :class:`AllocationResponse` /
  :class:`ServeConfig`) with ``to_dict``/``from_dict`` round-trip and
  forward-tolerant parsing.
- :mod:`repro.serve.samplers` — deterministic open-loop traffic
  generators (Poisson and Gaussian-Poisson inter-arrival) and
  :func:`generate_trace`, which renders a :class:`ServeConfig` into a
  replayable request trace.
- :mod:`repro.serve.dispatcher` — the bounded-queue ingest loop:
  admission control with 429-style shedding, cache-first answering via
  :class:`~repro.tatim.cache.AllocationCache`, and cache-miss fan-out
  across the persistent :class:`~repro.parallel.pool.WorkerPool` with
  the geometry published once through the shared-memory plane.
- :mod:`repro.serve.kpis` — per-request latency histograms and exact
  p50/p95/p99 + throughput/rejection KPIs through the telemetry
  registry (``repro_serve_*``), exported by the standard Prometheus/
  JSON exporters.
- :mod:`repro.serve.http` — the scrape/health boundary: a stdlib HTTP
  sidecar (:class:`ObservabilityServer`) exposing ``/metrics``,
  ``/healthz`` (SLO burn-rate verdicts), ``/kpis`` and ``/timeseries``
  for a live dispatcher.

CLI: ``repro serve`` (paced run with KPI table), ``repro loadgen``
(sustained-load measurement), and ``repro top`` (live window table).
See ``docs/serving.md``.
"""

from repro.serve.dispatcher import SOLVERS, Dispatcher, RolloutSolver, ServeReport
from repro.serve.http import ObservabilityServer
from repro.serve.kpis import KPITracker, kpi_table
from repro.serve.samplers import (
    GaussianPoissonSampler,
    PoissonSampler,
    generate_trace,
    make_sampler,
    trace_arrival_stats,
)
from repro.serve.schemas import (
    SCHEMA_VERSION,
    AllocationRequest,
    AllocationResponse,
    ServeConfig,
)

__all__ = [
    "SCHEMA_VERSION",
    "SOLVERS",
    "AllocationRequest",
    "AllocationResponse",
    "Dispatcher",
    "GaussianPoissonSampler",
    "KPITracker",
    "ObservabilityServer",
    "PoissonSampler",
    "RolloutSolver",
    "ServeConfig",
    "ServeReport",
    "generate_trace",
    "kpi_table",
    "make_sampler",
    "trace_arrival_stats",
]
