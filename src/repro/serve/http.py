"""HTTP scrape/health boundary for the serving plane — stdlib only.

:class:`ObservabilityServer` is a sidecar :class:`ThreadingHTTPServer`
that exposes the live telemetry surface of a running dispatcher:

- ``GET /metrics`` — Prometheus text exposition (format 0.0.4) of the
  registry, with the ``repro_slo_*`` gauges refreshed just before
  rendering so every scrape carries current burn rates;
- ``GET /healthz`` — JSON SLO verdicts; HTTP 200 while all SLOs hold,
  503 while any is breaching (multi-window burn-rate rule, see
  :mod:`repro.telemetry.slo`);
- ``GET /kpis`` — the live KPI summary (plus recent latency→trace-id
  exemplars) from a :class:`~repro.serve.kpis.KPITracker`;
- ``GET /timeseries`` — the aggregator's window ring as JSONL
  (``?last=N`` bounds the tail), the payload ``repro top`` renders.

The server owns a small tick thread so windows keep closing and SLO
gauges stay fresh even when the serving loop is stalled or between
requests. Everything is daemonic and bounded: ``stop()`` (or the
context manager) shuts both threads down.

Thread-safety: registry instruments carry no locks (the serving hot
path must not pay for them), so a scrape can race a concurrent insert
of a *new* label set mid-iteration. The handler retries the render a
few times on ``RuntimeError`` — losing one scrape attempt is fine,
corrupting the hot path is not.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.telemetry import (
    SLOEvaluator,
    TimeSeriesAggregator,
    default_serve_slos,
    get_logger,
    get_registry,
    kv,
    to_prometheus,
)

#: Render retries per scrape when a concurrent label-set insert races
#: the iteration (see module docstring).
_RENDER_RETRIES = 3

#: Prometheus text exposition content type.
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes the four observability endpoints; everything else is 404."""

    #: Set by :class:`ObservabilityServer` on the server object.
    server_version = "repro-observability/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (scrapes are periodic)."""

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, data: dict) -> None:
        self._send(status, json.dumps(data, indent=2) + "\n", "application/json")

    def _retrying(self, render):
        last_error: Exception | None = None
        for _ in range(_RENDER_RETRIES):
            try:
                return render()
            except RuntimeError as exc:  # dict mutated during iteration
                last_error = exc
        raise last_error  # pragma: no cover - needs a 3x repeated race

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        owner: "ObservabilityServer" = self.server.owner  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/metrics":
                self._send(200, self._retrying(owner.render_metrics), _PROM_CONTENT_TYPE)
            elif parsed.path == "/healthz":
                payload = self._retrying(owner.render_healthz)
                status = 200 if payload.get("status") == "ok" else 503
                self._send_json(status, payload)
            elif parsed.path == "/kpis":
                self._send_json(200, self._retrying(owner.render_kpis))
            elif parsed.path == "/timeseries":
                query = parse_qs(parsed.query)
                last = None
                if "last" in query:
                    last = max(1, int(query["last"][0]))
                body = self._retrying(lambda: owner.render_timeseries(last=last))
                self._send(200, body, "application/x-ndjson")
            else:
                self._send_json(404, {"error": f"unknown path {parsed.path!r}"})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # never kill the scrape thread
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass


class ObservabilityServer:
    """Background HTTP sidecar serving ``/metrics`` ``/healthz`` ``/kpis`` ``/timeseries``.

    Parameters
    ----------
    port:
        TCP port to bind; ``0`` (the default) picks an ephemeral port —
        read the actual one from :meth:`start`'s return or :attr:`port`.
    host:
        Bind address; loopback by default (this is a diagnostics
        sidecar, not a public API).
    registry:
        Metrics registry to scrape. ``None`` resolves the ambient
        registry *per scrape*, so a registry installed after the server
        starts is still picked up.
    aggregator:
        Optional :class:`~repro.telemetry.TimeSeriesAggregator` backing
        ``/timeseries``; its ``maybe_tick`` runs on the tick thread.
    evaluator:
        Optional :class:`~repro.telemetry.SLOEvaluator` backing
        ``/healthz`` and the ``repro_slo_*`` gauges. When omitted but an
        aggregator is given, the stock serving SLOs are installed.
    kpi_supplier:
        Zero-arg callable returning the ``/kpis`` JSON dict (e.g.
        ``tracker.snapshot_summary``). ``None`` serves an empty dict.
    """

    def __init__(
        self,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        registry=None,
        aggregator: TimeSeriesAggregator | None = None,
        evaluator: SLOEvaluator | None = None,
        kpi_supplier=None,
    ) -> None:
        if port < 0:
            raise ConfigurationError(f"port must be >= 0, got {port}")
        self._host = host
        self._requested_port = int(port)
        self._registry = registry
        self.aggregator = aggregator
        if evaluator is None and aggregator is not None:
            evaluator = SLOEvaluator(default_serve_slos(), aggregator)
        self.evaluator = evaluator
        self._kpi_supplier = kpi_supplier
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._tick_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.port: int | None = None

    # ------------------------------------------------------------------
    def _resolve_registry(self):
        return self._registry if self._registry is not None else get_registry()

    def render_metrics(self) -> str:
        """The ``/metrics`` body: refresh SLO gauges, then expose."""
        registry = self._resolve_registry()
        if self.evaluator is not None:
            self.evaluator.publish(registry)
        return to_prometheus(registry)

    def render_healthz(self) -> dict:
        """The ``/healthz`` payload (``status: ok`` without SLO wiring)."""
        if self.evaluator is None:
            return {"status": "ok", "breaching": [], "slos": []}
        return self.evaluator.healthz()

    def render_kpis(self) -> dict:
        """The ``/kpis`` payload from the configured supplier."""
        if self._kpi_supplier is None:
            return {}
        return dict(self._kpi_supplier())

    def render_timeseries(self, *, last: int | None = None) -> str:
        """The ``/timeseries`` JSONL body (empty meta without aggregator)."""
        if self.aggregator is None:
            return json.dumps({"kind": "meta", "windows": 0}) + "\n"
        self.aggregator.maybe_tick()
        return self.aggregator.to_jsonl(last=last)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the running server (valid after :meth:`start`)."""
        if self.port is None:
            raise ConfigurationError("server not started; call start() first")
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        """Bind, spin up the serve + tick threads; returns the bound port."""
        if self._httpd is not None:
            return self.port  # type: ignore[return-value]
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self.port = int(self._httpd.server_address[1])
        self._stop.clear()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-observability-http",
            daemon=True,
        )
        self._serve_thread.start()
        if self.aggregator is not None:
            self._tick_thread = threading.Thread(
                target=self._tick_loop,
                name="repro-observability-tick",
                daemon=True,
            )
            self._tick_thread.start()
        get_logger("serve.http").info(
            kv(event="observability_server_started", host=self._host, port=self.port)
        )
        return self.port

    def _tick_loop(self) -> None:
        interval = min(self.aggregator.window_s / 2.0, 0.25)
        while not self._stop.wait(max(interval, 0.01)):
            try:
                self.aggregator.maybe_tick()
                if self.evaluator is not None:
                    self.evaluator.publish(self._resolve_registry())
            except Exception:  # keep ticking; scrape paths surface errors
                pass

    def stop(self) -> None:
        """Shut down both threads (idempotent)."""
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=2.0)
            self._serve_thread = None
        if self._tick_thread is not None:
            self._tick_thread.join(timeout=2.0)
            self._tick_thread = None

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
