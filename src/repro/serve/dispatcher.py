"""The allocation-as-a-service ingest loop.

:class:`Dispatcher` turns the one-shot allocation pipeline into a
long-running service: requests arrive on an open-loop schedule, wait in
a **bounded queue**, and are drained in batches that load-balance across
the persistent :class:`~repro.parallel.pool.WorkerPool`. The heavy
lifting reuses the existing data plane:

- the :class:`~repro.tatim.cache.AllocationCache` memoizes solves keyed
  on ``(scope, geometry signature, quantized importance signature)`` —
  in the drift regime of Obs. 3 consecutive requests quantize equal, so
  a warm dispatcher answers in microseconds without touching a solver;
- the fixed task/processor geometry is published **once** through the
  :class:`~repro.parallel.shm.SharedArrayStore`, so worker payloads
  carry a tiny :class:`~repro.parallel.shm.SharedBlobRef` plus one
  importance vector instead of re-pickling the instance per request;
- cache-miss batches fan out through
  :class:`~repro.parallel.trainer.ParallelTrainer` (deduplicated by
  cache key first), which returns results in submission order — with
  deterministic solvers this makes dispatcher output a pure function of
  the request trace: ``jobs=1`` and ``jobs=N`` produce identical
  responses (:meth:`AllocationResponse.identity`).

**Admission control / backpressure.** The ingest queue is bounded by
``ServeConfig.queue_depth``; when an arrival finds it full, the request
is shed immediately with a 429-style ``rejected`` response and counted
in ``repro_serve_rejections_total{reason="queue_full"}``. Under
sustained overload the queue depth and per-request latency therefore
stay bounded while the rejection counter grows — shed, don't drown.

Two drain modes:

- :meth:`Dispatcher.replay` — serve a trace as fast as possible, no
  pacing, nothing shed. This is the deterministic mode benches and the
  ``jobs=1 == jobs=N`` check use.
- :meth:`Dispatcher.run` — honor arrival times against the wall clock
  (open-loop), applying admission control. This is what ``repro serve``
  / ``repro loadgen`` and the saturation bench exercise.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.shm import SharedBlobRef, get_shared_store, resolve_shared
from repro.parallel.trainer import ParallelTrainer
from repro.rl.env import AllocationEnv, BatchedAllocationEnv
from repro.serve.kpis import KPITracker, kpi_table
from repro.serve.schemas import AllocationRequest, AllocationResponse, ServeConfig
from repro.tatim.cache import AllocationCache, array_signature
from repro.tatim.exact import branch_and_bound
from repro.tatim.greedy import best_fit_greedy, density_greedy, importance_greedy
from repro.tatim.problem import TATIMProblem
from repro.telemetry import current_run_trace, span

#: Solver names a request may carry → callables. All are deterministic,
#: which is what the dispatcher's determinism contract rests on.
SOLVERS: dict[str, Callable] = {
    "density_greedy": density_greedy,
    "importance_greedy": importance_greedy,
    "best_fit_greedy": best_fit_greedy,
    "branch_and_bound": branch_and_bound,
}

#: Spin instead of sleeping when the next arrival is closer than this —
#: ``time.sleep`` granularity would otherwise dominate sub-millisecond
#: inter-arrival gaps.
_SPIN_THRESHOLD_S = 0.0005


class RolloutSolver:
    """:data:`SOLVERS`-compatible adapter over a DQN agent's greedy rollout.

    Registering an instance (``SOLVERS["crl_rollout"] =
    RolloutSolver(agent)``) lets requests name the learned policy like
    any greedy. Beyond the one-problem callable contract it exposes
    :meth:`solve_batch`, which the dispatcher uses to collapse a miss
    batch's rollouts into one lockstep pass over a
    :class:`~repro.rl.env.BatchedAllocationEnv` — allocations identical
    to per-request :meth:`__call__`, with one batched forward per step
    instead of one forward per episode per step.

    Rollout solvers always run in the dispatcher process: the agent's
    networks would be re-pickled per batch under worker fan-out, and the
    rollout is deterministic anyway, so the jobs-invariance contract is
    unaffected.
    """

    def __init__(self, agent) -> None:
        self.agent = agent

    def __call__(self, problem):
        return self.agent.solve(AllocationEnv(problem))

    def solve_batch(self, problems) -> list:
        return self.agent.solve_greedy_batch(BatchedAllocationEnv(list(problems)))


def _solve_payload(payload: tuple) -> dict[int, int]:
    """Worker body: solve one (geometry, importance, solver) instance.

    ``geometry`` may be the problem itself or a :class:`SharedBlobRef`
    to the zero-copy published copy. Returns the plain ``{task:
    processor}`` assignment — small, picklable, and enough for the
    parent to rebuild the response (the objective is recomputed from the
    request's own importance).
    """
    geometry, importance, solver_name = payload
    with span("serve.solve", solver=solver_name):
        geometry = resolve_shared(geometry)
        problem = geometry.scaled(importance=np.asarray(importance, dtype=float))
        allocation = SOLVERS[solver_name](problem)
        return allocation.as_assignment()


@dataclass
class ServeReport:
    """Outcome of one dispatcher drain: responses + KPI summary."""

    config: ServeConfig
    responses: list[AllocationResponse]
    summary: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return float(self.summary.get("throughput_rps", 0.0))

    @property
    def rejected(self) -> int:
        return int(self.summary.get("rejected", 0))

    def identities(self) -> list[tuple]:
        """Timing-free response identities, in request-id order.

        Identical across ``jobs`` settings for the same trace — the
        determinism contract's comparison key.
        """
        return [r.identity() for r in sorted(self.responses, key=lambda r: r.request_id)]

    def table(self) -> str:
        return kpi_table(self.summary)


class Dispatcher:
    """Load-balancing allocation service over a fixed TATIM geometry.

    Parameters
    ----------
    geometry:
        The recurring workload's task/processor instance; requests only
        supply the importance vector (its length must match).
    config:
        Queueing, traffic, and solver wiring (see :class:`ServeConfig`).
        ``config.solver`` must name an entry in the module-level
        :data:`SOLVERS` registry (extend it to add solvers — e.g. the
        saturation tests register a deliberately slow one).

    Every request is minted a ``trace_id`` (unless it already carries
    one) that is echoed in the response, stamped on the KPI exemplars,
    and propagated into worker processes so worker-side solve spans
    re-parent under the originating request's span on telemetry merge —
    one request, one trace, across processes.
    """

    #: Distinguishes trace ids minted by different dispatcher instances
    #: living in one process (e.g. test suites).
    _instances = itertools.count()

    def __init__(
        self,
        geometry: TATIMProblem,
        config: ServeConfig | None = None,
    ) -> None:
        self.geometry = geometry
        self.config = config if config is not None else ServeConfig()
        self.cache: AllocationCache | None = (
            AllocationCache() if self.config.cache else None
        )
        if self.config.solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown solver {self.config.solver!r}; known: {sorted(SOLVERS)}"
            )
        #: Geometry digest baked into every cache key, so two dispatchers
        #: with different geometries can never alias entries.
        self._geometry_sig = (
            self.cache.problem_signature(geometry) if self.cache is not None else None
        )
        self._shared_key: str | None = None
        self._shared_ref: SharedBlobRef | None = None
        self._trace_prefix = f"d{next(self._instances)}"
        self._trace_counter = itertools.count()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the published geometry block (idempotent)."""
        if self._shared_key is not None:
            get_shared_store().release(self._shared_key)
            self._shared_key = None
            self._shared_ref = None

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _geometry_handle(self):
        """The geometry as workers should receive it (shared when fanning out)."""
        if self.config.jobs <= 1:
            return self.geometry
        if self._shared_ref is None:
            self._shared_key = f"serve:geometry:{id(self)}"
            self._shared_ref = get_shared_store().share(self._shared_key, self.geometry)
        return self._shared_ref

    def _cache_key(self, request: AllocationRequest) -> tuple | None:
        if self.cache is None:
            return None
        scope = f"serve/{request.solver}"
        if request.environment is not None:
            scope = f"{scope}/{request.environment}"
        return (
            scope,
            self._geometry_sig,
            array_signature(request.importance, decimals=self.cache.decimals),
        )

    def _mint_trace_ids(self, batch: Sequence[AllocationRequest]) -> list[str]:
        """One trace id per request: caller-supplied when present, else minted.

        Minted ids are unique per dispatcher instance and cheap (a
        counter, no UUID entropy on the hot path).
        """
        return [
            request.trace_id
            if request.trace_id is not None
            else f"{self._trace_prefix}-{next(self._trace_counter)}"
            for request in batch
        ]

    # ------------------------------------------------------------------
    def _serve_batch(
        self,
        batch: Sequence[AllocationRequest],
        trace_ids: Sequence[str] | None = None,
    ) -> list[tuple[dict[int, int], bool]]:
        """Answer a batch: cache hits in-process, misses fanned out.

        Misses are deduplicated by cache key before dispatch (the drift
        regime makes whole batches quantize equal), solved through
        :class:`ParallelTrainer` in submission order, then inserted into
        the cache. The hit/miss partition and the per-key solve are both
        independent of ``jobs``, so results are too.

        When a run trace is active, each miss group opens a
        ``serve.request`` anchor span tagged with the group's trace id;
        the trainer propagates that id into the worker so the remote
        solve span re-parents under the anchor on merge.
        """
        answers: list[tuple[dict[int, int], bool] | None] = [None] * len(batch)
        misses: "OrderedDict[object, list[int]]" = OrderedDict()
        keys: list[tuple | None] = []
        for index, request in enumerate(batch):
            key = self._cache_key(request)
            keys.append(key)
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    answers[index] = (cached, True)
                    continue
            # Dedup key: the cache key when caching, else the raw bytes of
            # the (solver, importance) pair — identical requests solve once.
            dedup = key if key is not None else (
                request.solver,
                request.importance.tobytes(),
            )
            misses.setdefault(dedup, []).append(index)
        if misses:
            # Miss groups whose solver can roll out in lockstep
            # (:class:`RolloutSolver`) are answered in-process with one
            # batched pass; the rest keep the worker fan-out below.
            rollout_groups: "OrderedDict[str, list[list[int]]]" = OrderedDict()
            remote: "OrderedDict[object, list[int]]" = OrderedDict()
            for dedup, indices in misses.items():
                solver = SOLVERS.get(batch[indices[0]].solver)
                if solver is not None and hasattr(solver, "solve_batch"):
                    rollout_groups.setdefault(batch[indices[0]].solver, []).append(
                        indices
                    )
                else:
                    remote[dedup] = indices
            for name, groups in rollout_groups.items():
                with span("serve.rollout_batch", solver=name, episodes=len(groups)):
                    problems = [
                        self.geometry.scaled(
                            importance=np.asarray(
                                batch[indices[0]].importance, dtype=float
                            )
                        )
                        for indices in groups
                    ]
                    allocations = SOLVERS[name].solve_batch(problems)
                for indices, allocation in zip(groups, allocations):
                    assignment = allocation.as_assignment()
                    for index in indices:
                        answers[index] = (assignment, False)
                    if keys[indices[0]] is not None:
                        self.cache.put(keys[indices[0]], assignment)
            misses = remote
        if misses:
            geometry = self._geometry_handle()
            payloads = [
                (geometry, batch[indices[0]].importance, batch[indices[0]].solver)
                for indices in misses.values()
            ]
            miss_trace_ids: list[str | None] = [
                trace_ids[indices[0]] if trace_ids is not None else None
                for indices in misses.values()
            ]
            trace = current_run_trace()
            anchors: list[int | None] = []
            if trace is not None:
                for indices, trace_id in zip(misses.values(), miss_trace_ids):
                    if trace_id is None:
                        anchors.append(None)
                        continue
                    lead = batch[indices[0]]
                    mark = trace.now()
                    anchors.append(
                        trace.add_span(
                            "serve.request",
                            mark,
                            mark,
                            attrs={
                                "trace_id": trace_id,
                                "request_id": lead.request_id,
                                "solver": lead.solver,
                                "coalesced": len(indices),
                            },
                            parent=trace.current_index(),
                        )
                    )
            trainer = ParallelTrainer(
                _solve_payload, jobs=self.config.jobs, label="serve"
            )
            results = trainer.map(payloads, trace_ids=miss_trace_ids)
            if trace is not None:
                for anchor in anchors:
                    if anchor is not None:
                        trace.touch(anchor)
            for indices, assignment in zip(misses.values(), results):
                for index in indices:
                    answers[index] = (assignment, False)
                if keys[indices[0]] is not None:
                    self.cache.put(keys[indices[0]], assignment)
        return answers  # type: ignore[return-value]

    def _respond(
        self,
        request: AllocationRequest,
        assignment: dict[int, int],
        cache_hit: bool,
        *,
        queue_delay_s: float,
        service_s: float,
        latency_s: float,
        trace_id: str | None = None,
    ) -> AllocationResponse:
        tasks = list(assignment)
        objective = float(request.importance[tasks].sum()) if tasks else 0.0
        return AllocationResponse(
            request_id=request.request_id,
            status="ok",
            assignment=assignment,
            objective=objective,
            solver=request.solver,
            cache_hit=cache_hit,
            queue_delay_s=max(queue_delay_s, 0.0),
            service_s=max(service_s, 0.0),
            latency_s=max(latency_s, 0.0),
            trace_id=trace_id,
        )

    def serve(self, request: AllocationRequest) -> AllocationResponse:
        """Answer one request synchronously (no queueing)."""
        started = time.perf_counter()
        trace_ids = self._mint_trace_ids([request])
        ((assignment, cache_hit),) = self._serve_batch([request], trace_ids)
        elapsed = time.perf_counter() - started
        return self._respond(
            request,
            assignment,
            cache_hit,
            queue_delay_s=0.0,
            service_s=elapsed,
            latency_s=elapsed,
            trace_id=trace_ids[0],
        )

    # ------------------------------------------------------------------
    def replay(
        self,
        requests: Sequence[AllocationRequest],
        *,
        kpis: KPITracker | None = None,
        aggregator=None,
    ) -> ServeReport:
        """Drain a trace as fast as possible — deterministic, nothing shed.

        Latency here is pure service time (no pacing, so queue delay is
        meaningless); throughput is the service capacity of the current
        cache state, which is what the ``serve_sustained_load`` benches
        measure. A caller-supplied ``kpis`` tracker lets a live
        ``/kpis`` endpoint watch the drain; ``aggregator`` (a
        :class:`~repro.telemetry.TimeSeriesAggregator`) is ticked once
        per batch so windows close on schedule without per-event cost.
        """
        kpis = kpis if kpis is not None else KPITracker()
        responses: list[AllocationResponse] = []
        batch_max = self.config.batch_max
        started = time.perf_counter()
        with span("serve.replay", requests=len(requests)):
            for offset in range(0, len(requests), batch_max):
                batch = list(requests[offset : offset + batch_max])
                trace_ids = self._mint_trace_ids(batch)
                batch_started = time.perf_counter()
                answers = self._serve_batch(batch, trace_ids)
                per_request_s = (time.perf_counter() - batch_started) / len(batch)
                for request, (assignment, cache_hit), trace_id in zip(
                    batch, answers, trace_ids
                ):
                    response = self._respond(
                        request,
                        assignment,
                        cache_hit,
                        queue_delay_s=0.0,
                        service_s=per_request_s,
                        latency_s=per_request_s,
                        trace_id=trace_id,
                    )
                    responses.append(response)
                    kpis.record_ok(
                        latency_s=response.latency_s,
                        queue_delay_s=0.0,
                        service_s=response.service_s,
                        cache_hit=cache_hit,
                        trace_id=trace_id,
                    )
                if aggregator is not None:
                    aggregator.maybe_tick()
        elapsed = time.perf_counter() - started
        kpis.finish(elapsed)
        return ServeReport(
            config=self.config, responses=responses, summary=kpis.summary(elapsed)
        )

    def run(
        self,
        requests: Sequence[AllocationRequest],
        *,
        kpis: KPITracker | None = None,
        aggregator=None,
    ) -> ServeReport:
        """Open-loop paced drain with admission control.

        Arrival offsets are honored against the wall clock; an arrival
        that finds the queue at ``queue_depth`` is shed immediately with
        a ``rejected`` response. Per-request latency is measured from the
        *scheduled* arrival (open-loop convention: a slow server cannot
        slow the offered load down, so falling behind shows up as queue
        delay, not as a stretched schedule). ``kpis`` / ``aggregator``
        follow the same live-observability contract as :meth:`replay`
        (the aggregator is ticked once per loop iteration).
        """
        kpis = kpis if kpis is not None else KPITracker()
        responses: list[AllocationResponse] = []
        pending: deque[AllocationRequest] = deque()
        queue_depth = self.config.queue_depth
        batch_max = self.config.batch_max
        next_index = 0
        n = len(requests)
        started = time.perf_counter()
        with span("serve.run", requests=n):
            while next_index < n or pending:
                if aggregator is not None:
                    aggregator.maybe_tick()
                now = time.perf_counter() - started
                while next_index < n and requests[next_index].arrival_s <= now:
                    request = requests[next_index]
                    next_index += 1
                    if len(pending) >= queue_depth:
                        kpis.record_rejected(reason="queue_full")
                        responses.append(
                            AllocationResponse(
                                request_id=request.request_id,
                                status="rejected",
                                solver=request.solver,
                            )
                        )
                        continue
                    pending.append(request)
                kpis.observe_queue_depth(len(pending))
                if not pending:
                    if next_index < n:
                        gap = requests[next_index].arrival_s - (
                            time.perf_counter() - started
                        )
                        if gap > _SPIN_THRESHOLD_S:
                            time.sleep(min(gap, 0.002))
                    continue
                batch = [pending.popleft() for _ in range(min(batch_max, len(pending)))]
                trace_ids = self._mint_trace_ids(batch)
                batch_started = time.perf_counter() - started
                answers = self._serve_batch(batch, trace_ids)
                batch_finished = time.perf_counter() - started
                service_s = (batch_finished - batch_started) / len(batch)
                for request, (assignment, cache_hit), trace_id in zip(
                    batch, answers, trace_ids
                ):
                    response = self._respond(
                        request,
                        assignment,
                        cache_hit,
                        queue_delay_s=batch_started - request.arrival_s,
                        service_s=service_s,
                        latency_s=batch_finished - request.arrival_s,
                        trace_id=trace_id,
                    )
                    responses.append(response)
                    kpis.record_ok(
                        latency_s=response.latency_s,
                        queue_delay_s=response.queue_delay_s,
                        service_s=response.service_s,
                        cache_hit=cache_hit,
                        trace_id=trace_id,
                    )
        elapsed = time.perf_counter() - started
        kpis.finish(elapsed)
        return ServeReport(
            config=self.config, responses=responses, summary=kpis.summary(elapsed)
        )
