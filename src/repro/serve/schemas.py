"""Versioned wire schemas for allocation-as-a-service.

The serving plane talks in three dataclasses — :class:`AllocationRequest`
(one allocation query), :class:`AllocationResponse` (its answer), and
:class:`ServeConfig` (how the dispatcher and traffic generators are
wired). All three are plain-data and JSON-ready: ``to_dict`` emits only
built-in types, ``from_dict`` round-trips them back, and every payload
carries a ``schema_version`` field.

Versioning policy
-----------------
``SCHEMA_VERSION`` is a single integer bumped on any *incompatible*
change (renamed/retyped fields). ``from_dict`` is forward-tolerant:

- **Unknown fields are ignored**, so a newer producer that *added*
  fields can talk to an older consumer without a version bump.
- Payloads from a **newer major version** (``schema_version >
  SCHEMA_VERSION``) are rejected with :class:`~repro.errors.DataError`
  rather than silently misread.
- The parsed object records the wire version it came from, so bridges
  can downgrade/upgrade explicitly.

The request deliberately carries only the *drifting* part of a TATIM
instance — the importance vector (plus solver choice); the fixed task/
processor geometry lives in the dispatcher (published once through the
shared-memory plane). That mirrors the paper's deployment: geometry is
the recurring workload, importance is what the environment changes
epoch to epoch, and it is what keeps a request small enough to ingest
thousands per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, DataError

#: Current wire-format version. Bump ONLY on incompatible changes; added
#: fields are covered by ``from_dict``'s unknown-field tolerance.
SCHEMA_VERSION = 1

#: Request statuses an :class:`AllocationResponse` may carry. ``rejected``
#: is the 429-style admission-control shed (see ``dispatcher.py``).
RESPONSE_STATUSES = ("ok", "rejected")


def _check_version(data: Mapping, kind: str) -> int:
    version = int(data.get("schema_version", SCHEMA_VERSION))
    if version > SCHEMA_VERSION:
        raise DataError(
            f"{kind} schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}; upgrade this consumer"
        )
    if version < 1:
        raise DataError(f"{kind} schema_version must be >= 1, got {version}")
    return version


def _known_fields(cls, data: Mapping) -> dict:
    """The subset of ``data`` naming actual fields — unknown keys dropped."""
    names = {f.name for f in fields(cls)}
    return {key: value for key, value in data.items() if key in names}


@dataclass(frozen=True)
class AllocationRequest:
    """One allocation query against the dispatcher's fixed geometry.

    Attributes
    ----------
    request_id:
        Caller-chosen id, echoed in the response (monotone in generated
        traces so responses can be re-ordered deterministically).
    arrival_s:
        Arrival offset in seconds from the start of the trace — the
        open-loop schedule, not a wall-clock timestamp.
    importance:
        Per-task importance vector I_j >= 0 (the environment estimate
        this epoch). Length must match the serving geometry.
    solver:
        TATIM solver name (see ``repro.serve.dispatcher.SOLVERS``).
    environment:
        Optional cache-scope hint (e.g. the CRL cluster id); requests in
        different environments never share cache entries.
    trace_id:
        Optional caller-supplied trace id. The dispatcher mints one when
        absent and echoes it in the response; worker-side spans carry it
        so the whole request reads as one trace across processes.
    """

    request_id: int
    arrival_s: float
    importance: np.ndarray
    solver: str = "density_greedy"
    environment: str | None = None
    trace_id: str | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        importance = np.asarray(self.importance, dtype=float).ravel()
        if importance.size == 0:
            raise DataError("request importance must be non-empty")
        if np.any(importance < 0) or not np.all(np.isfinite(importance)):
            raise DataError("request importance must be finite and non-negative")
        object.__setattr__(self, "importance", importance)
        object.__setattr__(self, "request_id", int(self.request_id))
        object.__setattr__(self, "arrival_s", float(self.arrival_s))
        if self.arrival_s < 0:
            raise DataError(f"arrival_s must be >= 0, got {self.arrival_s}")

    def to_dict(self) -> dict:
        """JSON-ready plain-data form."""
        return {
            "schema_version": int(self.schema_version),
            "request_id": int(self.request_id),
            "arrival_s": float(self.arrival_s),
            "importance": [float(v) for v in self.importance],
            "solver": self.solver,
            "environment": self.environment,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AllocationRequest":
        """Parse a wire dict; unknown fields are ignored (forward compat)."""
        version = _check_version(data, "AllocationRequest")
        known = _known_fields(cls, data)
        known["schema_version"] = version
        try:
            return cls(**known)
        except TypeError as exc:
            raise DataError(f"AllocationRequest missing required field: {exc}") from exc


@dataclass(frozen=True)
class AllocationResponse:
    """The dispatcher's answer to one :class:`AllocationRequest`.

    ``status == "ok"`` carries the allocation; ``"rejected"`` is the
    admission-control shed (queue saturated) and carries an empty
    assignment. Latency fields are wall-clock measurements and therefore
    *not* part of the deterministic identity — compare responses across
    runs with :meth:`identity`. ``trace_id`` is likewise an
    observability-only echo (per-run unique), excluded from identity.
    """

    request_id: int
    status: str
    #: ``{task: processor}`` for allocated tasks (unlisted tasks stay local).
    assignment: dict[int, int] = field(default_factory=dict)
    #: Σ importance of allocated tasks under the *request's* importance.
    objective: float = 0.0
    solver: str = "density_greedy"
    cache_hit: bool = False
    queue_delay_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    trace_id: str | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise DataError(
                f"status must be one of {RESPONSE_STATUSES}, got {self.status!r}"
            )
        object.__setattr__(
            self,
            "assignment",
            {int(task): int(proc) for task, proc in dict(self.assignment).items()},
        )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    def identity(self) -> tuple:
        """The timing-free identity used by determinism checks.

        Two runs of the same trace must agree on this tuple for every
        response regardless of ``jobs``, pacing, or machine load.
        """
        return (
            int(self.request_id),
            self.status,
            tuple(sorted(self.assignment.items())),
            round(float(self.objective), 9),
        )

    def to_dict(self) -> dict:
        """JSON-ready plain-data form (assignment keys become strings)."""
        return {
            "schema_version": int(self.schema_version),
            "request_id": int(self.request_id),
            "status": self.status,
            "assignment": {str(task): int(proc) for task, proc in self.assignment.items()},
            "objective": float(self.objective),
            "solver": self.solver,
            "cache_hit": bool(self.cache_hit),
            "queue_delay_s": float(self.queue_delay_s),
            "service_s": float(self.service_s),
            "latency_s": float(self.latency_s),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AllocationResponse":
        """Parse a wire dict; unknown fields are ignored (forward compat)."""
        version = _check_version(data, "AllocationResponse")
        known = _known_fields(cls, data)
        known["schema_version"] = version
        if "assignment" in known:
            known["assignment"] = {
                int(task): int(proc) for task, proc in dict(known["assignment"]).items()
            }
        try:
            return cls(**known)
        except TypeError as exc:
            raise DataError(f"AllocationResponse missing required field: {exc}") from exc


#: Traffic-generator families ``ServeConfig.sampler`` may name.
SAMPLER_NAMES = ("poisson", "gauss_poisson")


@dataclass(frozen=True)
class ServeConfig:
    """How the serving plane is wired: traffic, queueing, and solving.

    Attributes
    ----------
    arrival_rate_hz:
        Mean open-loop request arrival rate.
    duration_s:
        Length of the generated trace (seconds of simulated traffic).
    sampler:
        Inter-arrival family — ``"poisson"`` (memoryless) or
        ``"gauss_poisson"`` (Gaussian-modulated rate: bursty).
    burst_sigma:
        Log-rate modulation std for ``gauss_poisson`` (ignored otherwise).
    queue_depth:
        Bound on the ingest queue; arrivals beyond it are shed with a
        429-style ``rejected`` response.
    batch_max:
        Largest batch one dispatch drains from the queue.
    jobs:
        Worker processes for cache-miss solves (1 = in-process serial).
    solver:
        Default TATIM solver for generated requests.
    cache:
        Whether the dispatcher memoizes solves in an AllocationCache.
    n_tasks / n_processors:
        Geometry of the recurring workload the service answers for.
    drift_sigma:
        Between-request importance jitter (sub-quantization by default,
        i.e. the warm-cache drift regime of Obs. 3).
    redraw_every:
        Every k-th request redraws importance wholesale (a cache miss /
        regime change); 0 disables redraws.
    seed:
        Master seed; arrival times, drift, and redraws all derive from
        it via :func:`repro.utils.rng.derive_seeds`.
    """

    arrival_rate_hz: float = 500.0
    duration_s: float = 2.0
    sampler: str = "poisson"
    burst_sigma: float = 0.4
    queue_depth: int = 512
    batch_max: int = 64
    jobs: int = 1
    solver: str = "density_greedy"
    cache: bool = True
    n_tasks: int = 24
    n_processors: int = 4
    drift_sigma: float = 1e-9
    redraw_every: int = 50
    seed: int = 0
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.arrival_rate_hz <= 0:
            raise ConfigurationError(
                f"arrival_rate_hz must be > 0, got {self.arrival_rate_hz}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration_s must be > 0, got {self.duration_s}")
        if self.sampler not in SAMPLER_NAMES:
            raise ConfigurationError(
                f"sampler must be one of {SAMPLER_NAMES}, got {self.sampler!r}"
            )
        if self.burst_sigma < 0:
            raise ConfigurationError(f"burst_sigma must be >= 0, got {self.burst_sigma}")
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.batch_max < 1:
            raise ConfigurationError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.n_tasks < 1 or self.n_processors < 1:
            raise ConfigurationError("need at least one task and one processor")
        if self.drift_sigma < 0:
            raise ConfigurationError(f"drift_sigma must be >= 0, got {self.drift_sigma}")
        if self.redraw_every < 0:
            raise ConfigurationError(
                f"redraw_every must be >= 0, got {self.redraw_every}"
            )

    def to_dict(self) -> dict:
        """JSON-ready plain-data form."""
        return {
            "schema_version": int(self.schema_version),
            "arrival_rate_hz": float(self.arrival_rate_hz),
            "duration_s": float(self.duration_s),
            "sampler": self.sampler,
            "burst_sigma": float(self.burst_sigma),
            "queue_depth": int(self.queue_depth),
            "batch_max": int(self.batch_max),
            "jobs": int(self.jobs),
            "solver": self.solver,
            "cache": bool(self.cache),
            "n_tasks": int(self.n_tasks),
            "n_processors": int(self.n_processors),
            "drift_sigma": float(self.drift_sigma),
            "redraw_every": int(self.redraw_every),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServeConfig":
        """Parse a wire dict; unknown fields are ignored (forward compat)."""
        version = _check_version(data, "ServeConfig")
        known = _known_fields(cls, data)
        known["schema_version"] = version
        return cls(**known)
