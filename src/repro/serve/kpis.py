"""Per-request KPIs for the serving plane: latency percentiles & throughput.

:class:`KPITracker` is the dispatcher's metrics collector. Every request
outcome feeds two sinks at once:

- the **ambient telemetry registry** (histograms/counters/gauges under
  ``repro_serve_*``), so the existing Prometheus/JSON exporters publish
  the serving KPIs with no extra wiring;
- an **exact in-memory latency reservoir**, because p95/p99 read off
  fixed histogram buckets are only as sharp as the bucket edges — the
  bench gate wants exact order statistics.

Instrument catalog (see ``docs/serving.md``):

- ``repro_serve_requests_total{status=ok|rejected}`` — terminal outcomes;
- ``repro_serve_rejections_total{reason}`` — admission-control sheds
  (the 429-style counter; ``reason="queue_full"`` today);
- ``repro_serve_latency_seconds`` — arrival→response wall latency;
- ``repro_serve_queue_delay_seconds`` / ``repro_serve_service_seconds``
  — the queueing vs solving split of that latency;
- ``repro_serve_cache_hits_total`` — requests answered from the
  allocation cache without a solve;
- ``repro_serve_queue_depth`` — ingest queue length (gauge, high-water
  tracked separately);
- ``repro_serve_throughput_rps`` — completed requests/sec over the run
  (gauge, written by :meth:`KPITracker.finish`);
- ``repro_serve_latency_reservoir_saturated`` — 1 once the exact
  reservoir hits :data:`MAX_SAMPLES`; past that point the reservoir
  percentiles describe only the **first** ``MAX_SAMPLES`` served
  requests (the registry histograms keep observing everything, so
  bucket-resolution percentiles stay run-wide).
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.telemetry import get_logger, get_registry, kv

#: Reservoir cap; beyond it new latencies only feed the histograms. At
#: serving rates this covers multi-minute runs with exact percentiles.
MAX_SAMPLES = 500_000

#: Sub-millisecond-heavy buckets — a warm cache answers in microseconds,
#: saturated queues in seconds; the default latency buckets start too high.
SERVE_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class KPITracker:
    """Collects per-request KPIs into the registry + an exact reservoir."""

    def __init__(self) -> None:
        self.ok = 0
        self.rejected = 0
        self.cache_hits = 0
        self.max_queue_depth = 0
        self._latencies: list[float] = []
        self._queue_delays: list[float] = []
        self._started = time.perf_counter()
        self._saturated = False
        self._exemplars: deque[tuple[float, str]] = deque(maxlen=64)
        self._max_latency_s = 0.0
        self._max_latency_trace_id: str | None = None

    # ------------------------------------------------------------------
    def record_ok(
        self,
        *,
        latency_s: float,
        queue_delay_s: float,
        service_s: float,
        cache_hit: bool,
        trace_id: str | None = None,
    ) -> None:
        """One served request."""
        registry = get_registry()
        self.ok += 1
        if cache_hit:
            self.cache_hits += 1
            registry.counter(
                "repro_serve_cache_hits_total",
                help="Requests answered from the allocation cache",
            ).inc()
        registry.counter(
            "repro_serve_requests_total",
            help="Serving-plane requests by terminal status",
            status="ok",
        ).inc()
        registry.histogram(
            "repro_serve_latency_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            help="Arrival-to-response latency",
        ).observe(latency_s)
        registry.histogram(
            "repro_serve_queue_delay_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            help="Time spent queued before dispatch",
        ).observe(queue_delay_s)
        registry.histogram(
            "repro_serve_service_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            help="Dispatch-to-response service time",
        ).observe(service_s)
        if len(self._latencies) < MAX_SAMPLES:
            self._latencies.append(float(latency_s))
            self._queue_delays.append(float(queue_delay_s))
        elif not self._saturated:
            self._saturated = True
            registry.gauge(
                "repro_serve_latency_reservoir_saturated",
                help="1 once the exact latency reservoir capped; reservoir "
                "percentiles then cover only the first MAX_SAMPLES requests",
            ).set(1)
            get_logger("serve.kpis").warning(
                kv(
                    event="latency_reservoir_saturated",
                    cap=MAX_SAMPLES,
                    note="exact percentiles now describe a truncated sample",
                )
            )
        if trace_id is not None:
            self._exemplars.append((float(latency_s), trace_id))
            if float(latency_s) >= self._max_latency_s:
                self._max_latency_s = float(latency_s)
                self._max_latency_trace_id = trace_id

    def record_rejected(self, *, reason: str = "queue_full") -> None:
        """One shed request (admission control)."""
        registry = get_registry()
        self.rejected += 1
        registry.counter(
            "repro_serve_requests_total",
            help="Serving-plane requests by terminal status",
            status="rejected",
        ).inc()
        registry.counter(
            "repro_serve_rejections_total",
            help="Requests shed by admission control (429-style)",
            reason=reason,
        ).inc()

    def observe_queue_depth(self, depth: int) -> None:
        """Current ingest queue length (also tracks the high-water mark)."""
        depth = int(depth)
        self.max_queue_depth = max(self.max_queue_depth, depth)
        get_registry().gauge(
            "repro_serve_queue_depth", help="Ingest queue length"
        ).set(depth)

    def finish(self, elapsed_s: float) -> None:
        """Publish end-of-run gauges (throughput over the drain window)."""
        registry = get_registry()
        registry.gauge(
            "repro_serve_throughput_rps",
            help="Completed requests per second over the run",
        ).set(self.throughput_rps(elapsed_s))
        registry.gauge(
            "repro_serve_latency_reservoir_saturated",
            help="1 once the exact latency reservoir capped; reservoir "
            "percentiles then cover only the first MAX_SAMPLES requests",
        ).set(int(self._saturated))

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return self.ok + self.rejected

    def throughput_rps(self, elapsed_s: float) -> float:
        """Served (non-rejected) requests per second of wall time."""
        return self.ok / elapsed_s if elapsed_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Exact latency order statistic (seconds); 0.0 with no samples."""
        if not self._latencies:
            return 0.0
        return float(np.percentile(np.asarray(self._latencies), q))

    def summary(self, elapsed_s: float) -> dict:
        """The KPI dict reports/benches persist (times in seconds)."""
        latencies = np.asarray(self._latencies) if self._latencies else np.zeros(1)
        queue_delays = (
            np.asarray(self._queue_delays) if self._queue_delays else np.zeros(1)
        )
        return {
            "requests": self.total,
            "ok": self.ok,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "elapsed_s": float(elapsed_s),
            "throughput_rps": self.throughput_rps(elapsed_s),
            "latency_p50_s": float(np.percentile(latencies, 50)),
            "latency_p95_s": float(np.percentile(latencies, 95)),
            "latency_p99_s": float(np.percentile(latencies, 99)),
            "latency_mean_s": float(latencies.mean()),
            "latency_max_s": float(latencies.max()),
            "queue_delay_p95_s": float(np.percentile(queue_delays, 95)),
            "max_queue_depth": int(self.max_queue_depth),
            "reservoir_saturated": bool(self._saturated),
            "latency_max_trace_id": self._max_latency_trace_id,
        }

    def snapshot_summary(self) -> dict:
        """Mid-run KPI summary for the live ``/kpis`` endpoint.

        Uses wall time since construction as the elapsed window — the
        run is still in flight, so the final drain-window elapsed is not
        known yet.
        """
        return self.summary(time.perf_counter() - self._started)

    def exemplars(self) -> list[dict]:
        """Recent ``(latency_s, trace_id)`` exemplars, newest last.

        A bounded ring of the latest served requests that carried a
        trace id — enough to jump from a latency spike on ``/kpis`` to
        the matching spans in the run trace.
        """
        return [
            {"latency_s": latency, "trace_id": trace_id}
            for latency, trace_id in self._exemplars
        ]


def kpi_table(summary: dict) -> str:
    """Render a KPI summary as the repo's standard two-column table."""
    from repro.utils.reporting import format_table

    rows = []
    for key in (
        "requests",
        "ok",
        "rejected",
        "cache_hits",
        "elapsed_s",
        "throughput_rps",
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "latency_mean_s",
        "latency_max_s",
        "queue_delay_p95_s",
        "max_queue_depth",
        "reservoir_saturated",
        "latency_max_trace_id",
    ):
        if key in summary and summary[key] is not None:
            rows.append([key, summary[key]])
    return format_table(["kpi", "value"], rows, title="serve KPIs")
