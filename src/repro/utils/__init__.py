"""Shared utilities: seeded randomness, validation, statistics, reporting."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_positive,
    check_probability,
    check_same_length,
)
from repro.utils.stats import (
    contribution_curve,
    gini_coefficient,
    rolling_mean,
    summarize,
    top_share,
)
from repro.utils.reporting import format_table, speedup_table
from repro.utils.ascii_charts import bar_chart, line_chart

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_array",
    "check_fitted",
    "check_positive",
    "check_probability",
    "check_same_length",
    "contribution_curve",
    "gini_coefficient",
    "rolling_mean",
    "summarize",
    "top_share",
    "format_table",
    "speedup_table",
    "bar_chart",
    "line_chart",
]
