"""Model persistence: save and load trained components.

The paper's footnote notes that "though the training phase may be long, it
merely needs to be conducted once in advance" — which only pays off if the
trained artifacts survive a controller restart. This module persists the
two trained processes:

- :func:`save_mlp` / :func:`load_mlp` — the Q-networks (architecture +
  parameters) as a single ``.npz`` file;
- :func:`save_environment_store` / :func:`load_environment_store` — the
  CRL historical-environment memory.

Only numpy's own serialization is used; no pickle, so the artifacts are
safe to load from untrusted storage.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DataError
from repro.ml.neural import MLP, Adam
from repro.rl.crl import EnvironmentStore


def save_mlp(network: MLP, path: str | Path) -> Path:
    """Persist an MLP's architecture and parameters to ``path`` (.npz)."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "layer_sizes": np.asarray(network.layer_sizes, dtype=int),
        "activation": np.asarray([network.activation]),
    }
    for index, weight in enumerate(network.weights):
        arrays[f"weight_{index}"] = weight
    for index, bias in enumerate(network.biases):
        arrays[f"bias_{index}"] = bias
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_mlp(path: str | Path, *, learning_rate: float = 1e-3) -> MLP:
    """Reconstruct an MLP saved by :func:`save_mlp`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "layer_sizes" not in data:
            raise DataError(f"{path} is not a saved MLP (missing layer_sizes)")
        layer_sizes = tuple(int(s) for s in data["layer_sizes"])
        activation = str(data["activation"][0])
        network = MLP(layer_sizes, activation=activation, optimizer=Adam(learning_rate))
        n_layers = len(layer_sizes) - 1
        parameters = [data[f"weight_{i}"] for i in range(n_layers)]
        parameters += [data[f"bias_{i}"] for i in range(n_layers)]
        network.set_parameters(parameters)
    return network


def save_environment_store(store: EnvironmentStore, path: str | Path) -> Path:
    """Persist an environment store's (Z, I) history to ``path`` (.npz)."""
    if len(store) == 0:
        raise DataError("refusing to save an empty environment store")
    path = Path(path)
    np.savez(
        path,
        sensing=store.sensing_matrix,
        importance=store.importance_matrix,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_environment_store(path: str | Path) -> EnvironmentStore:
    """Reconstruct a store saved by :func:`save_environment_store`."""
    store = EnvironmentStore()
    with np.load(Path(path), allow_pickle=False) as data:
        if "sensing" not in data or "importance" not in data:
            raise DataError(f"{path} is not a saved environment store")
        sensing = data["sensing"]
        importance = data["importance"]
        if sensing.shape[0] != importance.shape[0]:
            raise DataError("corrupt store: sensing/importance row mismatch")
        for row in range(sensing.shape[0]):
            store.add(sensing[row], importance[row])
    return store
