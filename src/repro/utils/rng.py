"""Seeded random-number helpers.

All stochastic components in the library accept a ``seed`` argument that can
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`. :func:`as_rng` normalizes the three forms
so that every module handles randomness identically and experiments are
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged, so callers can
    thread a single generator through a pipeline and keep a global ordering
    of random draws.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Children are created via :meth:`numpy.random.Generator.spawn`, which
    guarantees statistical independence; this is the sanctioned way to give
    each parallel component (e.g., each edge node, each ensemble member) its
    own stream without correlated draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(as_rng(seed).spawn(count))


def derive_seeds(seed: int | np.random.Generator | None, count: int) -> list[int]:
    """``count`` deterministic integer seeds drawn from one source.

    Unlike :func:`spawn_rngs` this yields plain ints, which survive
    pickling into worker processes unchanged — the parallel trainer's
    contract that ``jobs=1`` and ``jobs=N`` runs see identical seeds
    depends on deriving them up front in the parent, in a fixed order,
    rather than drawing lazily per worker.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = as_rng(seed)
    return [int(rng.integers(0, 2**31 - 1)) for _ in range(count)]
