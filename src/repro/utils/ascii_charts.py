"""Terminal-native charts: the figures, as text.

The benchmark harness prints the paper figures' data as tables; these
helpers add the visual layer without a plotting dependency — horizontal
bar charts for categorical comparisons (Fig. 3-style) and multi-series
line charts on a character grid for the sweep figures (Figs. 9-11-style).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, DataError

#: Glyphs for multi-series line charts, assigned in series order.
SERIES_GLYPHS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise DataError(f"{len(labels)} labels for {len(values)} values")
    if not labels:
        raise DataError("bar_chart needs at least one bar")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    numeric = np.asarray(values, dtype=float)
    if np.any(numeric < 0):
        raise DataError("bar_chart requires non-negative values")
    top = float(numeric.max()) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, numeric):
        bar = "█" * max(1 if value > 0 else 0, int(round(width * value / top)))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Multi-series line chart on a character grid.

    Each series gets a glyph from :data:`SERIES_GLYPHS`; points are mapped
    onto a ``height`` × ``width`` grid spanning the data ranges, and a
    legend line follows the plot.
    """
    if not series:
        raise DataError("line_chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("width must be >= 10 and height >= 4")
    x = np.asarray(x_values, dtype=float)
    if x.size < 2:
        raise DataError("line_chart needs at least two x values")
    for name, values in series.items():
        if len(values) != x.size:
            raise DataError(f"series {name!r} has {len(values)} points for {x.size} x values")
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for xi, yi in zip(x, np.asarray(values, dtype=float)):
            column = int(round((xi - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y_high - yi) / (y_high - y_low) * (height - 1)))
            grid[row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(f"{y_high:.3g}"), len(f"{y_low:.3g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{y_high:.3g}".rjust(axis_width)
        elif row_index == height - 1:
            prefix = f"{y_low:.3g}".rjust(axis_width)
        else:
            prefix = " " * axis_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    lines.append(
        " " * axis_width + f"  {x_low:.3g}".ljust(width // 2) + f"{x_high:.3g}".rjust(width // 2)
    )
    legend = "  ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{y_label}  [{legend}]" if y_label else f"[{legend}]")
    return "\n".join(lines)
