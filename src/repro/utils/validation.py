"""Input validation helpers shared across the library.

These raise :class:`repro.errors.DataError` /
:class:`repro.errors.ConfigurationError` with actionable messages instead of
letting numpy broadcast mistakes silently.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError, DataError, NotFittedError


def check_array(
    values: Any,
    *,
    name: str = "array",
    ndim: int | None = None,
    allow_empty: bool = False,
    dtype: type | None = float,
) -> np.ndarray:
    """Coerce ``values`` to an ndarray and validate shape and finiteness.

    Parameters
    ----------
    values:
        Anything :func:`numpy.asarray` accepts.
    name:
        Identifier used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    allow_empty:
        Whether a zero-element array is acceptable.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    """
    array = np.asarray(values, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise DataError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise DataError(f"{name} must not be empty")
    if np.issubdtype(array.dtype, np.floating) and not np.all(np.isfinite(array)):
        raise DataError(f"{name} contains NaN or infinite values")
    return array


def check_same_length(first: Sequence, second: Sequence, *, names: tuple[str, str] = ("X", "y")) -> None:
    """Raise :class:`DataError` unless the two sequences have equal length."""
    if len(first) != len(second):
        raise DataError(
            f"{names[0]} and {names[1]} must have the same length, got {len(first)} and {len(second)}"
        )


def check_positive(value: float, *, name: str, strict: bool = True) -> float:
    """Validate that a scalar parameter is positive (or non-negative)."""
    numeric = float(value)
    if strict and numeric <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and numeric < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return numeric


def check_probability(value: float, *, name: str) -> float:
    """Validate that a scalar lies in the closed interval [0, 1]."""
    numeric = float(value)
    if not 0.0 <= numeric <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return numeric


def check_fitted(model: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``model`` carries ``attribute``."""
    if getattr(model, attribute, None) is None:
        raise NotFittedError(
            f"{type(model).__name__} is not fitted yet; call fit() before predict()"
        )
