"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output aligned and copy-pasteable into
EXPERIMENTS.md without pulling in a formatting dependency. Each render
also emits a debug-level structured event through ``repro.telemetry.log``
(silent unless ``configure_logging("debug")`` / ``--log-level debug``),
so runs can be audited without changing any printed text.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.telemetry.log import get_logger, kv

_log = get_logger("utils.reporting")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None) -> str:
    """Render a monospaced table with one header row.

    Floats are shown with four significant digits; everything else uses
    ``str``. Column widths adapt to the longest cell.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    _log.debug(
        kv(event="table_rendered", title=title or "-", columns=len(headers), rows=len(rendered))
    )
    return "\n".join(lines)


def speedup_table(
    sweep_name: str,
    sweep_values: Sequence[object],
    times: Mapping[str, Sequence[float]],
    *,
    reference: str = "DCTA",
) -> str:
    """Render per-method processing times plus speedups relative to ``reference``.

    This is the shape of the paper's Figs. 9-11: one row per sweep point,
    one column per allocation method, and trailing columns with the
    ``method/reference`` processing-time ratios.
    """
    methods = list(times)
    if reference not in methods:
        raise ValueError(f"reference {reference!r} missing from times ({methods})")
    headers = [sweep_name] + [f"{m} (s)" for m in methods] + [
        f"{m}/{reference}" for m in methods if m != reference
    ]
    rows = []
    for i, value in enumerate(sweep_values):
        base = times[reference][i]
        row: list[object] = [value] + [times[m][i] for m in methods]
        row += [times[m][i] / base if base > 0 else float("inf") for m in methods if m != reference]
        rows.append(row)
    _log.debug(
        kv(
            event="speedup_table",
            sweep=sweep_name,
            points=len(rows),
            methods=",".join(methods),
            reference=reference,
        )
    )
    return format_table(headers, rows)
