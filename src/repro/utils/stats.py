"""Statistics helpers used by the importance analysis and reporting layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of a one-dimensional sample."""
    array = check_array(values, name="values", ndim=1)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def contribution_curve(values) -> np.ndarray:
    """Cumulative share of the total contributed by values sorted descending.

    ``contribution_curve(I)[k-1]`` is the fraction of total importance carried
    by the ``k`` most important tasks — the quantity behind the paper's
    Fig. 2 long-tail observation ("12.72% of tasks contribute over 80%").
    """
    array = check_array(values, name="values", ndim=1)
    if np.any(array < 0):
        raise ValueError("contribution_curve requires non-negative values")
    total = array.sum()
    if total == 0:
        return np.zeros(array.size)
    ordered = np.sort(array)[::-1]
    return np.cumsum(ordered) / total


def top_share(values, fraction: float) -> float:
    """Share of the total carried by the top ``fraction`` of values.

    ``top_share(I, 0.1272)`` reproduces the paper's headline statistic: the
    contribution of the most important ~12.72% of tasks.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    curve = contribution_curve(values)
    k = max(1, int(round(fraction * curve.size)))
    return float(curve[k - 1])


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = long tail)."""
    array = check_array(values, name="values", ndim=1)
    if np.any(array < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    ordered = np.sort(array)
    n = array.size
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * ordered)) / (n * total) - (n + 1.0) / n)


def rolling_mean(values, window: int) -> np.ndarray:
    """Simple trailing rolling mean with a warm-up that averages what exists."""
    array = check_array(values, name="values", ndim=1)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    out = np.empty_like(array, dtype=float)
    cumulative = np.cumsum(array)
    for i in range(array.size):
        start = max(0, i - window + 1)
        total = cumulative[i] - (cumulative[start - 1] if start > 0 else 0.0)
        out[i] = total / (i - start + 1)
    return out
