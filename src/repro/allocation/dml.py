"""Distributed Machine Learning (DML) baseline [34].

DML systems distribute every training task across the available computing
nodes, balancing load by device capability but treating all tasks as
equally important. We model it with the classic LPT (longest processing
time first) makespan heuristic: tasks sorted by compute demand, each placed
on the node that finishes it earliest. This is a *strong* importance-blind
baseline — near-optimal makespan — so any gap to CRL/DCTA is attributable
to importance awareness, not to sloppy packing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import DataError


class DMLAllocator(Allocator):
    """LPT load balancing over all tasks, importance-blind."""

    name = "DML"

    #: Modeled controller cost: sorting plus one pass of earliest-finish
    #: placement.
    ALLOCATION_TIME = 5e-3

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if not tasks or not nodes:
            raise DataError("need at least one task and one node")
        order = np.argsort([-task.input_mb for task in tasks], kind="stable")
        finish = {node.node_id: 0.0 for node in nodes}
        assignments: list[tuple[int, int]] = []
        for index in order:
            task = tasks[index]
            best = min(
                nodes,
                key=lambda node: finish[node.node_id] + node.execution_time(task.input_mb),
            )
            finish[best.node_id] += best.execution_time(task.input_mb)
            assignments.append((task.task_id, best.node_id))
        return ExecutionPlan(
            assignments=tuple(assignments),
            allocation_time=self.ALLOCATION_TIME,
            label=self.name,
        )
