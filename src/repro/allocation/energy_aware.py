"""Energy-aware cooperative allocation.

The related work the paper positions against ([11]-[13]) optimizes edge
*energy* under delay constraints. This allocator extends DCTA to that
objective: the dispatch order still follows the cooperative importance
scores (the decision gate must close fast), but placement minimizes the
marginal *energy* of each task — compute joules on the candidate device —
subject to a makespan guard that keeps the slowest device from dragging
out the decision.

Marginal energy of task j on node p:

    E(j, p) = (active_w(p) − idle_w(p)) · exec_time(j, p)

Caveat this model makes measurable (see the energy tests/bench): with
always-powered devices, *total* energy carries an idle floor proportional
to processing time, so a placement that stretches PT to shave compute
joules loses overall — the classic race-to-idle effect. EnergyAwareDCTA
therefore targets the *compute* component and relies on the makespan
guard to keep PT (and hence the idle floor) bounded.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext
from repro.allocation.dcta import DCTAAllocator
from repro.edgesim.energy import node_power
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError


class EnergyAwareDCTA(Allocator):
    """DCTA scores with minimum-marginal-energy placement.

    Parameters
    ----------
    dcta:
        The trained cooperative allocator providing per-task scores.
    makespan_slack:
        A candidate node is rejected when its queue would exceed
        ``makespan_slack`` × the current shortest queue (keeps the energy
        chase from serializing everything onto one frugal device).
    """

    name = "DCTA-E"

    def __init__(self, dcta: DCTAAllocator, *, makespan_slack: float = 3.0) -> None:
        if makespan_slack < 1.0:
            raise ConfigurationError(f"makespan_slack must be >= 1, got {makespan_slack}")
        self.dcta = dcta
        self.makespan_slack = float(makespan_slack)

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if context is None or context.sensing is None or context.features is None:
            raise ConfigurationError(f"{self.name} requires sensing and features context")
        scores = self.dcta.combined_scores(context.sensing, context.features)
        if scores.size != len(tasks):
            raise DataError(f"scored {scores.size} tasks for a {len(tasks)}-task workload")
        order = np.argsort(-scores, kind="stable")
        finish = {node.node_id: 0.0 for node in nodes}
        memory_left = {node.node_id: node.memory_mb for node in nodes}
        marginal_power = {
            node.node_id: node_power(node)[1] - node_power(node)[0] for node in nodes
        }
        assignments: list[tuple[int, int]] = []
        for index in order:
            task = tasks[index]
            # Earliest this task could finish anywhere (the latency anchor
            # the slack multiplies).
            earliest = min(
                finish[node.node_id] + node.execution_time(task.input_mb)
                for node in nodes
            )
            best_node = None
            best_energy = float("inf")
            for node in nodes:
                if memory_left[node.node_id] < task.memory_mb:
                    continue
                exec_time = node.execution_time(task.input_mb)
                candidate_finish = finish[node.node_id] + exec_time
                if candidate_finish > self.makespan_slack * earliest:
                    continue
                energy = marginal_power[node.node_id] * exec_time
                if energy < best_energy:
                    best_energy = energy
                    best_node = node
            if best_node is None:
                # Memory-blocked everywhere: fall back to the fastest node.
                best_node = min(nodes, key=lambda n: n.compute_s_per_bit)
            finish[best_node.node_id] += best_node.execution_time(task.input_mb)
            memory_left[best_node.node_id] = max(
                0.0, memory_left[best_node.node_id] - task.memory_mb
            )
            assignments.append((task.task_id, best_node.node_id))
        return ExecutionPlan(
            assignments=tuple(assignments),
            allocation_time=5e-3,
            label=self.name,
        )
