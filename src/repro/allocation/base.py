"""Allocator interface and shared placement helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.tatim.problem import TATIMProblem


@dataclass(frozen=True)
class EpochContext:
    """Decision-epoch context handed to allocators.

    Attributes
    ----------
    sensing:
        The sensing vector Z (weather/load summary) used by CRL's
        environment definition.
    features:
        (n_tasks, n_features) Table I feature matrix for the local process,
        or None when the policy does not use it.
    day:
        Epoch index (for logging).
    """

    sensing: np.ndarray | None = None
    features: np.ndarray | None = None
    day: int = 0


class Allocator(ABC):
    """A policy mapping an epoch's tasks onto edge nodes.

    Subclasses implement :meth:`plan`; the returned
    :class:`~repro.edgesim.simulator.ExecutionPlan` encodes both placement
    and dispatch priority. ``allocation_time`` on the plan is the modeled
    (or measured) controller-side cost of computing it, which the simulator
    adds to the processing time.
    """

    #: Display name used in benchmark tables.
    name: str = "allocator"

    @abstractmethod
    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        """Compute the epoch's execution plan."""


def tatim_from_workload(
    tasks: Sequence[SimTask],
    nodes: Sequence[EdgeNode],
    *,
    importance: np.ndarray | None = None,
    time_limit_s: float | None = None,
) -> TATIMProblem:
    """Build the TATIM instance for an epoch's workload on a node set.

    Task execution time t_j uses the mean compute rate across nodes (TATIM
    models a per-task time, not a per-pair time); the resource dimension is
    memory. When ``time_limit_s`` is omitted, T defaults to an equal share
    of the mean total execution time across processors — tight enough that
    selection is forced, which is the regime the paper studies.
    """
    if not tasks or not nodes:
        raise DataError("need at least one task and one node")
    mean_rate = float(np.mean([node.compute_s_per_bit for node in nodes]))
    times = np.array([task.input_mb * 1e6 * mean_rate for task in tasks])
    resources = np.array([task.memory_mb for task in tasks])
    if importance is None:
        importance = np.array([task.true_importance for task in tasks])
    if time_limit_s is None:
        time_limit_s = float(times.sum()) / (2.0 * len(nodes))
        time_limit_s = max(time_limit_s, float(times.min()) * 1.01)
    capacities = np.array([node.memory_mb for node in nodes])
    return TATIMProblem(
        importance=np.asarray(importance, dtype=float),
        times=times,
        resources=resources,
        time_limit=float(time_limit_s),
        capacities=capacities,
    )


def place_by_scores(
    tasks: Sequence[SimTask],
    nodes: Sequence[EdgeNode],
    scores: np.ndarray,
    *,
    time_limit_s: float | None = None,
    allocation_time: float = 0.0,
    label: str = "scored",
) -> ExecutionPlan:
    """Score-ordered makespan-aware placement shared by the data-driven policies.

    Tasks are dispatched in descending score order. Each task goes to the
    node where it would *finish earliest* (current queue length plus its
    execution time there) subject to the node's memory capacity — which
    naturally routes important, heavy tasks to powerful devices. A
    per-node time budget (``time_limit_s``) bounds the *selected* prefix;
    once budgets are exhausted, remaining tasks are appended as a fallback
    tail in the same score order (they run only if the decision gate has
    not yet closed).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    if scores.size != len(tasks):
        raise DataError(f"scores has {scores.size} entries for {len(tasks)} tasks")
    if not nodes:
        raise ConfigurationError("need at least one node")
    order = np.argsort(-scores, kind="stable")
    node_list = list(nodes)
    finish = {node.node_id: 0.0 for node in node_list}
    memory_left = {node.node_id: node.memory_mb for node in node_list}
    budget = time_limit_s if time_limit_s is not None else float("inf")
    assignments: list[tuple[int, int]] = []
    overflow: list[int] = []
    for index in order:
        task = tasks[index]
        best_node = None
        best_finish = float("inf")
        for node in node_list:
            if memory_left[node.node_id] < task.memory_mb:
                continue
            candidate = finish[node.node_id] + node.execution_time(task.input_mb)
            if candidate <= budget + 1e-9 and candidate < best_finish:
                best_finish = candidate
                best_node = node
        if best_node is None:
            overflow.append(int(index))
            continue
        finish[best_node.node_id] = best_finish
        memory_left[best_node.node_id] -= task.memory_mb
        assignments.append((task.task_id, best_node.node_id))
    # Fallback tail: overflow tasks round-robin over nodes fastest-first,
    # ignoring the (already spent) time budget but not memory physics —
    # memory is freed as tasks complete in reality, so the tail reuses it.
    fast_order = sorted(node_list, key=lambda n: n.compute_s_per_bit)
    for position, index in enumerate(overflow):
        node = fast_order[position % len(fast_order)]
        assignments.append((tasks[index].task_id, node.node_id))
    return ExecutionPlan(
        assignments=tuple(assignments),
        allocation_time=allocation_time,
        label=label,
    )
