"""Dependency-aware task allocation — the paper's stated future work.

Section VII: "those cases ... under multi-task settings but with the
sequential dependency between tasks, are beyond the scope of this paper.
It would be an interesting future work to extend our approach to those
scenarios." This module provides that extension:

- :class:`TaskDependencyGraph` — a DAG of precedence constraints over a
  workload (networkx under the hood), with cycle detection, topological
  generations, and *importance back-propagation*: a prerequisite inherits
  the maximum importance of its dependents, since skipping it forfeits
  them.
- :func:`dependency_aware_plan` — wraps any score vector into a plan whose
  dispatch order is a topological sort tie-broken by effective importance,
  so the simulator (with ``dependencies=``) never stalls on an unmet
  precedence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.allocation.base import place_by_scores
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError


class TaskDependencyGraph:
    """Precedence DAG over task ids: an edge u → v means "u before v"."""

    def __init__(self, task_ids: Iterable[int], edges: Iterable[tuple[int, int]] = ()) -> None:
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(int(t) for t in task_ids)
        for before, after in edges:
            self.add_dependency(int(before), int(after))

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def n_dependencies(self) -> int:
        return self._graph.number_of_edges()

    def add_dependency(self, before: int, after: int) -> None:
        """Require ``before`` to complete prior to ``after`` starting."""
        if before not in self._graph or after not in self._graph:
            raise DataError(f"unknown task in dependency ({before} -> {after})")
        if before == after:
            raise ConfigurationError(f"task {before} cannot depend on itself")
        self._graph.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(before, after)
            raise ConfigurationError(
                f"dependency {before} -> {after} would create a cycle"
            )

    def prerequisites_of(self, task_id: int) -> set[int]:
        """Direct prerequisites of a task."""
        return set(self._graph.predecessors(task_id))

    def dependents_of(self, task_id: int) -> set[int]:
        """Direct dependents of a task."""
        return set(self._graph.successors(task_id))

    def ancestors_of(self, task_id: int) -> set[int]:
        """All transitive prerequisites."""
        return set(nx.ancestors(self._graph, task_id))

    def generations(self) -> list[list[int]]:
        """Topological generations (tasks in one generation are independent)."""
        return [sorted(generation) for generation in nx.topological_generations(self._graph)]

    # ------------------------------------------------------------------
    def effective_importance(self, importance: np.ndarray) -> np.ndarray:
        """Back-propagate importance through prerequisites.

        A task's effective importance is the maximum of its own importance
        and the effective importance of any dependent: dropping a
        prerequisite forfeits everything downstream of it, so for
        allocation purposes it is at least as valuable as its most valuable
        descendant.
        """
        importance = np.asarray(importance, dtype=float).ravel()
        if importance.size != self.n_tasks:
            raise DataError(
                f"importance has {importance.size} entries for {self.n_tasks} tasks"
            )
        index = {task: i for i, task in enumerate(sorted(self._graph.nodes))}
        effective = importance.copy()
        for task in reversed(list(nx.topological_sort(self._graph))):
            for prerequisite in self._graph.predecessors(task):
                i, j = index[prerequisite], index[task]
                effective[i] = max(effective[i], effective[j])
        return effective

    def order_respecting(self, priorities: np.ndarray) -> list[int]:
        """Topological order choosing the highest-priority ready task first."""
        priorities = np.asarray(priorities, dtype=float).ravel()
        if priorities.size != self.n_tasks:
            raise DataError(
                f"priorities has {priorities.size} entries for {self.n_tasks} tasks"
            )
        index = {task: i for i, task in enumerate(sorted(self._graph.nodes))}
        in_degree = {task: self._graph.in_degree(task) for task in self._graph.nodes}
        ready = [task for task, degree in in_degree.items() if degree == 0]
        order: list[int] = []
        while ready:
            ready.sort(key=lambda task: -priorities[index[task]])
            task = ready.pop(0)
            order.append(task)
            for dependent in self._graph.successors(task):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != self.n_tasks:
            raise ConfigurationError("dependency graph contains a cycle")
        return order

    def violations(self, completion_order: Sequence[int]) -> list[tuple[int, int]]:
        """(prerequisite, dependent) pairs violated by a completion order."""
        position = {task: i for i, task in enumerate(completion_order)}
        out = []
        for before, after in self._graph.edges:
            if before in position and after in position and position[before] > position[after]:
                out.append((before, after))
            if after in position and before not in position:
                out.append((before, after))
        return out


def dependency_aware_plan(
    tasks: Sequence[SimTask],
    nodes: Sequence[EdgeNode],
    scores: np.ndarray,
    dependencies: TaskDependencyGraph,
    *,
    time_limit_s: float | None = None,
    allocation_time: float = 0.0,
    label: str = "dep-aware",
) -> ExecutionPlan:
    """Score-ordered placement whose dispatch order respects the DAG.

    Scores are first back-propagated (:meth:`effective_importance`), then
    placement runs as in :func:`place_by_scores`, and finally the dispatch
    sequence is reordered topologically with the effective score as the
    tie-break — so no task ships before its prerequisites.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    effective = dependencies.effective_importance(scores)
    base = place_by_scores(
        tasks,
        nodes,
        effective,
        time_limit_s=time_limit_s,
        allocation_time=allocation_time,
        label=label,
    )
    node_of = dict(base.assignments)
    order = dependencies.order_respecting(effective)
    assignments = tuple((task_id, node_of[task_id]) for task_id in order if task_id in node_of)
    return ExecutionPlan(
        assignments=assignments, allocation_time=allocation_time, label=label
    )
