"""Task-allocation policies over the edge simulator.

The four contenders of the paper's Section V-C:

- :class:`RandomMapping` (RM) — tasks land on uniformly random devices.
- :class:`DMLAllocator` (DML) — importance-blind distributed-ML load
  balancing across all devices.
- :class:`CRLAllocator` — the clustered-RL general process alone.
- :class:`DCTAAllocator` — the full cooperative model (Eq. 6): CRL scores
  adjusted by the local SVM process trained on Table I features.

Plus an :class:`OracleAllocator` (true importance, for upper bounds and
Fig. 3's "accurate task allocation") and the :class:`LocalProcess` itself.
"""

from repro.allocation.base import (
    Allocator,
    EpochContext,
    place_by_scores,
    tatim_from_workload,
)
from repro.allocation.random_mapping import RandomMapping
from repro.allocation.dml import DMLAllocator
from repro.allocation.oracle import OracleAllocator
from repro.allocation.local import LocalProcess, compare_local_models
from repro.allocation.crl_policy import CRLAllocator
from repro.allocation.dcta import DCTAAllocator
from repro.allocation.dependencies import TaskDependencyGraph, dependency_aware_plan
from repro.allocation.energy_aware import EnergyAwareDCTA
from repro.allocation.classical import ClassicalAllocator

__all__ = [
    "TaskDependencyGraph",
    "dependency_aware_plan",
    "EnergyAwareDCTA",
    "ClassicalAllocator",
    "Allocator",
    "EpochContext",
    "tatim_from_workload",
    "place_by_scores",
    "RandomMapping",
    "DMLAllocator",
    "OracleAllocator",
    "LocalProcess",
    "compare_local_models",
    "CRLAllocator",
    "DCTAAllocator",
]
