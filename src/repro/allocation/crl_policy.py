"""CRL-based allocator: the general process F1 as a standalone policy.

Wraps :class:`repro.rl.crl.CRLModel`: environment definition via kNN over
the sensing vector, allocation via the per-cluster DQN's greedy rollout,
and a score-ordered execution plan. Its weakness — the reason the paper
adds the local process — is that the kNN-defined environment can be stale
or unrepresentative, so the estimated importance (and hence selection) can
be off.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext, place_by_scores
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.rl.crl import CRLModel


class CRLAllocator(Allocator):
    """Score-ordered placement using CRL-estimated importance.

    Parameters
    ----------
    model:
        A fitted :class:`CRLModel` whose geometry matches the epoch
        workloads (same task/processor counts).
    use_rl_selection:
        If True (default), only tasks the DQN rollout selected receive
        their estimated-importance score; the rest score zero and join the
        fallback tail. If False, the policy ranks purely by the estimated
        importance (the "environment definition only" ablation).
    """

    name = "CRL"

    def __init__(self, model: CRLModel, *, use_rl_selection: bool = True) -> None:
        self.model = model
        self.use_rl_selection = bool(use_rl_selection)

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if context is None or context.sensing is None:
            raise ConfigurationError(f"{self.name} requires context.sensing (the Z vector)")
        if len(tasks) != self.model.geometry.n_tasks:
            raise DataError(
                f"workload has {len(tasks)} tasks but CRL geometry expects "
                f"{self.model.geometry.n_tasks}"
            )
        started = time.perf_counter()
        if self.use_rl_selection:
            scores = self.model.selection_scores(context.sensing)
            estimates = self.model.estimate_importance(context.sensing)
            # Tie-break the zero-scored tail by estimated importance so the
            # fallback still runs plausibly useful tasks first.
            scores = scores + 1e-6 * estimates / (float(estimates.max()) or 1.0)
        else:
            scores = self.model.estimate_importance(context.sensing)
        allocation_time = time.perf_counter() - started
        return place_by_scores(
            tasks,
            nodes,
            np.asarray(scores, dtype=float),
            time_limit_s=self.model.geometry.time_limit,
            allocation_time=allocation_time,
            label=self.name,
        )

    def plan_batch(
        self,
        workloads: Sequence[Sequence[SimTask]],
        nodes: Sequence[EdgeNode],
        contexts: Sequence[EpochContext],
    ) -> list[ExecutionPlan]:
        """Plan many epochs through one batched scoring pass.

        ``workloads[i]`` is planned against ``contexts[i]``. All epochs'
        selection scores come from a single
        :meth:`CRLModel.selection_scores_batch` call, so the underlying
        DQN rollouts run as lockstep batched episodes instead of one
        rollout per epoch — the returned plans are identical to calling
        :meth:`plan` per epoch, at a fraction of the per-plan overhead.
        Each plan's ``allocation_time`` is the batch's amortized
        per-epoch share.
        """
        workloads = [list(tasks) for tasks in workloads]
        contexts = list(contexts)
        if len(workloads) != len(contexts):
            raise DataError(
                f"got {len(workloads)} workloads but {len(contexts)} contexts"
            )
        if not workloads:
            return []
        for context in contexts:
            if context is None or context.sensing is None:
                raise ConfigurationError(
                    f"{self.name} requires context.sensing (the Z vector)"
                )
        expected = self.model.geometry.n_tasks
        for tasks in workloads:
            if len(tasks) != expected:
                raise DataError(
                    f"workload has {len(tasks)} tasks but CRL geometry expects "
                    f"{expected}"
                )
        started = time.perf_counter()
        sensing_rows = [context.sensing for context in contexts]
        if self.use_rl_selection:
            score_rows = self.model.selection_scores_batch(sensing_rows)
            scores_list = []
            for i, sensing in enumerate(sensing_rows):
                estimates = self.model.estimate_importance(sensing)
                scores_list.append(
                    score_rows[i]
                    + 1e-6 * estimates / (float(estimates.max()) or 1.0)
                )
        else:
            scores_list = [
                self.model.estimate_importance(sensing) for sensing in sensing_rows
            ]
        allocation_time = (time.perf_counter() - started) / len(workloads)
        return [
            place_by_scores(
                tasks,
                nodes,
                np.asarray(scores, dtype=float),
                time_limit_s=self.model.geometry.time_limit,
                allocation_time=allocation_time,
                label=self.name,
            )
            for tasks, scores in zip(workloads, scores_list)
        ]
