"""Classical per-epoch TATIM solving as an allocation policy.

The paper motivates learned allocation by the cost of "complicated
computation ... conducted repeatedly under varying contexts". The honest
classical comparator re-solves TATIM each epoch with a strong combinatorial
heuristic (density greedy + insert/swap/move local search) over the same
kNN-estimated importance CRL uses. Its allocation latency is *measured*
into the plan, so the benchmark shows exactly where the learned pipeline
pays off at a given problem scale — estimation quality versus per-epoch
solver cost.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext, place_by_scores
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.rl.crl import EnvironmentStore
from repro.tatim.greedy import density_greedy
from repro.tatim.local_search import improve_allocation
from repro.tatim.problem import TATIMProblem


class ClassicalAllocator(Allocator):
    """kNN environment definition + greedy/local-search TATIM solving.

    Parameters
    ----------
    geometry:
        The fixed TATIM geometry of the recurring workload.
    store:
        Historical environments for the kNN importance estimate.
    knn_k:
        Neighbourhood size of the estimate.
    local_search_rounds:
        Improvement rounds after the constructive greedy (0 disables).
    """

    name = "Classical"

    def __init__(
        self,
        geometry: TATIMProblem,
        store: EnvironmentStore,
        *,
        knn_k: int = 5,
        local_search_rounds: int = 20,
    ) -> None:
        if knn_k < 1:
            raise ConfigurationError(f"knn_k must be >= 1, got {knn_k}")
        if local_search_rounds < 0:
            raise ConfigurationError(
                f"local_search_rounds must be >= 0, got {local_search_rounds}"
            )
        if len(store) == 0:
            raise ConfigurationError("environment store must not be empty")
        self.geometry = geometry
        self.store = store
        self.knn_k = int(knn_k)
        self.local_search_rounds = int(local_search_rounds)

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if context is None or context.sensing is None:
            raise ConfigurationError(f"{self.name} requires context.sensing")
        if len(tasks) != self.geometry.n_tasks:
            raise DataError(
                f"workload has {len(tasks)} tasks but geometry expects "
                f"{self.geometry.n_tasks}"
            )
        started = time.perf_counter()
        importance = self.store.knn_importance(context.sensing, self.knn_k)
        problem = self.geometry.scaled(importance=importance)
        allocation = density_greedy(problem)
        if self.local_search_rounds > 0:
            allocation = improve_allocation(
                problem, allocation, max_rounds=self.local_search_rounds
            )
        selected = allocation.matrix.sum(axis=1).astype(float)
        scale = float(importance.max()) or 1.0
        scores = selected * importance / scale + 1e-6 * importance / scale
        allocation_time = time.perf_counter() - started
        return place_by_scores(
            tasks,
            nodes,
            scores,
            time_limit_s=self.geometry.time_limit,
            allocation_time=allocation_time,
            label=self.name,
        )
