"""The local process: an SVM predictor on Table I features (Section IV).

The local process F2 learns from *real-world* epochs which tasks belong in
the optimal allocation. Training pairs are (Table I feature vector of task
j at epoch d, was j selected in the optimal allocation of epoch d?); at
decision time it emits a per-task selection score in [0, 1] (the Platt
sigmoid of the SVM margin). The paper compares SVM, AdaBoost and Random
Forest for this role and picks SVM on accuracy —
:func:`compare_local_models` reproduces that comparison.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import DataError, NotFittedError
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVC
from repro.ml.metrics import accuracy_score
from repro.telemetry import get_registry, span


class LocalProcess:
    """F2: per-task selection scoring from Table I features.

    Parameters
    ----------
    model:
        A binary classifier with ``fit``/``predict`` (and ideally
        ``predict_proba`` or ``decision_function``); defaults to the
        paper's choice, a linear SVM with the Eq. 8 squared-hinge loss.
    """

    def __init__(self, model: BaseEstimator | None = None) -> None:
        self.model = model if model is not None else LinearSVC(C=1.0, epochs=80, seed=0)
        self._scaler: StandardScaler | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def stack_epochs(
        feature_matrices: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate per-epoch (features, selected) pairs into X, y."""
        if len(feature_matrices) != len(labels):
            raise DataError("feature_matrices and labels must align per epoch")
        if not feature_matrices:
            raise DataError("need at least one training epoch")
        X = np.vstack(feature_matrices)
        y = np.concatenate([np.asarray(l, dtype=int).ravel() for l in labels])
        if X.shape[0] != y.size:
            raise DataError(f"stacked features ({X.shape[0]} rows) != labels ({y.size})")
        return X, y

    def fit(
        self, feature_matrices: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> "LocalProcess":
        """Train on historical epochs of (Table I features, optimal selection)."""
        started = time.perf_counter()
        with span(
            "allocation.local.fit",
            epochs=len(feature_matrices),
            model=type(self.model).__name__,
        ):
            X, y = self.stack_epochs(feature_matrices, labels)
            self._scaler = StandardScaler().fit(X)
            self.model.fit(self._scaler.transform(X), y)
        registry = get_registry()
        registry.counter(
            "repro_allocation_local_fits_total",
            help="Local-process (SVM) training runs",
            model=type(self.model).__name__,
        ).inc()
        registry.histogram(
            "repro_allocation_local_fit_seconds",
            help="Local-process training latency",
            model=type(self.model).__name__,
        ).observe(time.perf_counter() - started)
        return self

    # ------------------------------------------------------------------
    def scores(self, features: np.ndarray) -> np.ndarray:
        """Per-task selection scores in [0, 1] for one epoch's feature matrix."""
        if self._scaler is None:
            raise NotFittedError("LocalProcess is not fitted; call fit() first")
        get_registry().counter(
            "repro_allocation_local_scores_total",
            help="Local-process scoring calls (one per epoch decision)",
        ).inc()
        X = self._scaler.transform(features)
        if hasattr(self.model, "predict_proba"):
            probabilities = self.model.predict_proba(X)
            if probabilities.shape[1] == 1:
                return probabilities[:, 0]
            classes = list(getattr(self.model, "classes_", [0, 1]))
            column = classes.index(1) if 1 in classes else probabilities.shape[1] - 1
            return probabilities[:, column]
        if hasattr(self.model, "decision_function"):
            margin = self.model.decision_function(X)
            return 1.0 / (1.0 + np.exp(-margin))
        return self.model.predict(X).astype(float)

    def predict_selection(self, features: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 selection decision per task."""
        return (self.scores(features) >= threshold).astype(int)

    def accuracy(
        self, feature_matrices: Sequence[np.ndarray], labels: Sequence[np.ndarray]
    ) -> float:
        """Selection accuracy over held-out epochs."""
        X, y = self.stack_epochs(feature_matrices, labels)
        predictions = self.predict_selection(X)
        return accuracy_score(y, predictions)


def default_local_candidates(*, seed: int = 0) -> dict[str, BaseEstimator]:
    """The Section IV-B candidate set: SVM, AdaBoost, Random Forest."""
    return {
        "SVM": LinearSVC(C=1.0, epochs=80, seed=seed),
        "AdaBoost": AdaBoostClassifier(n_estimators=25, max_depth=2, seed=seed),
        "RandomForest": RandomForestClassifier(n_estimators=25, max_depth=6, seed=seed),
    }


def compare_local_models(
    train_features: Sequence[np.ndarray],
    train_labels: Sequence[np.ndarray],
    test_features: Sequence[np.ndarray],
    test_labels: Sequence[np.ndarray],
    *,
    candidates: dict[str, BaseEstimator] | None = None,
) -> dict[str, float]:
    """Held-out selection accuracy of each local-process candidate.

    Reproduces the paper's in-text model comparison ("We select SVM because
    of its highest accuracy").
    """
    if candidates is None:
        candidates = default_local_candidates()
    results: dict[str, float] = {}
    for name, prototype in candidates.items():
        process = LocalProcess(clone(prototype))
        process.fit(train_features, train_labels)
        results[name] = process.accuracy(test_features, test_labels)
    return results
