"""DCTA: Data-driven Cooperative Task Allocation (the paper's Eq. 6).

    F(J, X) = w1 · F1(J, C) + w2 · F2(J, R)

F1 is the CRL general process (trained on the large simulated/historical
environment-definition data C); F2 is the local SVM process (trained on
scarce real-world epochs R). DCTA combines their per-task selection scores
with weights (w1, w2) and emits a score-ordered plan. The weights can be
fixed or fitted on validation epochs by grid search against the optimal
selection.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext, place_by_scores
from repro.allocation.crl_policy import CRLAllocator
from repro.allocation.local import LocalProcess
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import ConfigurationError, DataError
from repro.rl.crl import CRLModel
from repro.telemetry import get_registry, span


def _normalize(scores: np.ndarray) -> np.ndarray:
    top = float(np.max(scores)) if scores.size else 0.0
    if top <= 0:
        return np.zeros_like(scores)
    return scores / top


class DCTAAllocator(Allocator):
    """Cooperative combination of the CRL and local-SVM scores."""

    name = "DCTA"

    def __init__(
        self,
        crl_model: CRLModel,
        local_process: LocalProcess,
        *,
        w1: float = 0.5,
        w2: float = 0.5,
    ) -> None:
        if w1 < 0 or w2 < 0 or w1 + w2 <= 0:
            raise ConfigurationError(f"weights must be non-negative and not both zero, got {w1}, {w2}")
        self.crl_model = crl_model
        self.local_process = local_process
        total = w1 + w2
        self.w1 = float(w1) / total
        self.w2 = float(w2) / total

    # ------------------------------------------------------------------
    def combined_scores(self, sensing: np.ndarray, features: np.ndarray) -> np.ndarray:
        """w1 · F1 + w2 · F2 per task (both score vectors normalized to [0,1])."""
        started = time.perf_counter()
        with span("allocation.dcta.combine", w1=self.w1, w2=self.w2):
            with span("allocation.dcta.general_process"):
                general = _normalize(self.crl_model.selection_scores(sensing))
            with span("allocation.dcta.local_process"):
                local = _normalize(self.local_process.scores(features))
            if general.size != local.size:
                raise DataError(
                    f"general process scored {general.size} tasks, local {local.size}"
                )
            combined = self.w1 * general + self.w2 * local
        registry = get_registry()
        registry.counter(
            "repro_allocation_combines_total",
            help="Cooperative Eq. 6 score combinations computed",
        ).inc()
        registry.histogram(
            "repro_allocation_combine_seconds",
            help="Cooperative weighting latency (both processes + blend)",
        ).observe(time.perf_counter() - started)
        return combined

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if context is None or context.sensing is None or context.features is None:
            raise ConfigurationError(
                f"{self.name} requires context.sensing and context.features"
            )
        if len(tasks) != self.crl_model.geometry.n_tasks:
            raise DataError(
                f"workload has {len(tasks)} tasks but CRL geometry expects "
                f"{self.crl_model.geometry.n_tasks}"
            )
        started = time.perf_counter()
        scores = self.combined_scores(context.sensing, context.features)
        allocation_time = time.perf_counter() - started
        return place_by_scores(
            tasks,
            nodes,
            scores,
            time_limit_s=self.crl_model.geometry.time_limit,
            allocation_time=allocation_time,
            label=self.name,
        )

    # ------------------------------------------------------------------
    def fit_weights(
        self,
        contexts: Sequence[EpochContext],
        optimal_selections: Sequence[np.ndarray],
        *,
        grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    ) -> tuple[float, float]:
        """Grid-search (w1, w2) maximizing agreement with optimal selections.

        ``optimal_selections[d]`` is the 0/1 vector of tasks present in the
        optimal allocation of validation epoch d. Agreement is measured as
        mean rank-weighted overlap: the top-k combined scores vs the
        optimal set (k = |optimal set|).
        """
        if len(contexts) != len(optimal_selections):
            raise DataError("contexts and optimal_selections must align")
        if not contexts:
            raise DataError("need at least one validation epoch")
        best = (self.w1, self.w2)
        best_score = -1.0
        for w1 in grid:
            w2 = 1.0 - w1
            agreement = []
            for context, selected in zip(contexts, optimal_selections):
                general = _normalize(self.crl_model.selection_scores(context.sensing))
                local = _normalize(self.local_process.scores(context.features))
                combined = w1 * general + w2 * local
                truth = np.asarray(selected, dtype=int).ravel()
                k = int(truth.sum())
                if k == 0:
                    continue
                top_k = np.argsort(-combined, kind="stable")[:k]
                agreement.append(float(truth[top_k].mean()))
            if agreement and float(np.mean(agreement)) > best_score:
                best_score = float(np.mean(agreement))
                best = (w1, w2)
        self.w1, self.w2 = best
        return best
