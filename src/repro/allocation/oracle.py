"""Oracle allocator: importance-aware allocation with *true* importance.

Not a deployable policy (true importance is what the data-driven models are
estimating), but the reference point for two of the paper's measurements:
the "accurate task allocation" bars of Fig. 3 and the ceiling against
which CRL/DCTA estimation error is quantified.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.base import Allocator, EpochContext, place_by_scores, tatim_from_workload
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import DataError


class OracleAllocator(Allocator):
    """Score-ordered placement using ground-truth importance."""

    name = "Oracle"

    ALLOCATION_TIME = 5e-3

    def __init__(self, *, time_limit_s: float | None = None) -> None:
        self.time_limit_s = time_limit_s

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if not tasks or not nodes:
            raise DataError("need at least one task and one node")
        scores = np.array([task.true_importance for task in tasks])
        time_limit = self.time_limit_s
        if time_limit is None:
            time_limit = tatim_from_workload(tasks, nodes).time_limit
        return place_by_scores(
            tasks,
            nodes,
            scores,
            time_limit_s=time_limit,
            allocation_time=self.ALLOCATION_TIME,
            label=self.name,
        )
