"""Random Mapping (RM) — the paper's first baseline [33].

"Each task is processed at different edge devices with equal probability" —
tasks are dispatched in random order to uniformly random nodes. RM neither
knows importance nor balances load; it is the floor every data-driven
policy is measured against.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocation.base import Allocator, EpochContext
from repro.edgesim.node import EdgeNode
from repro.edgesim.simulator import ExecutionPlan
from repro.edgesim.workload import SimTask
from repro.errors import DataError
from repro.utils.rng import as_rng


class RandomMapping(Allocator):
    """Uniform random order, uniform random placement."""

    name = "RM"

    #: Modeled controller cost: a single pass building the random plan.
    ALLOCATION_TIME = 1e-3

    def __init__(self, *, seed=None) -> None:
        self._rng = as_rng(seed)

    def plan(
        self,
        tasks: Sequence[SimTask],
        nodes: Sequence[EdgeNode],
        context: EpochContext | None = None,
    ) -> ExecutionPlan:
        if not tasks or not nodes:
            raise DataError("need at least one task and one node")
        order = self._rng.permutation(len(tasks))
        node_ids = [node.node_id for node in nodes]
        assignments = tuple(
            (tasks[i].task_id, node_ids[int(self._rng.integers(0, len(node_ids)))])
            for i in order
        )
        return ExecutionPlan(
            assignments=assignments,
            allocation_time=self.ALLOCATION_TIME,
            label=self.name,
        )
